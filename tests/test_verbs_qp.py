"""Unit tests for queue-pair ordering and flow control."""

import pytest

from tests.helpers import pattern, run_proc
from repro.verbs import QueuePair, rdma_write, reg_mr


def _setup(cluster, size=1024):
    src = cluster.rank_ctx(0)
    dst = cluster.rank_ctx(1)
    sa = src.space.alloc_like(pattern(size))
    da = dst.space.alloc(size)
    box = {}

    def prog(sim):
        box["s"] = yield from reg_mr(src, sa, size)
        box["d"] = yield from reg_mr(dst, da, size)

    run_proc(cluster, prog(cluster.sim))
    return src, dst, sa, da, box["s"], box["d"]


def test_posts_complete_in_order(tiny_cluster):
    src, dst, sa, da, hs, hd = _setup(tiny_cluster)
    qp = QueuePair(src, dst)
    completions = []

    def prog(sim):
        transfers = []
        for i in range(4):
            t = yield from qp.post(rdma_write(
                src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=256))
            transfers.append(t)

        def watch(idx, t):
            yield t.completed
            completions.append(idx)

        for i, t in enumerate(transfers):
            sim.process(watch(i, t))
        yield from qp.drain()

    run_proc(tiny_cluster, prog(tiny_cluster.sim))
    assert completions == [0, 1, 2, 3]


def test_sq_depth_backpressures(tiny_cluster):
    src, dst, sa, da, hs, hd = _setup(tiny_cluster)
    qp = QueuePair(src, dst, sq_depth=2)

    def prog(sim):
        for _ in range(5):
            yield from qp.post(rdma_write(
                src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=64))
            assert qp.outstanding <= 2
        yield from qp.drain()
        assert qp.outstanding == 0

    run_proc(tiny_cluster, prog(tiny_cluster.sim))


def test_invalid_depth():
    with pytest.raises(ValueError):
        QueuePair(None, None, sq_depth=0)


def test_drain_on_empty_qp_is_noop(tiny_cluster):
    src, dst, *_ = _setup(tiny_cluster)
    qp = QueuePair(src, dst)

    def prog(sim):
        yield from qp.drain()
        return sim.now

    assert run_proc(tiny_cluster, prog(tiny_cluster.sim)) == tiny_cluster.sim.now
