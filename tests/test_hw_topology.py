"""Tests for the optional two-level (leaf/spine) topology."""

import pytest

from tests.helpers import run_proc
from repro.hw import Cluster, ClusterSpec


class TestSpecTopology:
    def test_single_switch_default(self):
        spec = ClusterSpec(nodes=4, ppn=1)
        assert spec.leaf_of_node(0) == spec.leaf_of_node(3) == 0
        assert spec.switch_hops(0, 3) == 1
        assert spec.switch_hops(2, 2) == 0

    def test_leaf_assignment(self):
        spec = ClusterSpec(nodes=6, ppn=1, nodes_per_switch=2)
        assert spec.leaf_of_node(0) == spec.leaf_of_node(1) == 0
        assert spec.leaf_of_node(4) == spec.leaf_of_node(5) == 2

    def test_hop_counts(self):
        spec = ClusterSpec(nodes=6, ppn=1, nodes_per_switch=2)
        assert spec.switch_hops(0, 1) == 1      # same leaf
        assert spec.switch_hops(0, 5) == 3      # leaf-spine-leaf
        assert spec.switch_hops(3, 3) == 0


class TestFabricTopology:
    def _latency(self, spec, src, dst):
        cl = Cluster(spec)
        out = {}

        def prog(sim):
            t0 = sim.now
            t = cl.fabric.transfer(src_node=src, dst_node=dst, size=1,
                                   initiator="host")
            yield t.delivered
            out["t"] = sim.now - t0

        run_proc(cl, prog(cl.sim))
        return out["t"]

    def test_cross_leaf_slower_than_same_leaf(self):
        spec = ClusterSpec(nodes=4, ppn=1, nodes_per_switch=2)
        same = self._latency(spec, 0, 1)
        cross = self._latency(spec, 0, 3)
        assert cross == pytest.approx(
            same + 2 * spec.params.switch_hop_latency, rel=1e-9)

    def test_single_switch_matches_legacy_behaviour(self):
        flat = self._latency(ClusterSpec(nodes=4, ppn=1), 0, 3)
        spec = ClusterSpec(nodes=4, ppn=1, nodes_per_switch=4)
        one_leaf = self._latency(spec, 0, 3)
        assert flat == pytest.approx(one_leaf, rel=1e-9)

    def test_topology_visible_in_app_latency(self):
        """A pingpong across leaves pays the spine; within a leaf it
        doesn't."""
        from repro.apps.omb import pingpong_latency

        near = pingpong_latency(
            "intelmpi", ClusterSpec(nodes=4, ppn=1, nodes_per_switch=4),
            4096, iters=4)
        far = pingpong_latency(
            "intelmpi", ClusterSpec(nodes=4, ppn=1, nodes_per_switch=1),
            4096, iters=4)
        assert far > near
