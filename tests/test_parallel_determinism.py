"""Serial == parallel: the sweep engine may change only the wall clock.

The parallel engine's correctness claim is that running a figure's
sweep points (or whole figures) across worker processes changes
*nothing* observable: ``to_dict()`` payloads, rendered tables, and
peak-memory metrics are byte-identical for every job count.  These
tests pin that claim on the two figures the issue names (fig15 --
multi-variant cluster sweep; fig05 -- single-cluster size sweep) and on
the crash-isolation semantics.

Point functions handed to worker processes must be module-level (the
spawn start method pickles them by reference), hence the top-level
helpers below.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig05_registration, fig15_group_vs_simple
from repro.experiments.common import canonical_json
from repro.experiments.parallel import (
    PointFailure,
    SweepError,
    sweep_map,
    using_jobs,
)
from repro.experiments.runall import run_one, run_selected


# ---------------------------------------------------------------------------
# helpers (top-level: spawn workers import them by qualified name)
# ---------------------------------------------------------------------------

def _times_ten(x):
    return x * 10


def _boom_at_three(x):
    if x == 3:
        raise ValueError(f"injected crash at point {x}")
    return x * 10


def _hard_exit_at_one(x):
    if x == 1:
        os._exit(23)  # simulates a segfaulting worker: no exception, no result
    return x * 10


# ---------------------------------------------------------------------------
# figure-level determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("module", [fig05_registration, fig15_group_vs_simple],
                         ids=["fig05", "fig15"])
def test_figure_identical_across_job_counts(module):
    serial_fig = module.run(scale="quick")
    serial_json = canonical_json(serial_fig.to_dict())
    serial_table = serial_fig.render()
    for jobs in (2, 4):
        with using_jobs(jobs):
            fig = module.run(scale="quick")
        assert canonical_json(fig.to_dict()) == serial_json, (
            f"{module.__name__}: to_dict() drifted at jobs={jobs}"
        )
        assert fig.render() == serial_table, (
            f"{module.__name__}: rendered table drifted at jobs={jobs}"
        )


def test_run_one_metrics_identical_across_job_counts():
    """run_one's full payload -- including the peak_resident_bytes
    watermark merged back from the workers -- matches the serial run."""
    with using_jobs(1):
        fig, exc = run_one("fig15_group_vs_simple")
    assert exc is None
    serial = canonical_json(fig.to_dict())
    assert fig.metrics["peak_resident_bytes"]["host"] > 0
    with using_jobs(2):
        fig2, exc = run_one("fig15_group_vs_simple")
    assert exc is None
    assert canonical_json(fig2.to_dict()) == serial


def test_runall_figure_sharding_identical():
    """Whole-figure sharding (runall --jobs N) merges in figure order
    with payloads identical to the serial batch."""
    names = ["fig02_rdma_latency", "fig05_registration"]
    serial = run_selected(names, jobs=1)
    sharded = run_selected(names, jobs=2)
    assert [r["name"] for r in serial] == [r["name"] for r in sharded] == names
    for s, p in zip(serial, sharded):
        assert s["error"] is None and p["error"] is None
        assert canonical_json(s["fig"].to_dict()) == \
            canonical_json(p["fig"].to_dict())


# ---------------------------------------------------------------------------
# crash isolation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_injected_crash_yields_point_failure(jobs):
    """A crashing point surfaces as a PointFailure in its slot; the
    neighbouring points are bit-exact against a clean run."""
    points = list(range(6))
    clean = sweep_map(_times_ten, points, jobs=1)
    got = sweep_map(_boom_at_three, points, jobs=jobs, on_error="keep")
    assert len(got) == len(points)
    failure = got[3]
    assert isinstance(failure, PointFailure)
    assert failure.index == 3
    assert failure.error_type == "ValueError"
    assert "injected crash" in failure.message
    for i, value in enumerate(got):
        if i != 3:
            assert value == clean[i], f"neighbour point {i} corrupted"


def test_injected_crash_raises_sweep_error_by_default():
    with pytest.raises(SweepError) as info:
        sweep_map(_boom_at_three, list(range(6)), jobs=2)
    assert info.value.failures[0].index == 3
    assert "injected crash" in str(info.value)


def test_serial_raise_preserves_original_exception():
    with pytest.raises(ValueError, match="injected crash"):
        sweep_map(_boom_at_three, list(range(6)), jobs=1)


def test_hard_worker_death_is_isolated():
    """A worker that dies without raising (os._exit) becomes a
    structured WorkerDied failure; other points still complete."""
    points = list(range(4))
    got = sweep_map(_hard_exit_at_one, points, jobs=2, on_error="keep")
    assert len(got) == len(points)
    dead = [r for r in got if isinstance(r, PointFailure)]
    assert dead, "worker death was not surfaced"
    assert all(r.error_type == "WorkerDied" for r in dead)
    # Point 1 is necessarily among the casualties; survivors are exact.
    assert isinstance(got[1], PointFailure)
    for i, value in enumerate(got):
        if not isinstance(value, PointFailure):
            assert value == i * 10


def test_figure_crash_in_sharded_runall_keeps_going():
    """A figure that crashes inside a worker reports like a serial
    crash (keep-going semantics) and leaves its neighbours intact."""
    names = ["fig05_registration", "fig99_does_not_exist"]
    serial = run_selected(names, jobs=1)
    sharded = run_selected(names, jobs=2)
    for records in (serial, sharded):
        by_name = {r["name"]: r for r in records}
        assert by_name["fig05_registration"]["error"] is None
        assert by_name["fig99_does_not_exist"]["fig"] is None
        assert "ModuleNotFoundError" in by_name["fig99_does_not_exist"]["error"]
    assert canonical_json(serial[0]["fig"].to_dict()) == \
        canonical_json(sharded[0]["fig"].to_dict())
