"""Unit tests for the observability core: bus, filters, exporters."""

import json

from repro.hw import Cluster, ClusterSpec
from repro.hw.trace import Tracer
from repro.obs import (
    EventBus,
    ObsEvent,
    chrome_trace,
    metrics_snapshot,
    observe_cluster,
    render_timeline,
)
from repro.obs.events import CATEGORIES
from repro.obs.export import sort_entities


class TestObsEvent:
    def test_args_are_sorted_and_hashable(self):
        ev = ObsEvent(time=1.0, seq=0, cat="req", name="post", entity="host0",
                      args=(("rid", 3), ("size", 64)))
        assert ev.arg("rid") == 3
        assert ev.arg("nope", "dflt") == "dflt"
        assert ev.argdict() == {"rid": 3, "size": 64}
        hash(ev)  # frozen + tuple args -> usable in sets

    def test_label_is_compact(self):
        ev = ObsEvent(time=2e-6, seq=0, cat="ctrl", name="post",
                      entity="node1", args=(("kind", "rts"),))
        assert "ctrl.post" in ev.label() and "kind=rts" in ev.label()


class TestEventBus:
    def test_emit_without_sim_uses_time_zero(self):
        bus = EventBus()
        ev = bus.emit("req", "post", "host0", rid=1)
        assert ev.time == 0.0 and ev.seq == 0
        assert len(bus) == 1 and list(bus) == [ev]

    def test_category_filter_drops_at_emit_site(self):
        bus = EventBus(categories=("req",))
        assert bus.emit("ctrl", "post", "node0", cid=0) is None
        assert bus.emit("req", "post", "host0", rid=1) is not None
        assert bus.count() == 1

    def test_event_args_may_shadow_positional_names(self):
        bus = EventBus()
        ev = bus.emit("proc", "start", "sim", name="worker", cat="x",
                      entity="y")
        assert ev.name == "start" and ev.arg("name") == "worker"

    def test_select_by_args_and_missing_key(self):
        bus = EventBus()
        bus.emit("cache", "hit", "host0", cache="a")
        bus.emit("cache", "hit", "host1", cache="b")
        assert len(bus.select(cat="cache", cache="a")) == 1
        # an event lacking the filter key never matches (even vs None)
        assert bus.select(cat="cache", missing_key=None) == []

    def test_subscribe_sees_accepted_events_only(self):
        bus = EventBus(categories=("req",))
        seen = []
        bus.subscribe(seen.append)
        bus.emit("ctrl", "post", "node0", cid=0)
        bus.emit("req", "post", "host0", rid=1)
        assert [ev.cat for ev in seen] == ["req"]

    def test_render_and_clear(self):
        bus = EventBus()
        assert bus.render() == "(no events)"
        for i in range(5):
            bus.emit("wqe", "post", "node0", size=i)
        assert "... (3 more)" in bus.render(limit=2)
        bus.clear()
        assert len(bus) == 0

    def test_unknown_category_is_accepted(self):
        # forward compatibility: the vocabulary is advisory
        assert "sim" in CATEGORIES
        assert EventBus().emit("experimental", "x", "sim") is not None


class TestExporterEdges:
    def test_sort_entities_orders_kinds_then_index(self):
        assert sort_entities(["node1", "dpu0", "host10", "host2",
                              "fabric0", "sim"]) == \
            ["host2", "host10", "dpu0", "node1", "fabric0", "sim"]

    def test_chrome_trace_of_empty_run_is_valid(self):
        doc = chrome_trace(bus=EventBus(), tracer=Tracer())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
        json.dumps(doc)

    def test_timeline_fallbacks(self):
        assert render_timeline(None) == "(no tracer attached)"
        assert render_timeline(Tracer()) == "(empty trace)"

    def test_metrics_snapshot_accepts_bare_metrics(self):
        from repro.hw import Metrics

        m = Metrics()
        m.add("k", 2)
        snap = metrics_snapshot(m)
        assert snap["counters"] == {"k": 2}
        assert "sim_time" not in snap and "spec" not in snap

    def test_observe_cluster_attaches_everything(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        obs = observe_cluster(cl)
        assert cl.bus is obs.bus and cl.sim.bus is obs.bus
        assert cl.fabric.bus is obs.bus
        assert all(n.hca.bus is obs.bus for n in cl.nodes)
        snap = obs.metrics_snapshot()
        assert snap["spec"]["nodes"] == 2
        assert snap["sim_time"] == 0.0
        obs.check()  # empty stream has no violations
