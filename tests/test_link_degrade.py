"""Link degradation on the fluid flow path.

A :class:`LinkDegradePlan` lowers node tx/rx endpoint capacities for
seeded windows; the FlowEngine settles in-flight progress and re-solves
``fair_shares`` at every degrade/restore edge.  A factor-0 window is a
flap: crossing flows stall entirely and resume at restore.
"""

import numpy as np
import pytest

from tests.helpers import run_procs
from repro.hw import Cluster, ClusterSpec, LinkDegradePlan, LinkWindow
from repro.obs.events import EventBus
from repro.obs.invariants import check_trace, trace_violations
from repro.sim.flows import fair_shares
from repro.verbs.mr import reg_mr
from repro.verbs.rdma import rdma_write

MB = 1 << 20


def _fluid_cluster(seed=9, threshold=4096):
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, seed=seed,
                             fluid=True, fluid_threshold=threshold))
    bus = EventBus.attach(cl)
    return cl, bus


def _one_write(cl, size=512 * 1024):
    a, b = cl.ranks[0], cl.ranks[1]
    out = {}

    def prog(sim):
        sa = a.space.alloc(MB)
        da = b.space.alloc(MB)
        ha = yield from reg_mr(a, sa, MB)
        hb = yield from reg_mr(b, da, MB)
        t = yield from rdma_write(a, lkey=ha.lkey, src_addr=sa,
                                  rkey=hb.rkey, dst_addr=da, size=size,
                                  copy=False)
        out["dv"] = yield t.completed
        out["t_done"] = sim.now

    run_procs(cl, [prog(cl.sim)])
    return out


class TestFairSharesEndpointCaps:
    def test_reduced_cap_limits_crossing_flows(self):
        # Two flows share tx endpoint 0; its capacity is halved.
        shares = fair_shares([0, 0], [1, 2], [1.0, 1.0], 3,
                             endpoint_caps=[0.5, 1.0, 1.0])
        assert shares == pytest.approx([0.25, 0.25])

    def test_zero_cap_stalls_crossing_flows_only(self):
        shares = fair_shares([0, 1], [2, 3], [1.0, 1.0], 4,
                             endpoint_caps=[0.0, 1.0, 1.0, 1.0])
        assert shares[0] == pytest.approx(0.0)
        assert shares[1] == pytest.approx(1.0)

    def test_none_matches_all_ones(self):
        tx, rx = [0, 0, 1], [2, 3, 3]
        caps = [1.0, 0.5, 1.0]
        a = fair_shares(tx, rx, caps, 4)
        b = fair_shares(tx, rx, caps, 4, endpoint_caps=np.ones(4))
        assert np.array_equal(a, b)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="endpoint_caps"):
            fair_shares([0], [1], [1.0], 2, endpoint_caps=[1.0])

    def test_negative_caps_clamp_to_zero(self):
        shares = fair_shares([0], [1], [1.0], 2, endpoint_caps=[-0.5, 1.0])
        assert shares[0] == pytest.approx(0.0)


class TestDegradeSlowsFlows:
    def test_halved_endpoint_doubles_the_window(self):
        base_cl, _ = _fluid_cluster()
        base = _one_write(base_cl)
        assert base["dv"].status == "ok"

        slow_cl, bus = _fluid_cluster()
        # Cover the whole transfer with a 0.5-factor window on the
        # source's tx endpoint.
        slow_cl.install_link_degrade(LinkDegradePlan(
            (LinkWindow(node=0, direction="tx", start=0.0, duration=1.0,
                        factor=0.5),)))
        slow = _one_write(slow_cl)
        assert slow["dv"].status == "ok"
        assert slow["t_done"] > base["t_done"]
        # The serialization window itself doubled; fixed latency/post
        # overheads dilute the end-to-end ratio below 2x.
        assert slow["t_done"] < 2.0 * base["t_done"]

    def test_flap_stalls_until_restore(self):
        cl, bus = _fluid_cluster()
        # Link down from t=0 for 300us: the flow cannot start moving
        # until the restore edge.
        cl.install_link_degrade(LinkDegradePlan(
            (LinkWindow(node=0, direction="tx", start=0.0, duration=300e-6,
                        factor=0.0),)))
        out = _one_write(cl)
        assert out["dv"].status == "ok"
        assert out["t_done"] > 300e-6
        ends = bus.select(cat="flow", name="end")
        assert len(ends) == 1 and ends[0].time > 300e-6
        check_trace(bus)

    def test_overlapping_windows_take_the_minimum(self):
        cl, _ = _fluid_cluster()
        cl.install_link_degrade(LinkDegradePlan((
            LinkWindow(node=0, direction="tx", start=0.0, duration=1.0,
                       factor=0.5),
            LinkWindow(node=0, direction="tx", start=0.0, duration=0.5,
                       factor=0.25),
        )))
        cl.sim.run(until=0.1)
        eng = cl.fabric.flow_engine
        assert eng.endpoint_capacity(("tx", 0)) == pytest.approx(0.25)
        cl.sim.run(until=0.75)
        assert eng.endpoint_capacity(("tx", 0)) == pytest.approx(0.5)
        cl.sim.run(until=1.5)
        assert eng.endpoint_capacity(("tx", 0)) == pytest.approx(1.0)


class TestSeededSampling:
    def _trace(self, seed):
        cl, bus = _fluid_cluster(seed=seed)
        plan = LinkDegradePlan(count=6, horizon=1e-3)
        cl.install_link_degrade(plan)
        _one_write(cl)
        cl.sim.run()  # drain any windows past the transfer
        return plan.trace(), tuple(
            (e.time, e.cat, e.name, e.entity, e.args) for e in bus.events)

    def test_same_seed_same_schedule(self):
        assert self._trace(21) == self._trace(21)

    def test_different_seed_different_schedule(self):
        assert self._trace(21)[0] != self._trace(22)[0]

    def test_sampled_windows_pair_up(self):
        cl, bus = _fluid_cluster()
        plan = LinkDegradePlan(count=5, horizon=1e-3)
        cl.install_link_degrade(plan)
        _one_write(cl)
        cl.sim.run()
        assert plan.stats["degrades"] == plan.stats["restores"] == 5
        assert cl.metrics.get("fabric.link_degrades") == 5
        assert not trace_violations(bus)


class TestInstallValidation:
    def test_exact_mode_cluster_rejects_the_plan(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        with pytest.raises(ValueError, match="fluid"):
            cl.install_link_degrade(LinkDegradePlan(count=1, horizon=1e-3))

    def test_window_validation(self):
        with pytest.raises(ValueError, match="direction"):
            LinkWindow(node=0, direction="up", start=0.0, duration=1.0,
                       factor=0.5)
        with pytest.raises(ValueError, match="factor"):
            LinkWindow(node=0, direction="tx", start=0.0, duration=1.0,
                       factor=1.0)
        with pytest.raises(ValueError, match="duration"):
            LinkWindow(node=0, direction="tx", start=0.0, duration=0.0,
                       factor=0.5)

    def test_sampling_needs_a_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            LinkDegradePlan(count=3)

    def test_engine_capacity_validation(self):
        cl, _ = _fluid_cluster()
        eng = cl.fabric.flow_engine
        with pytest.raises(ValueError, match="capacity"):
            eng.set_endpoint_capacity(("tx", 0), -0.1)
        assert eng.endpoint_capacity(("tx", 99)) == 1.0


class TestMissingLinkInvariant:
    def test_unrestored_degrade_is_flagged(self):
        cl, bus = _fluid_cluster()
        bus.emit("link", "degrade", "node0", wid=0, node=0, direction="tx",
                 factor=0.5)
        violations = trace_violations(bus)
        assert any("never restored" in v for v in violations)
