"""Integration tests for collectives: data correctness on real payloads."""

import numpy as np
import pytest

from tests.helpers import pattern
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll
from repro.mpi.collectives import _binomial_parent_children


@pytest.fixture(params=[(2, 2), (3, 2), (2, 3)])
def any_world(request):
    nodes, ppn = request.param
    return MpiWorld(Cluster(ClusterSpec(nodes=nodes, ppn=ppn)))


class TestBinomialTree:
    def test_root_has_no_parent(self):
        parent, _ = _binomial_parent_children(0, 8)
        assert parent is None

    def test_parent_clears_highest_bit(self):
        assert _binomial_parent_children(5, 8)[0] == 1
        assert _binomial_parent_children(6, 8)[0] == 2
        assert _binomial_parent_children(1, 8)[0] == 0

    def test_children_of_root(self):
        _, children = _binomial_parent_children(0, 8)
        assert children == [1, 2, 4]

    def test_every_rank_reachable(self):
        for p in (2, 3, 5, 8, 13):
            seen = {0}
            frontier = [0]
            while frontier:
                v = frontier.pop()
                _, kids = _binomial_parent_children(v, p)
                for k in kids:
                    assert k not in seen
                    seen.add(k)
                    frontier.append(k)
            assert seen == set(range(p))


class TestAlltoall:
    def test_personalized_exchange(self, any_world):
        world = any_world
        P = world.size
        blk = 512

        def program(rt):
            cw = world.comm_world
            me = rt.rank
            sbuf = np.zeros(P * blk, np.uint8)
            for j in range(P):
                sbuf[j * blk:(j + 1) * blk] = (me * P + j) % 251
            sa = rt.ctx.space.alloc_like(sbuf)
            ra = rt.ctx.space.alloc(P * blk)
            yield from coll.alltoall(rt, cw, sa, ra, blk)
            out = rt.ctx.space.read(ra, P * blk)
            for j in range(P):
                assert (out[j * blk:(j + 1) * blk] == (j * P + me) % 251).all()
            return True

        assert all(world.run(program))
        world.assert_quiescent()

    def test_nonblocking_returns_before_complete(self, world):
        def program(rt):
            cw = world.comm_world
            P = world.size
            sa = rt.ctx.space.alloc(P * 1024, fill=1)
            ra = rt.ctx.space.alloc(P * 1024)
            req = yield from coll.ialltoall(rt, cw, sa, ra, 1024)
            posted_not_done = not req.complete
            yield from rt.wait(req)
            return posted_not_done and req.complete

        assert all(world.run(program))


class TestBcast:
    @pytest.mark.parametrize("algorithm", ["binomial", "ring"])
    @pytest.mark.parametrize("root", [0, 2])
    def test_small_payload(self, any_world, algorithm, root):
        world = any_world
        data = pattern(3000, seed=5)

        def program(rt):
            cw = world.comm_world
            if rt.rank == root:
                addr = rt.ctx.space.alloc_like(data)
            else:
                addr = rt.ctx.space.alloc(3000)
            yield from coll.bcast(rt, cw, root, addr, 3000, algorithm=algorithm)
            assert (rt.ctx.space.read(addr, 3000) == data).all()
            return True

        assert all(world.run(program))
        world.assert_quiescent()

    def test_large_payload_uses_scatter_allgather(self, world):
        size = 300_000
        data = pattern(size, seed=6)

        def program(rt):
            cw = world.comm_world
            if rt.rank == 1:
                addr = rt.ctx.space.alloc_like(data)
            else:
                addr = rt.ctx.space.alloc(size)
            req = yield from coll.ibcast(rt, cw, 1, addr, size)
            yield from rt.wait(req)
            assert req.op == "ibcast_scag"
            assert (rt.ctx.space.read(addr, size) == data).all()
            return True

        assert all(world.run(program))


class TestBarrier:
    def test_nobody_leaves_before_last_arrives(self, any_world):
        world = any_world
        arrive, leave = {}, {}

        def program(rt):
            yield rt.ctx.consume(rt.rank * 10e-6)  # staggered arrival
            arrive[rt.rank] = rt.sim.now
            yield from coll.barrier(rt, world.comm_world)
            leave[rt.rank] = rt.sim.now
            return True

        world.run(program)
        assert min(leave.values()) >= max(arrive.values())


class TestAllgather:
    def test_everyone_gets_every_block(self, any_world):
        world = any_world
        P = world.size
        blk = 256

        def program(rt):
            cw = world.comm_world
            sa = rt.ctx.space.alloc(blk, fill=(rt.rank % 200) + 1)
            ra = rt.ctx.space.alloc(P * blk)
            yield from coll.allgather(rt, cw, sa, ra, blk)
            out = rt.ctx.space.read(ra, P * blk)
            for j in range(P):
                assert (out[j * blk:(j + 1) * blk] == (j % 200) + 1).all()
            return True

        assert all(world.run(program))


class TestReduce:
    def test_sum_to_root(self, any_world):
        world = any_world
        P = world.size
        count = 32

        def program(rt):
            cw = world.comm_world
            buf = np.full(count, float(rt.rank + 1))
            addr = rt.ctx.space.alloc_like(buf)
            req = yield from coll.ireduce(rt, cw, 0, addr, count * 8)
            yield from rt.wait(req)
            if rt.rank == 0:
                got = rt.ctx.space.read_as(addr, np.float64, count)
                assert np.allclose(got, P * (P + 1) / 2)
            return True

        assert all(world.run(program))

    def test_allreduce_everywhere(self, world):
        P = world.size
        count = 16

        def program(rt):
            cw = world.comm_world
            buf = np.full(count, float(rt.rank))
            addr = rt.ctx.space.alloc_like(buf)
            yield from coll.allreduce(rt, cw, addr, count * 8)
            got = rt.ctx.space.read_as(addr, np.float64, count)
            assert np.allclose(got, sum(range(P)))
            return True

        assert all(world.run(program))

    def test_non_multiple_of_word_rejected(self, world):
        def program(rt):
            addr = rt.ctx.space.alloc(10)
            yield from coll.ireduce(rt, world.comm_world, 0, addr, 10)

        from repro.mpi import MpiError
        with pytest.raises(MpiError):
            world.run(program, ranks=[0])


class TestSubCommunicators:
    def test_collective_on_split_comm(self):
        world = MpiWorld(Cluster(ClusterSpec(nodes=2, ppn=2)))

        def program(rt):
            cw = world.comm_world
            colors = [0, 1, 0, 1]
            sub = cw.split(colors)[colors[rt.rank]]
            blk = 64
            sa = rt.ctx.space.alloc(sub.size * blk, fill=rt.rank + 1)
            ra = rt.ctx.space.alloc(sub.size * blk)
            yield from coll.alltoall(rt, sub, sa, ra, blk)
            out = rt.ctx.space.read(ra, sub.size * blk)
            for j, w in enumerate(sub.world_ranks):
                assert (out[j * blk:(j + 1) * blk] == w + 1).all()
            return True

        assert all(world.run(program))
        world.assert_quiescent()
