"""Integration tests for Basic primitives (Send_Offload / Recv_Offload)."""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadError, OffloadFramework


def _exchange(cluster, fw, size, src=0, dst=None, tag=3, data=None):
    if dst is None:
        dst = cluster.world_size - 1
    if data is None:
        data = pattern(size, seed=size)
    out = {}

    def sender(sim):
        ep = fw.endpoint(src)
        addr = ep.ctx.space.alloc_like(data)
        req = yield from ep.send_offload(addr, size, dst=dst, tag=tag)
        yield from ep.wait(req)
        out["send_done"] = sim.now
        return req

    def receiver(sim):
        ep = fw.endpoint(dst)
        addr = ep.ctx.space.alloc(size)
        req = yield from ep.recv_offload(addr, size, src=src, tag=tag)
        yield from ep.wait(req)
        out["recv_done"] = sim.now
        assert (ep.ctx.space.read(addr, size) == data).all()
        return req

    run_procs(cluster, [sender(cluster.sim), receiver(cluster.sim)])
    return out


class TestGvmiMode:
    def test_moves_real_bytes(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        _exchange(tiny_cluster, fw, 64 * 1024, src=0, dst=1)
        fw.assert_quiescent()
        m = tiny_cluster.metrics
        assert m.get("proxy.basic_pairs") == 1
        assert m.get("gvmi.cross_registrations") == 1
        assert m.get("rdma.write.dpu") == 1  # proxy posted the data
        assert m.get("staging.transfers") == 0  # no bounce

    def test_four_control_messages_per_transfer(self, tiny_cluster):
        """Paper Section VIII-C: RTS + RTR + two FINs."""
        fw = OffloadFramework(tiny_cluster)
        _exchange(tiny_cluster, fw, 4096, src=0, dst=1)
        m = tiny_cluster.metrics
        assert m.get("ctrl.host_to_dpu") == 2  # RTS + RTR
        assert m.get("proxy.fin_writes") == 2

    def test_rts_before_rtr_and_reverse(self, tiny_cluster):
        """Matching works regardless of which control message arrives first."""
        fw = OffloadFramework(tiny_cluster)
        data = pattern(1024)
        order = []

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(addr, 1024, dst=1, tag=1)
            yield from ep.wait(req)
            order.append("send")

        def late_receiver(sim):
            yield sim.timeout(50e-6)  # RTS queues on the proxy first
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(1024)
            req = yield from ep.recv_offload(addr, 1024, src=0, tag=1)
            yield from ep.wait(req)
            assert (ep.ctx.space.read(addr, 1024) == data).all()
            order.append("recv")

        run_procs(tiny_cluster, [sender(tiny_cluster.sim), late_receiver(tiny_cluster.sim)])
        assert set(order) == {"send", "recv"}
        fw.assert_quiescent()

    def test_tag_matching_disambiguates(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        d1, d2 = pattern(256, 1), pattern(256, 2)

        def sender(sim):
            ep = fw.endpoint(0)
            a1 = ep.ctx.space.alloc_like(d1)
            a2 = ep.ctx.space.alloc_like(d2)
            r1 = yield from ep.send_offload(a1, 256, dst=1, tag=10)
            r2 = yield from ep.send_offload(a2, 256, dst=1, tag=20)
            yield from ep.waitall([r1, r2])

        def receiver(sim):
            ep = fw.endpoint(1)
            b2 = ep.ctx.space.alloc(256)
            b1 = ep.ctx.space.alloc(256)
            # post in reverse tag order
            r2 = yield from ep.recv_offload(b2, 256, src=0, tag=20)
            r1 = yield from ep.recv_offload(b1, 256, src=0, tag=10)
            yield from ep.waitall([r1, r2])
            assert (ep.ctx.space.read(b1, 256) == d1).all()
            assert (ep.ctx.space.read(b2, 256) == d2).all()

        run_procs(tiny_cluster, [sender(tiny_cluster.sim), receiver(tiny_cluster.sim)])
        fw.assert_quiescent()

    def test_overflow_rejected_on_proxy(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc(128)
            req = yield from ep.send_offload(addr, 128, dst=1, tag=1)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(64)
            req = yield from ep.recv_offload(addr, 64, src=0, tag=1)
            yield from ep.wait(req)

        with pytest.raises(OffloadError, match="overflows"):
            run_procs(tiny_cluster, [sender(tiny_cluster.sim), receiver(tiny_cluster.sim)])

    def test_perfect_overlap_no_host_cpu_during_transfer(self, tiny_cluster):
        """The completion-counter design: a host that computes through the
        whole transfer pays (almost) nothing at Wait."""
        fw = OffloadFramework(tiny_cluster)
        size = 256 * 1024
        waits = {}

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc(size, fill=1)
            req = yield from ep.send_offload(addr, size, dst=1, tag=4)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(size)
            req = yield from ep.recv_offload(addr, size, src=0, tag=4)
            yield ep.ctx.consume(500e-6)  # long compute, zero MPI calls
            t0 = sim.now
            yield from ep.wait(req)
            waits["recv_wait"] = sim.now - t0

        run_procs(tiny_cluster, [sender(tiny_cluster.sim), receiver(tiny_cluster.sim)])
        assert waits["recv_wait"] == 0.0  # counter was already set

    def test_endpoint_on_proxy_rejected(self, tiny_cluster):
        from repro.offload.api import OffloadEndpoint

        fw = OffloadFramework(tiny_cluster)
        with pytest.raises(OffloadError):
            OffloadEndpoint(fw, tiny_cluster.proxy_ctx(0, 0))


class TestStagedMode:
    def test_moves_real_bytes_through_dpu_dram(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster, mode="staged")
        _exchange(tiny_cluster, fw, 32 * 1024, src=0, dst=1)
        m = tiny_cluster.metrics
        assert m.get("staging.transfers") == 1
        assert m.get("rdma.read.dpu") == 1   # host -> DPU DRAM
        assert m.get("rdma.write.dpu") == 1  # DPU DRAM -> host
        assert m.get("gvmi.cross_registrations") == 0  # no GVMI in staging

    def test_staged_slower_than_gvmi(self):
        times = {}
        for mode in ("gvmi", "staged"):
            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
            fw = OffloadFramework(cl, mode=mode)
            out = _exchange(cl, fw, 128 * 1024, src=0, dst=1)
            times[mode] = out["recv_done"]
        assert times["staged"] > times["gvmi"]

    def test_staging_buffers_reused(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster, mode="staged")
        for i in range(3):
            _exchange(tiny_cluster, fw, 8192, src=0, dst=1, tag=10 + i)
        engine = fw.proxy_engine_for_rank(0)
        assert engine.staging.created == 1
        assert engine.staging.reused == 2

    def test_unknown_mode_rejected(self, tiny_cluster):
        with pytest.raises(OffloadError):
            OffloadFramework(tiny_cluster, mode="warp")


class TestFinalize:
    def test_finalize_stops_proxies(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        _exchange(tiny_cluster, fw, 1024, src=0, dst=1)
        fw.finalize()
        tiny_cluster.sim.run()
        for engine in fw._proxy_engines.values():
            assert not engine.process.is_alive

    def test_finalize_idempotent(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        fw.finalize()
        fw.finalize()
