"""Offloaded collectives: differential correctness and the CPU invariant.

Three guarantees for the ``repro.offload.collectives`` builders:

1. **Byte-identity against host MPI.**  An offloaded Ibcast /
   Iallgather / Iallreduce must deposit exactly the bytes the host-MPI
   collective deposits, in both gvmi and staged transport modes and at
   non-power-of-two communicator sizes.  Reductions use integer-valued
   float64 payloads, so the sum is exact in any association order and
   "same result" genuinely means byte-identical.
2. **Fluid-vs-exact equivalence.**  At collective scale the fluid
   engine must reproduce the exact event engine's completion times
   within ``FLUID_RTOL`` (barrier lockstep leaves each bulk flow alone
   on its link, where the rate solver lands on the event engine's own
   timestamps -- measured deviation is exactly zero).
3. **Zero host CPU inside the window.**  Between ``Group_Offload_call``
   and ``Group_Wait`` the whole DAG runs on the DPUs: the trace
   invariant that flags host spans inside offloaded windows must stay
   silent for every rank of a full collective.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import run_procs
from repro.hw import Cluster, ClusterSpec
from repro.hw.trace import Tracer
from repro.mpi import MpiWorld
from repro.mpi import collectives as host_coll
from repro.obs import EventBus, trace_violations
from repro.offload import (
    OffloadFramework,
    allreduce_algorithm,
    build_iallgather,
    build_iallreduce,
    build_ibcast,
)

#: Matches tests/test_fluid_differential.py: six orders of magnitude of
#: margin over the worst measured fluid deviation.
FLUID_RTOL = 1e-9

MODES = ["gvmi", "staged"]
SIZES = [3, 4, 5]


def _cluster(p: int, **spec_kw) -> Cluster:
    return Cluster(ClusterSpec(nodes=p, ppn=1, **spec_kw))


def _contrib(p: int, count: int) -> list[np.ndarray]:
    """Integer-valued float64 payloads: exact sums, any order."""
    return [np.arange(count, dtype=np.float64) * (r + 1) + 2 * r
            for r in range(p)]


# ----------------------------------------------------------------------
# offloaded runners: return {rank: result ndarray} and the finish time
# ----------------------------------------------------------------------
def _offload_bcast(p, data, root=0, mode="gvmi", **spec_kw):
    cl = _cluster(p, **spec_kw)
    fw = OffloadFramework(cl, mode=mode)
    out = {}

    def prog(rank):
        ep = fw.endpoint(rank)
        if rank == root:
            addr = ep.ctx.space.alloc_like(data)
        else:
            addr = ep.ctx.space.alloc(data.nbytes)
        greq = build_ibcast(ep, addr, data.nbytes, root=root, comm_size=p)
        yield from ep.group_call(greq)
        yield from ep.group_wait(greq)
        out[rank] = ep.ctx.space.read_as(addr, np.float64, len(data)).copy()
        return cl.sim.now

    t = run_procs(cl, [prog(r) for r in range(p)])
    return out, max(t)


def _offload_allgather(p, blocks, mode="gvmi", **spec_kw):
    cl = _cluster(p, **spec_kw)
    fw = OffloadFramework(cl, mode=mode)
    blk = blocks[0].nbytes
    words = p * len(blocks[0])
    out = {}

    def prog(rank):
        ep = fw.endpoint(rank)
        addr = ep.ctx.space.alloc(p * blk)
        ep.ctx.space.write(addr + rank * blk, blocks[rank])
        greq = build_iallgather(ep, addr, blk, comm_size=p)
        yield from ep.group_call(greq)
        yield from ep.group_wait(greq)
        out[rank] = ep.ctx.space.read_as(addr, np.float64, words).copy()
        return cl.sim.now

    t = run_procs(cl, [prog(r) for r in range(p)])
    return out, max(t)


def _offload_allreduce(p, vals, algorithm="auto", mode="gvmi", **spec_kw):
    cl = _cluster(p, **spec_kw)
    fw = OffloadFramework(cl, mode=mode)
    count = len(vals[0])
    out = {}

    def prog(rank):
        ep = fw.endpoint(rank)
        addr = ep.ctx.space.alloc_like(vals[rank])
        greq, _scratch = build_iallreduce(
            ep, addr, count * 8, comm_size=p, algorithm=algorithm)
        yield from ep.group_call(greq)
        yield from ep.group_wait(greq)
        out[rank] = ep.ctx.space.read_as(addr, np.float64, count).copy()
        return cl.sim.now

    t = run_procs(cl, [prog(r) for r in range(p)])
    return out, max(t)


# ----------------------------------------------------------------------
# host-MPI reference runners
# ----------------------------------------------------------------------
def _host_bcast(p, data, root=0):
    world = MpiWorld(_cluster(p))
    out = {}

    def prog(rt):
        if rt.rank == root:
            addr = rt.ctx.space.alloc_like(data)
        else:
            addr = rt.ctx.space.alloc(data.nbytes)
        yield from host_coll.bcast(rt, world.comm_world, root, addr,
                                   data.nbytes)
        out[rt.rank] = rt.ctx.space.read_as(
            addr, np.float64, len(data)).copy()

    world.run(prog)
    return out


def _host_allgather(p, blocks):
    world = MpiWorld(_cluster(p))
    blk = blocks[0].nbytes
    words = p * len(blocks[0])
    out = {}

    def prog(rt):
        sa = rt.ctx.space.alloc_like(blocks[rt.rank])
        ra = rt.ctx.space.alloc(p * blk)
        yield from host_coll.allgather(rt, world.comm_world, sa, ra, blk)
        out[rt.rank] = rt.ctx.space.read_as(ra, np.float64, words).copy()

    world.run(prog)
    return out


def _host_allreduce(p, vals):
    world = MpiWorld(_cluster(p))
    count = len(vals[0])
    out = {}

    def prog(rt):
        addr = rt.ctx.space.alloc_like(vals[rt.rank])
        yield from host_coll.allreduce(rt, world.comm_world, addr, count * 8)
        out[rt.rank] = rt.ctx.space.read_as(
            addr, np.float64, count).copy()

    world.run(prog)
    return out


# ----------------------------------------------------------------------
class TestByteIdenticalToHostMpi:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("p", SIZES)
    def test_ibcast(self, p, mode):
        data = np.arange(384, dtype=np.float64) * 5 + 1
        root = p // 2
        off, _ = _offload_bcast(p, data, root=root, mode=mode)
        host = _host_bcast(p, data, root=root)
        for r in range(p):
            assert off[r].tobytes() == host[r].tobytes(), f"rank {r}"

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("p", SIZES)
    def test_iallgather(self, p, mode):
        blocks = _contrib(p, 48)
        off, _ = _offload_allgather(p, blocks, mode=mode)
        host = _host_allgather(p, blocks)
        for r in range(p):
            assert off[r].tobytes() == host[r].tobytes(), f"rank {r}"

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("p", SIZES)
    def test_iallreduce(self, p, mode):
        vals = _contrib(p, 64)
        off, _ = _offload_allreduce(p, vals, mode=mode)
        host = _host_allreduce(p, vals)
        for r in range(p):
            assert off[r].tobytes() == host[r].tobytes(), f"rank {r}"


class TestAlgorithmsAndEdges:
    def test_auto_picks_rd_on_pow2_ring_otherwise(self):
        assert allreduce_algorithm(8, "auto") == "rd"
        assert allreduce_algorithm(6, "auto") == "ring"

    @pytest.mark.parametrize("p", [3, 5, 6])
    def test_ring_allreduce_non_pow2(self, p):
        vals = _contrib(p, 100)
        ref = np.sum(vals, axis=0)
        off, _ = _offload_allreduce(p, vals, algorithm="ring")
        for r in range(p):
            assert off[r].tobytes() == ref.tobytes(), f"rank {r}"

    @pytest.mark.parametrize("p", [5, 6])
    def test_ring_allreduce_fewer_words_than_ranks(self, p):
        # count < p leaves some ring chunks empty; the zero-byte sends
        # must be skipped symmetrically or the barrier epochs misalign.
        vals = _contrib(p, 3)
        ref = np.sum(vals, axis=0)
        off, _ = _offload_allreduce(p, vals, algorithm="ring")
        for r in range(p):
            assert off[r].tobytes() == ref.tobytes(), f"rank {r}"

    def test_single_rank_collectives(self):
        data = np.arange(32, dtype=np.float64)
        off, _ = _offload_bcast(1, data)
        assert off[0].tobytes() == data.tobytes()
        off, _ = _offload_allgather(1, [data])
        assert off[0].tobytes() == data.tobytes()
        off, _ = _offload_allreduce(1, [data])
        assert off[0].tobytes() == data.tobytes()


class TestFluidVsExact:
    @pytest.mark.parametrize("algorithm,nbytes", [
        ("rd", 512 * 1024),        # every round moves one >threshold flow
        ("ring", 4 * 1024 * 1024),  # per-chunk flows, 8 ranks x 512KiB
    ])
    def test_completion_time_within_rtol(self, algorithm, nbytes):
        p = 8
        vals = _contrib(p, nbytes // 8)
        ref = np.sum(vals, axis=0)
        exact, t_exact = _offload_allreduce(
            p, vals, algorithm=algorithm, fluid=False, slim=True)
        fluid, t_fluid = _offload_allreduce(
            p, vals, algorithm=algorithm, fluid=True, slim=True)
        assert abs(t_fluid - t_exact) <= FLUID_RTOL * t_exact
        for r in range(p):
            assert exact[r].tobytes() == ref.tobytes()
            assert fluid[r].tobytes() == ref.tobytes()


class TestZeroHostCpuWindow:
    @pytest.mark.parametrize("builder", ["bcast", "allgather", "allreduce"])
    def test_no_host_spans_inside_offloaded_window(self, builder):
        p = 4
        cl = _cluster(p, slim=True)
        bus = EventBus.attach(cl)
        tracer = Tracer.attach(cl)
        fw = OffloadFramework(cl)
        vals = _contrib(p, 64)

        def prog(rank):
            ep = fw.endpoint(rank)
            if builder == "bcast":
                addr = ep.ctx.space.alloc_like(vals[0])
                greq = build_ibcast(ep, addr, vals[0].nbytes, comm_size=p)
            elif builder == "allgather":
                blk = vals[rank].nbytes
                addr = ep.ctx.space.alloc(p * blk)
                ep.ctx.space.write(addr + rank * blk, vals[rank])
                greq = build_iallgather(ep, addr, blk, comm_size=p)
            else:
                addr = ep.ctx.space.alloc_like(vals[rank])
                greq, _ = build_iallreduce(
                    ep, addr, vals[rank].nbytes, comm_size=p)
            yield from ep.group_call(greq)
            yield from ep.group_wait(greq)
            return True

        run_procs(cl, [prog(r) for r in range(p)])
        # Every rank opened and closed a window...
        assert len(bus.select(cat="group", name="offloaded")) == p
        assert len(bus.select(cat="group", name="done")) == p
        # ...and no host lane burned CPU inside any of them.
        assert trace_violations(bus, tracer) == []
