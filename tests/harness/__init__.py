"""Differential + invariant test harness for the offload stack.

Two pillars (ISSUE 2):

* :mod:`tests.harness.differential` -- run the *same* communication
  pattern through the offload framework (``gvmi`` and ``staged`` modes)
  and through plain host MPI, and assert every rank received
  byte-identical payloads.  The simulator models data movement with a
  real byte-level :class:`~repro.hw.memory.AddressSpace`, so "the
  payload arrived" is a meaningful end-to-end property, not a tautology.

* trace invariants -- ``repro.obs.invariants.check_trace`` run over the
  event streams those runs produce (every post completes, causality on
  arrows, offloaded group windows free of host CPU, cache-hit
  monotonicity).
"""

from tests.harness.differential import (
    BACKENDS,
    PATTERNS,
    SWEEP_SIZES,
    expected_payloads,
    payload_for,
    peers,
    run_backend,
    run_hostmpi,
    run_offload,
)

__all__ = [
    "BACKENDS",
    "PATTERNS",
    "SWEEP_SIZES",
    "expected_payloads",
    "payload_for",
    "peers",
    "run_backend",
    "run_hostmpi",
    "run_offload",
]
