"""Run one exchange pattern through interchangeable backends.

Every runner here answers the same question -- "after the exchange,
what bytes does each rank hold in its receive buffer?" -- so results
from different runtimes can be compared with ``==``:

* :func:`run_offload` -- ``Send_Offload``/``Recv_Offload`` (or the Group
  primitives) through :class:`~repro.offload.api.OffloadFramework`, in
  either ``gvmi`` (proposed) or ``staged`` (BluesMPI-style) mode.
* :func:`run_hostmpi` -- plain ``MPI_Isend``/``MPI_Irecv`` through
  :class:`~repro.mpi.runtime.MpiRuntime` (self messages become local
  copies, exactly as the collectives layer does).
* :func:`expected_payloads` -- the pure-python reference model: no
  simulator at all, just "rank r must end up with rank src's pattern".

All runners accept ``instrument``: a callable invoked with the fresh
cluster before any runtime objects exist, so tests can attach an
observability bus/tracer (``repro.obs.observe_cluster``) and check
trace invariants over the very runs being diffed.
"""

from __future__ import annotations

import numpy as np

from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.offload import OffloadFramework

__all__ = [
    "BACKENDS",
    "PATTERNS",
    "SWEEP_SIZES",
    "DIFF_SPEC",
    "expected_payloads",
    "payload_for",
    "peers",
    "run_backend",
    "run_hostmpi",
    "run_offload",
]

#: Message sizes for the full differential sweep: 1 B to 1 MiB with odd
#: counts (3, 17, 255, 4097) that straddle page/eager/chunk boundaries.
SWEEP_SIZES = [1, 3, 17, 255, 1024, 4097, 65536, 1 << 20]

#: Exchange patterns: who rank r sends to / receives from.
PATTERNS = ("self", "neighbor", "ring")

#: Backend flavours runnable through :func:`run_backend`.
BACKENDS = ("offload", "bluesmpi", "hostmpi")

#: 2 nodes x 2 ranks -- the smallest world where "neighbor" crosses a
#: node boundary and "ring" mixes intra- and inter-node hops.
DIFF_SPEC = ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2)

_TAG = 7


def peers(pattern: str, rank: int, world: int) -> tuple[int, int]:
    """``(dst, src)`` for ``rank`` under ``pattern``."""
    if pattern == "self":
        return rank, rank
    if pattern == "neighbor":
        # Pairwise exchange with the adjacent rank (crosses sockets and,
        # for the middle pair of a 2x2 world, the node boundary).
        peer = rank ^ 1
        if peer >= world:  # odd world: the last rank talks to itself
            peer = rank
        return peer, peer
    if pattern == "ring":
        return (rank + 1) % world, (rank - 1) % world
    raise ValueError(f"unknown pattern {pattern!r}")


def payload_for(rank: int, size: int, seed: int = 0) -> np.ndarray:
    """Deterministic per-rank payload (differs across ranks and seeds)."""
    rng = np.random.default_rng(seed * 1009 + rank)
    return rng.integers(0, 255, size=size, dtype=np.uint8)


def expected_payloads(pattern: str, world: int, size: int, seed: int = 0) -> dict:
    """Reference model: rank -> bytes it must hold after the exchange."""
    out = {}
    for rank in range(world):
        _, src = peers(pattern, rank, world)
        out[rank] = payload_for(src, size, seed).tobytes()
    return out


def run_offload(spec: ClusterSpec, pattern: str, size: int, *, mode: str = "gvmi",
                use_group: bool = False, repeats: int = 1, seed: int = 0,
                instrument=None):
    """Exchange via the offload primitives; returns ``(received, cluster)``.

    ``use_group`` records the pattern once and issues ``repeats``
    ``Group_Offload_call``s against it (so repeat runs exercise the
    Section VII-D plan caches); otherwise each repeat posts fresh
    ``Send_Offload``/``Recv_Offload`` pairs.
    """
    cl = Cluster(spec)
    if instrument is not None:
        instrument(cl)
    fw = OffloadFramework(cl, mode=mode, group_caching=True)
    world = spec.world_size
    received: dict[int, bytes] = {}

    def make(rank: int):
        dst, src = peers(pattern, rank, world)
        payload = payload_for(rank, size, seed)

        def prog():
            ep = fw.endpoint(rank)
            sbuf = ep.ctx.space.alloc_like(payload)
            rbuf = ep.ctx.space.alloc(size)
            if use_group:
                greq = ep.group_start()
                ep.group_send(greq, sbuf, size, dst=dst, tag=_TAG)
                ep.group_recv(greq, rbuf, size, src=src, tag=_TAG)
                ep.group_end(greq)
                for _ in range(repeats):
                    yield from ep.group_call(greq)
                    yield from ep.group_wait(greq)
            else:
                for _ in range(repeats):
                    s = yield from ep.send_offload(sbuf, size, dst=dst, tag=_TAG)
                    r = yield from ep.recv_offload(rbuf, size, src=src, tag=_TAG)
                    yield from ep.waitall([s, r])
            received[rank] = bytes(ep.ctx.space.read(rbuf, size))
            return True

        return prog

    procs = [cl.sim.process(make(r)()) for r in range(world)]
    cl.sim.run(until=cl.sim.all_of(procs))
    assert all(p.value for p in procs)
    return received, cl


def run_hostmpi(spec: ClusterSpec, pattern: str, size: int, *, repeats: int = 1,
                seed: int = 0, instrument=None):
    """Exchange via plain MPI_Isend/Irecv; returns ``(received, cluster)``."""
    cl = Cluster(spec)
    if instrument is not None:
        instrument(cl)
    world_obj = MpiWorld(cl)
    world = spec.world_size
    received: dict[int, bytes] = {}

    def make(rank: int):
        dst, src = peers(pattern, rank, world)
        payload = payload_for(rank, size, seed)

        def prog():
            rt = world_obj.runtime(rank)
            comm = world_obj.comm_world
            space = rt.ctx.space
            sbuf = space.alloc_like(payload)
            rbuf = space.alloc(size)
            for _ in range(repeats):
                if dst == rank:
                    # MpiRuntime rejects wire self-sends; the runtime's
                    # own convention (collectives' self-block) is a
                    # local copy.
                    yield from rt.copy_local(sbuf, rbuf, size)
                else:
                    r = yield from rt.irecv(comm, src, rbuf, size, tag=_TAG)
                    s = yield from rt.isend(comm, dst, sbuf, size, tag=_TAG)
                    yield from rt.waitall([s, r])
            received[rank] = bytes(space.read(rbuf, size))
            return True

        return prog

    procs = [cl.sim.process(make(r)()) for r in range(world)]
    cl.sim.run(until=cl.sim.all_of(procs))
    assert all(p.value for p in procs)
    return received, cl


def run_backend(backend: str, spec: ClusterSpec, pattern: str, size: int, **kw):
    """Dispatch by flavour name (``offload`` / ``bluesmpi`` / ``hostmpi``)."""
    if backend == "offload":
        return run_offload(spec, pattern, size, mode="gvmi", **kw)
    if backend == "bluesmpi":
        return run_offload(spec, pattern, size, mode="staged", **kw)
    if backend == "hostmpi":
        return run_hostmpi(spec, pattern, size, **kw)
    raise ValueError(f"unknown backend {backend!r}")
