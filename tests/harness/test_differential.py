"""Differential sweep: offload primitives vs plain MPI vs reference.

The property under test is end-to-end payload correctness: for a fixed
pattern/size/seed, every backend must leave byte-identical receive
buffers on every rank, and those bytes must match the simulator-free
reference model.  Sizes span 1 B to 1 MiB including odd counts that
straddle page, eager-threshold and pipeline-chunk boundaries.
"""

import pytest

from tests.harness import differential as d

FULL_SWEEP = [(p, s) for p in d.PATTERNS for s in d.SWEEP_SIZES]


@pytest.mark.parametrize("pattern,size", FULL_SWEEP,
                         ids=[f"{p}-{s}B" for p, s in FULL_SWEEP])
def test_offload_matches_hostmpi_and_reference(pattern, size):
    """Send_Offload/Recv_Offload == MPI_Isend/Irecv == reference model."""
    expected = d.expected_payloads(pattern, d.DIFF_SPEC.world_size, size, seed=3)
    offload, _ = d.run_offload(d.DIFF_SPEC, pattern, size, seed=3)
    hostmpi, _ = d.run_hostmpi(d.DIFF_SPEC, pattern, size, seed=3)
    assert offload == expected
    assert hostmpi == expected
    assert offload == hostmpi


@pytest.mark.parametrize("pattern", d.PATTERNS)
@pytest.mark.parametrize("size", [3, 1024, 65536])
def test_staged_mode_matches_reference(pattern, size):
    """The BluesMPI-style staged pipeline moves the same bytes."""
    expected = d.expected_payloads(pattern, d.DIFF_SPEC.world_size, size, seed=5)
    staged, _ = d.run_backend("bluesmpi", d.DIFF_SPEC, pattern, size, seed=5)
    assert staged == expected


@pytest.mark.parametrize("pattern", d.PATTERNS)
@pytest.mark.parametrize("size", [17, 4097])
def test_group_offload_matches_reference(pattern, size):
    """Group_Offload_call (3 repeats, so the plan caches engage) delivers
    the same bytes as the reference model."""
    expected = d.expected_payloads(pattern, d.DIFF_SPEC.world_size, size, seed=7)
    grouped, cl = d.run_offload(d.DIFF_SPEC, pattern, size,
                                use_group=True, repeats=3, seed=7)
    assert grouped == expected
    # Repeat calls actually hit the Section VII-D cache: only the first
    # call of each rank ships a full plan.
    assert cl.metrics.get("offload.group_call_cached") > 0


def test_repeated_basic_offload_is_stable():
    """Re-posting the same pair does not corrupt buffers (regcache reuse)."""
    expected = d.expected_payloads("ring", d.DIFF_SPEC.world_size, 2048, seed=11)
    got, _ = d.run_offload(d.DIFF_SPEC, "ring", 2048, repeats=4, seed=11)
    assert got == expected


def test_unknown_backend_and_pattern_rejected():
    with pytest.raises(ValueError):
        d.run_backend("smoke-signals", d.DIFF_SPEC, "ring", 8)
    with pytest.raises(ValueError):
        d.peers("spiral", 0, 4)
