"""Chrome ``trace_event`` export: Perfetto-schema validation on real runs.

The acceptance scenario: a fixed-seed fig15-style run (Group vs Simple
scatter-destination exchange) must emit a JSON document the Chrome
trace_event object format (what ui.perfetto.dev ingests) accepts --
structurally validated here: known phase codes, metadata records,
microsecond timestamps, balanced async begin/end pairs, every event on
a declared track.
"""

import json

import pytest

from repro.experiments.fig15_group_vs_simple import _scatter_dest
from repro.obs import observe_cluster

#: Phases of the trace_event object format this exporter may produce.
_ALLOWED_PH = {"M", "X", "b", "e", "i"}
_METADATA_NAMES = {"process_name", "thread_name", "thread_sort_index"}


@pytest.fixture(scope="module")
def fig15_obs():
    """One instrumented fixed-seed fig15 cell (group variant, 4KiB)."""
    holder = {}
    _scatter_dest("quick", 4096, "group",
                  instrument=lambda cl: holder.setdefault(
                      "obs", observe_cluster(cl)))
    return holder["obs"]


@pytest.fixture(scope="module")
def trace(fig15_obs):
    return fig15_obs.chrome_trace()


class TestTraceEventSchema:
    def test_toplevel_object_format(self, trace):
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] in ("ms", "ns")
        assert trace["otherData"]["schema"] == "repro.obs/1"
        assert len(trace["traceEvents"]) > 100  # a real run, not a stub

    def test_every_event_is_well_formed(self, trace):
        for ev in trace["traceEvents"]:
            assert ev["ph"] in _ALLOWED_PH, ev
            assert isinstance(ev["name"], str) and ev["name"]
            assert ev["pid"] == 0
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "M":
                assert ev["name"] in _METADATA_NAMES
                assert "args" in ev
            else:
                assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] in ("t", "p", "g")

    def test_all_tracks_are_declared(self, trace):
        named = {ev["tid"] for ev in trace["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        used = {ev["tid"] for ev in trace["traceEvents"] if ev["ph"] != "M"}
        assert used <= named

    def test_lane_order_hosts_then_dpus_then_nodes(self, trace):
        names = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "M" and ev["name"] == "thread_name":
                names[ev["tid"]] = ev["args"]["name"]
        ordered = [names[t] for t in sorted(names)]
        kinds = [n.rstrip("0123456789") for n in ordered]
        # hosts strictly before dpus, dpus before per-node fabric lanes
        assert kinds.index("dpu") > kinds.index("host")
        assert kinds.index("node") > kinds.index("dpu")

    def test_async_pairs_balance(self, trace):
        open_count: dict = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "b":
                open_count[(ev["cat"], ev["id"])] = \
                    open_count.get((ev["cat"], ev["id"]), 0) + 1
            elif ev["ph"] == "e":
                key = (ev["cat"], ev["id"])
                assert open_count.get(key, 0) > 0, f"e before b for {key}"
                open_count[key] -= 1
        assert all(v == 0 for v in open_count.values())

    def test_instants_carry_taxonomy_names(self, trace):
        instant_names = {ev["name"] for ev in trace["traceEvents"]
                         if ev["ph"] == "i"}
        for expected in ("group.call", "group.offloaded", "group.done",
                         "reg.mkey2", "ctrl.post", "wqe.post"):
            assert expected in instant_names

    def test_file_roundtrip(self, fig15_obs, tmp_path):
        path = tmp_path / "fig15.trace.json"
        doc = fig15_obs.write_chrome_trace(path)
        assert json.loads(path.read_text()) == doc


class TestTimelineAndSnapshot:
    def test_timeline_replaces_render_ascii(self, fig15_obs):
        text = fig15_obs.timeline(width=60)
        lines = text.splitlines()
        assert lines[0].startswith("window ")
        assert any(line.startswith("host0 ") and "busy" in line
                   for line in lines)
        assert any(line.startswith("dpu0") for line in lines)
        assert any("v" in line for line in lines)  # delivery marks
        assert all("%" in line for line in lines if "busy" in line)

    def test_metrics_snapshot_structure(self, fig15_obs):
        snap = fig15_obs.metrics_snapshot(extra={"figure": "fig15"})
        assert snap["schema"] == "repro.obs/1"
        assert snap["extra"] == {"figure": "fig15"}
        assert snap["sim_time"] > 0
        assert snap["counters"]["offload.group_call_cached"] > 0
        hists = snap["histograms"]
        assert "fabric.ctrl_latency" in hists
        lat = hists["fabric.ctrl_latency"]
        assert lat["count"] > 0
        assert lat["min"] <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        # must be JSON-serialisable as-is
        json.dumps(snap)
