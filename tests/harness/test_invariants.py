"""Trace-invariant checker: clean runs pass, broken runs fail loudly.

The positive half instruments real differential-harness runs and
asserts ``check_trace`` accepts them (and that the streams actually
contain the events the taxonomy promises -- an empty bus would pass
vacuously).  The negative half breaks the stack on purpose -- a 100%
FIN-drop fault campaign with no recovery -- and on synthetic streams,
and asserts the checker points at exactly what broke.
"""

import pytest

from tests.harness import differential as d
from repro.hw import Cluster, ClusterSpec, FaultPlan, FaultSpec
from repro.hw.trace import Tracer
from repro.obs import (
    EventBus,
    TraceInvariantError,
    check_trace,
    observe_cluster,
    trace_violations,
)
from repro.offload import OffloadFramework


def _observed(**kw):
    """Run an instrumented ring exchange; returns the Observability handle."""
    holder = {}

    def instrument(cl):
        holder["obs"] = observe_cluster(cl)

    d.run_offload(d.DIFF_SPEC, "ring", 2048, seed=1, instrument=instrument, **kw)
    return holder["obs"]


class TestCleanRunsPass:
    def test_basic_offload_ring_satisfies_all_invariants(self):
        obs = _observed()
        obs.check()  # must not raise
        # ... and not vacuously: the stream covers the taxonomy.
        bus = obs.bus
        for cat, name in [("req", "post"), ("req", "complete"),
                          ("xfer", "post"), ("xfer", "deliver"),
                          ("ctrl", "post"), ("ctrl", "deliver"),
                          ("reg", "mkey"), ("reg", "mkey2"),
                          ("proxy", "start"), ("proxy", "fin"),
                          ("wqe", "post"), ("proc", "start")]:
            assert bus.count(cat=cat, name=name) > 0, f"no {cat}.{name} events"
        assert bus.count(cat="req", name="post") == \
            bus.count(cat="req", name="complete")

    def test_group_offload_satisfies_invariants_including_windows(self):
        obs = _observed(use_group=True, repeats=3)
        obs.check()  # includes the no-host-CPU-in-offloaded-window check
        bus = obs.bus
        assert bus.count(cat="group", name="offloaded") > 0
        assert bus.count(cat="group", name="done") > 0
        # Cache-mode calls per rank: first is a build, the rest cached.
        builds = bus.select(cat="group", name="call", mode="build")
        cached = bus.select(cat="group", name="call", mode="cached")
        assert len(builds) == d.DIFF_SPEC.world_size
        assert len(cached) == 2 * d.DIFF_SPEC.world_size

    def test_repeated_basic_offload_hits_registration_caches(self):
        obs = _observed(repeats=4)
        obs.check()
        # The 2nd..4th posts of the same buffers are served from the
        # GVMI registration caches -- and hits only ever grow.
        assert obs.bus.count(cat="cache", name="hit") > 0
        assert obs.bus.count(cat="cache", name="miss") > 0

    def test_hostmpi_run_passes_too(self):
        holder = {}
        d.run_hostmpi(d.DIFF_SPEC, "neighbor", 4096, seed=2,
                      instrument=lambda cl: holder.setdefault(
                          "obs", observe_cluster(cl)))
        obs = holder["obs"]
        obs.check()
        assert obs.bus.count(cat="mpi", name="isend") > 0
        assert obs.bus.count(cat="mpi", name="complete") > 0


class TestBrokenRunsFail:
    def test_lost_fin_is_reported_as_never_completed(self):
        """Acceptance scenario: a deliberately broken completion path via
        the existing fault layer makes the checker fail pointedly."""
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        cl.install_faults(FaultPlan(
            FaultSpec(drop_prob=1.0, control_kinds=frozenset({"fin"})),
            seed=5))
        obs = observe_cluster(cl)
        fw = OffloadFramework(cl, mode="gvmi")

        def prog(rank, peer):
            ep = fw.endpoint(rank)
            buf = ep.ctx.space.alloc(512, fill=rank + 1)
            # Post but never wait: recovery is wait-driven, so the
            # dropped FINs are never retransmitted.
            if rank == 0:
                yield from ep.send_offload(buf, 512, dst=peer, tag=1)
            else:
                yield from ep.recv_offload(buf, 512, src=peer, tag=1)
            return True

        procs = [cl.sim.process(prog(0, 1)), cl.sim.process(prog(1, 0))]
        cl.sim.run(until=cl.sim.all_of(procs))
        cl.sim.run()  # drain in-flight control traffic; only FINs are lost

        with pytest.raises(TraceInvariantError) as exc:
            obs.check()
        msg = str(exc.value)
        assert "never completed" in msg
        assert "FIN/completion was lost" in msg
        # Both the send and the recv request are flagged, each by rid.
        assert msg.count("never completed") == 2
        # The drops themselves were explicit, so the *control* invariant
        # is satisfied -- only the request invariant fires.
        assert "neither delivered nor recorded as dropped" not in msg

    def test_undelivered_transfer_flagged(self):
        bus = EventBus()
        bus.emit("xfer", "post", "node0", xid=0, kind="rdma_write",
                 size=64, initiator="dpu", dst=1)
        (violation,) = trace_violations(bus)
        assert "never delivered" in violation and "bytes in flight" in violation

    def test_unaccounted_control_drop_flagged(self):
        bus = EventBus()
        bus.emit("ctrl", "post", "node0", cid=3, kind="rts",
                 size=64, initiator="host", dst=1)
        (violation,) = trace_violations(bus)
        assert "cid=3" in violation
        assert "neither delivered nor recorded as dropped" in violation

    def test_host_cpu_inside_offloaded_window_flagged(self):
        clock = type("Clock", (), {"now": 0.0})()
        bus = EventBus(sim=clock)
        clock.now = 1e-6
        bus.emit("group", "offloaded", "host0", call=1, sig=1)
        clock.now = 9e-6
        bus.emit("group", "done", "host0", call=1)
        tracer = Tracer()
        tracer.record_span("host0", 4e-6, 6e-6)  # CPU burn mid-window
        violations = trace_violations(bus, tracer)
        assert any("without host involvement" in v for v in violations)
        # The same stream with the span on another lane is clean.
        tracer2 = Tracer()
        tracer2.record_span("host1", 4e-6, 6e-6)
        assert trace_violations(bus, tracer2) == []

    def test_plan_rebuild_after_cache_hit_flagged(self):
        bus = EventBus()
        bus.emit("group", "call", "host0", mode="build", sig=7, call=1)
        bus.emit("group", "call", "host0", mode="cached", sig=7, call=2)
        bus.emit("group", "call", "host0", mode="build", sig=7, call=3)
        violations = trace_violations(bus)
        assert any("plan-cache hits must stay monotone" in v
                   for v in violations)
        # With an intervening fault the rebuild is legitimate.
        bus2 = EventBus()
        bus2.emit("group", "call", "host0", mode="cached", sig=7, call=1)
        bus2.emit("fault", "inject", "fabric", category="proxy", detail="kill")
        bus2.emit("group", "call", "host0", mode="build", sig=7, call=2)
        assert trace_violations(bus2) == []

    def test_backwards_arrow_flagged(self):
        from repro.hw.trace import Arrow

        tracer = Tracer()
        tracer.arrows.append(Arrow("node0", "node1", 64, "rts",
                                   posted=5e-6, delivered=2e-6))
        (violation,) = trace_violations(EventBus(), tracer)
        assert "before it was posted" in violation
