"""Edge cases of the simulation kernel the optimized fast paths must honor.

These pin down tie-breaking and degenerate-input semantics that the
performance work in ``sim/core.py`` (inlined run loop, event free-lists,
resource fast paths) is required to preserve:

* zero-delay ``Timeout`` vs ``succeed()`` at the same timestamp resolve
  strictly by schedule order (the global seq counter);
* empty conditions (``AnyOf([])`` / ``AllOf([])``) succeed immediately;
* waiting on an already-processed event resumes the process at once with
  the event's recorded outcome;
* ``processed_events`` is bit-stable across seeded re-runs of the same
  workload (the perf harness keys its events/sec metric on it).
"""

from __future__ import annotations

import pytest

from repro.sim import AllOf, AnyOf, SimulationError, Simulator
from repro.sim.rng import RngRegistry


class TestSameTimestampTieBreak:
    def test_zero_delay_timeout_before_later_succeed(self, sim):
        """A timeout(0) scheduled first fires before a succeed() issued after."""
        order = []
        t = sim.timeout(0, value="timeout")
        ev = sim.event()
        ev.succeed("succeed")
        t.callbacks.append(lambda e: order.append(e.value))
        ev.callbacks.append(lambda e: order.append(e.value))
        sim.run()
        assert order == ["timeout", "succeed"]

    def test_succeed_before_later_zero_delay_timeout(self, sim):
        """Reversing the schedule order reverses the firing order."""
        order = []
        ev = sim.event()
        ev.succeed("succeed")
        t = sim.timeout(0, value="timeout")
        t.callbacks.append(lambda e: order.append(e.value))
        ev.callbacks.append(lambda e: order.append(e.value))
        sim.run()
        assert order == ["succeed", "timeout"]

    def test_equal_delay_timeouts_fire_in_creation_order(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            sim.timeout(1.0, value=tag).callbacks.append(
                lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 1.0

    def test_zero_delay_timeout_does_not_advance_clock(self, sim):
        def proc(sim):
            yield sim.timeout(0)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0.0


class TestEmptyConditions:
    def test_any_of_empty_succeeds_immediately(self, sim):
        cond = AnyOf(sim, [])
        assert cond.triggered
        assert cond.value == {}
        sim.run()
        assert cond.processed

    def test_all_of_empty_succeeds_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered
        assert cond.value == {}

    def test_process_yielding_empty_any_of_resumes_at_once(self, sim):
        def proc(sim):
            result = yield sim.any_of([])
            return (sim.now, result)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (0.0, {})


class TestAlreadyProcessedEvent:
    def test_yield_on_processed_event_resumes_immediately(self, sim):
        """Waiting on a spent event must deliver its recorded value without
        consuming simulated time (the resume loop takes the
        ``callbacks is None`` shortcut)."""
        ev = sim.event()
        ev.succeed(41)
        sim.run()
        assert ev.processed

        def late(sim):
            value = yield ev
            return (sim.now, value + 1)

        p = sim.process(late(sim))
        sim.run()
        assert p.value == (0.0, 42)

    def test_condition_on_processed_children(self, sim):
        a = sim.event()
        a.succeed("x")
        sim.run()
        cond = sim.all_of([a])
        assert cond.triggered
        assert cond.value == {a: "x"}

    def test_processed_failed_event_rethrows_on_yield(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        sim.run()

        def late(sim):
            try:
                yield ev
            except RuntimeError as exc:
                return str(exc)

        p = sim.process(late(sim))
        sim.run()
        assert p.value == "boom"

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)


class TestProcessedEventsDeterminism:
    @staticmethod
    def _workload(seed: int) -> tuple[int, float]:
        """A contention-heavy seeded run; returns (processed_events, end time)."""
        from repro.sim.resources import Resource, Store

        sim = Simulator()
        rng = RngRegistry(root_seed=seed).stream("edges")
        port = Resource(sim, capacity=2)
        queue = Store(sim)

        def producer(sim, i):
            for _ in range(10):
                yield sim.timeout(float(rng.integers(1, 5)))
                yield queue.put(i)

        def consumer(sim):
            for _ in range(20):
                yield queue.get()
                req = port.request()
                yield req
                yield sim.timeout(0.5)
                port.release(req)

        for i in range(4):
            sim.process(producer(sim, i))
        sim.process(consumer(sim))
        sim.process(consumer(sim))
        sim.run()
        return sim.processed_events, sim.now

    def test_identical_across_reruns(self):
        first = self._workload(seed=7)
        second = self._workload(seed=7)
        assert first == second
        assert first[0] > 0

    def test_each_seed_self_consistent(self):
        for seed in (0, 1, 2026):
            assert self._workload(seed) == self._workload(seed)

    def test_counter_survives_nested_run_calls(self, sim):
        """run(until=...) segments must accumulate, not reset, the counter."""
        for _ in range(5):
            sim.timeout(1.0)
        sim.run(until=0.5)
        mid = sim.processed_events
        sim.run()
        assert sim.processed_events >= mid
        assert sim.processed_events == mid + 5
