"""Unit tests for the simulation kernel: events, conditions, clock."""

import pytest

from repro.sim import (
    AllOf,
    SimulationError,
    Simulator,
    Timeout,
)


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        fired = []

        def proc(sim):
            yield sim.timeout(2.5)
            fired.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert fired == [2.5]

    def test_peek_reports_next_event_time(self, sim):
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == pytest.approx(1.0)

    def test_peek_empty_heap_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_run_until_time_stops_exactly(self, sim):
        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run(until=4.5)
        assert sim.now == pytest.approx(4.5)

    def test_run_into_past_rejected(self, sim):
        sim.process(iter_timeout(sim, 5.0))
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_timeout_fires_at_now(self, sim):
        t = sim.timeout(0.0, value="x")
        sim.run()
        assert t.processed and t.value == "x"


def iter_timeout(sim, d):
    yield sim.timeout(d)


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []

        def waiter(sim):
            got.append((yield ev))

        sim.process(waiter(sim))
        ev.succeed(41)
        sim.run()
        assert got == [41]

    def test_double_succeed_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_then_succeed_rejected(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_crashes_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_failure_thrown_into_waiter(self, sim):
        ev = sim.event()
        caught = []

        def waiter(sim):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter(sim))
        ev.fail(ValueError("kapow"))
        sim.run()
        assert caught == ["kapow"]

    def test_value_unavailable_until_triggered(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_pending_timeout_is_triggered_but_not_processed(self, sim):
        t = Timeout(sim, 1.0)
        assert t.triggered and not t.processed


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        times = []

        def proc(sim):
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
            times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [3.0]

    def test_any_of_fires_on_first(self, sim):
        times = []

        def proc(sim):
            result = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            times.append((sim.now, list(result.values())))

        sim.process(proc(sim))
        sim.run()
        assert times == [(1.0, ["fast"])]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def proc(sim):
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [0.0]

    def test_any_of_collects_only_fired_events(self, sim):
        def proc(sim):
            slow = sim.timeout(9.0, "slow")
            result = yield sim.any_of([slow, sim.timeout(1.0, "fast")])
            assert "slow" not in result.values()
            assert list(result.values()) == ["fast"]

        p = sim.process(proc(sim))
        sim.run()
        assert p.ok

    def test_condition_propagates_failure(self, sim):
        bad = sim.event()
        caught = []

        def proc(sim):
            try:
                yield sim.all_of([sim.timeout(1.0), bad])
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc(sim))
        bad.fail(RuntimeError("child failed"))
        sim.run()
        assert caught == ["child failed"]

    def test_cross_simulator_events_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [sim.timeout(1.0), other.timeout(1.0)])

    def test_nested_conditions(self, sim):
        out = []

        def proc(sim):
            inner = sim.any_of([sim.timeout(2.0, "a"), sim.timeout(4.0, "b")])
            yield sim.all_of([inner, sim.timeout(1.0)])
            out.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert out == [2.0]


class TestDeterminism:
    def test_tie_break_is_insertion_order(self, sim):
        order = []

        def make(tag):
            def proc(sim):
                yield sim.timeout(1.0)
                order.append(tag)

            return proc

        for tag in ("a", "b", "c"):
            sim.process(make(tag)(sim))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_identical_runs_process_identical_event_counts(self):
        def build():
            s = Simulator()

            def proc(sim, n):
                for _ in range(n):
                    yield sim.timeout(0.5)

            for n in (3, 5, 7):
                s.process(proc(s, n))
            s.run()
            return s.processed_events, s.now

        assert build() == build()


class TestRunUntilEvent:
    def test_returns_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(2.0)
            return "answer"

        p = sim.process(proc(sim))
        assert sim.run(until=p) == "answer"

    def test_raises_if_heap_dries_first(self, sim):
        never = sim.event()
        sim.timeout(1.0)
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run(until=never)

    def test_until_already_processed_event(self, sim):
        t = sim.timeout(1.0, "v")
        sim.run()
        assert sim.run(until=t) == "v"

    def test_failed_until_event_raises(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise KeyError("inner")

        p = sim.process(proc(sim))
        with pytest.raises(KeyError):
            sim.run(until=p)
