"""Golden-trace regression tests: the event stream IS the spec.

Two fixed-seed scenarios -- a ring broadcast over Basic primitives and
a two-call group ialltoall -- serialise their full observability event
streams and must match the checked-in files under ``tests/golden/``
byte for byte.  Any protocol change (an extra control message, a
reordered registration, a lost cache hit) shows up as a readable diff
of tagged events rather than a silent behaviour drift.

Regenerate after an *intentional* protocol change with::

    pytest tests/test_golden_traces.py --regen-golden

Request/plan identifiers come from module-global counters, so their
absolute values depend on what ran earlier in the process; the
serialiser renames them to dense first-appearance indices (``r0``,
``r1``, ... / ``p0``, ...) to keep the files stable.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.helpers import pattern
from repro.hw import Cluster, ClusterSpec
from repro.obs import observe_cluster
from repro.offload import OffloadFramework
from repro.util import atomic_write

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Event args that carry values from module-global counters: normalised
#: per key to dense first-appearance indices.
_COUNTER_KEYS = {"rid": "r", "call": "r", "plan": "p", "sig": "p"}


def serialize_events(bus) -> str:
    """Deterministic text form of a bus stream (one line per event)."""
    renames: dict[str, dict] = {"r": {}, "p": {}}

    def norm(key, value):
        prefix = _COUNTER_KEYS.get(key)
        if prefix is None:
            return value
        table = renames[prefix]
        if value not in table:
            table[value] = f"{prefix}{len(table)}"
        return table[value]

    lines = []
    for ev in bus.events:
        kv = " ".join(f"{k}={norm(k, v)}" for k, v in ev.args)
        lines.append(
            f"{ev.time * 1e9:12.3f} {ev.cat + '.' + ev.name:<16s} "
            f"{ev.entity:<8s} {kv}".rstrip()
        )
    return "\n".join(lines) + "\n"


def _ring_broadcast() -> "object":
    """Rank 0's payload travels the whole ring via Basic primitives."""
    cl = Cluster(ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2))
    obs = observe_cluster(cl)
    fw = OffloadFramework(cl, mode="gvmi")
    size = 1024
    data = pattern(size, seed=21)
    P = cl.spec.world_size
    received = {}

    def make(rank):
        def prog():
            ep = fw.endpoint(rank)
            if rank == 0:
                buf = ep.ctx.space.alloc_like(data)
            else:
                buf = ep.ctx.space.alloc(size)
                r = yield from ep.recv_offload(buf, size, src=rank - 1, tag=3)
                yield from ep.wait(r)
            if rank != P - 1:
                s = yield from ep.send_offload(buf, size, dst=rank + 1, tag=3)
                yield from ep.wait(s)
            received[rank] = bytes(ep.ctx.space.read(buf, size))
            return True

        return prog

    procs = [cl.sim.process(make(r)()) for r in range(P)]
    cl.sim.run(until=cl.sim.all_of(procs))
    assert all(received[r] == data.tobytes() for r in range(P))
    obs.check()
    return obs


def _group_ialltoall() -> "object":
    """Two Group_Offload_calls of a full alltoall (2nd replays cached)."""
    cl = Cluster(ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2))
    obs = observe_cluster(cl)
    fw = OffloadFramework(cl, mode="gvmi", group_caching=True)
    block = 512
    P = cl.spec.world_size

    def make(rank):
        def prog():
            ep = fw.endpoint(rank)
            sbuf = ep.ctx.space.alloc(P * block, fill=rank + 1)
            rbuf = ep.ctx.space.alloc(P * block)
            greq = ep.group_start()
            for dist in range(1, P):
                dst = (rank + dist) % P
                src = (rank - dist) % P
                ep.group_send(greq, sbuf + dst * block, block, dst=dst, tag=4)
                ep.group_recv(greq, rbuf + src * block, block, src=src, tag=4)
            ep.group_end(greq)
            for _ in range(2):
                yield from ep.group_call(greq)
                yield from ep.group_wait(greq)
            return True

        return prog

    procs = [cl.sim.process(make(r)()) for r in range(P)]
    cl.sim.run(until=cl.sim.all_of(procs))
    assert all(p.value for p in procs)
    obs.check()
    return obs


SCENARIOS = {
    "ring_broadcast": _ring_broadcast,
    "group_ialltoall": _group_ialltoall,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_event_stream_matches_golden(name, regen_golden):
    obs = SCENARIOS[name]()
    got = serialize_events(obs.bus)
    path = GOLDEN_DIR / f"{name}.events"
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        # Atomic per-process write: safe under pytest-xdist, where
        # another worker may be reading the file for its own scenario.
        atomic_write(path, got)
        pytest.skip(f"regenerated {path.name} ({len(got.splitlines())} events)")
    assert path.exists(), (
        f"{path} missing -- run pytest with --regen-golden to create it"
    )
    want = path.read_text()
    assert got == want, (
        f"{name}: event stream drifted from {path.name} -- if the "
        f"protocol change is intentional, rerun with --regen-golden"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenarios_are_deterministic_within_process(name):
    """Two fresh runs in one process serialise identically (the property
    the golden files rely on)."""
    first = serialize_events(SCENARIOS[name]().bus)
    second = serialize_events(SCENARIOS[name]().bus)
    assert first == second
