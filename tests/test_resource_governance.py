"""Resource governance units: budgets, eviction, epochs, backpressure.

Covers the bounded-memory machinery of docs/RESOURCES.md layer by
layer: AddressSpace byte budgets and address reuse, the free ->
revoke-covering-keys protocol, LRU eviction in every registration
cache, CQ overflow, and the admission windows of the offload and SHMEM
front-ends.  Integration of the recovery paths (stale keys, OOM
degradation) lives in test_free_reuse.py and test_soak_governance.py.
"""

import pytest

from tests.helpers import pattern, run_proc, run_procs
from repro.hw import Cluster, ClusterSpec, MachineParams, RetryPolicy
from repro.hw.memory import AddressSpace, OutOfMemoryError, peak_stats, reset_peak_stats
from repro.mpi.regcache import RegistrationCache
from repro.offload import OffloadFramework
from repro.offload.gvmi_cache import HostGvmiCache
from repro.offload.group_cache import DpuPlanCache, HostGroupCache
from repro.offload.shmem import ShmemWorld
from repro.offload.staging import StagingChannel
from repro.verbs import CqOverflowError, QueuePair, rdma_write, reg_mr
from repro.verbs.gvmi import cross_register, gvmi_id_of, host_gvmi_register
from repro.verbs.mr import ProtectionError
from repro.verbs.rdma import verbs_state


def _params(**kw) -> MachineParams:
    return MachineParams().with_overrides(**kw)


def _cluster(nodes=2, ppn=1, proxies=1, **overrides) -> Cluster:
    return Cluster(ClusterSpec(nodes=nodes, ppn=ppn, proxies_per_dpu=proxies,
                               params=_params(**overrides)))


# ---------------------------------------------------------------------------
# AddressSpace: budgets, reuse, peak tracking
# ---------------------------------------------------------------------------

class TestBudgets:
    def test_alloc_over_budget_raises(self):
        space = AddressSpace("t", budget=10_000)
        space.alloc(8_000)
        with pytest.raises(OutOfMemoryError) as ei:
            space.alloc(4_096)
        assert ei.value.requested == 4_096
        assert ei.value.resident == 8_000
        assert ei.value.budget == 10_000

    def test_free_returns_budget(self):
        space = AddressSpace("t", budget=10_000)
        a = space.alloc(8_000)
        space.free(a)
        assert space.allocated_bytes == 0
        space.alloc(9_000)  # fits again

    def test_oom_is_a_memoryerror(self):
        space = AddressSpace("t", budget=16)
        with pytest.raises(MemoryError):
            space.alloc(64)

    def test_unbounded_by_default(self):
        space = AddressSpace("t")
        for _ in range(8):
            space.alloc(1 << 20)

    def test_reuse_recycles_same_address(self):
        space = AddressSpace("t", reuse=True)
        a = space.alloc(4096, fill=7)
        space.free(a)
        b = space.alloc(4096)
        assert b == a
        # Fresh incarnation: zeroed, not the old bytes.
        assert int(space.view(b, 1)[0]) == 0

    def test_no_reuse_by_default(self):
        space = AddressSpace("t")
        a = space.alloc(4096)
        space.free(a)
        assert space.alloc(4096) != a

    def test_free_bumps_epoch(self):
        space = AddressSpace("t")
        assert space.epoch == 0
        a = space.alloc(64)
        b = space.alloc(64)
        space.free(a)
        space.free(b)
        assert space.epoch == 2

    def test_peak_tracking(self):
        reset_peak_stats()
        space = AddressSpace("t", kind="dpu")
        a = space.alloc(10_000)
        space.free(a)
        space.alloc(2_000)
        assert space.peak_bytes == 10_000
        assert peak_stats()["dpu"] >= 10_000
        reset_peak_stats()
        assert peak_stats() == {"host": 0, "dpu": 0}

    def test_cluster_budgets_reach_spaces(self):
        cl = _cluster(host_mem_budget=1 << 20, dpu_mem_budget=1 << 16,
                      reuse_freed_addresses=True)
        host = cl.rank_ctx(0)
        proxy = cl.proxies[0]
        assert host.space.budget == 1 << 20
        assert proxy.space.budget == 1 << 16
        assert host.space.reuse and proxy.space.reuse


# ---------------------------------------------------------------------------
# free -> revoke covering keys (the epoch protocol's enforcement hook)
# ---------------------------------------------------------------------------

class TestFreeRevokes:
    def test_free_revokes_ib_keys(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        addr = ctx.space.alloc(4096)

        def prog(sim):
            return (yield from reg_mr(ctx, addr, 4096))

        handle = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        assert keys.is_live(handle.lkey) and keys.is_live(handle.rkey)
        revoked = ctx.free(addr)
        assert {i.key for i in revoked} == {handle.lkey, handle.rkey}
        assert not keys.is_live(handle.lkey)
        assert not keys.live_owned_by(ctx)
        with pytest.raises(ProtectionError, match="revoked"):
            keys.lookup(handle.rkey)

    def test_free_revokes_mkey_and_derived_mkey2(self, tiny_cluster):
        """mkey2s are owned by the host ctx they grant access to, so the
        host's free kills the whole cross-registration chain."""
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxies[0]
        addr = host.space.alloc(8192)
        gid = gvmi_id_of(proxy)

        def prog(sim):
            mkey = yield from host_gvmi_register(host, addr, 8192, gid)
            mkey2 = yield from cross_register(proxy, addr, 8192, gid, mkey.key)
            return mkey, mkey2

        mkey, mkey2 = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        assert mkey2.owner is host
        host.free(addr)
        assert not keys.is_live(mkey.key)
        assert not keys.is_live(mkey2.key)
        assert tiny_cluster.metrics.get("verbs.revoked_keys") == 2

    def test_free_only_revokes_overlapping(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        a = ctx.space.alloc(4096)
        b = ctx.space.alloc(4096)

        def prog(sim):
            ha = yield from reg_mr(ctx, a, 4096)
            hb = yield from reg_mr(ctx, b, 4096)
            return ha, hb

        ha, hb = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        ctx.free(a)
        assert not keys.is_live(ha.lkey)
        assert keys.is_live(hb.lkey)

    def test_stale_key_epoch_stamped(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        addr = ctx.space.alloc(64)

        def prog(sim):
            return (yield from reg_mr(ctx, addr, 64))

        handle = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        assert keys.lookup(handle.lkey).epoch == 0
        ctx.free(addr)
        addr2 = ctx.space.alloc(64)

        def prog2(sim):
            return (yield from reg_mr(ctx, addr2, 64))

        handle2 = run_proc(tiny_cluster, prog2(tiny_cluster.sim))
        assert keys.lookup(handle2.lkey).epoch == 1


# ---------------------------------------------------------------------------
# LRU eviction: IB regcache, GVMI caches, group/plan caches, staging pool
# ---------------------------------------------------------------------------

class TestCacheEviction:
    def test_ib_regcache_evicts_lru_and_deregisters(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        cache = RegistrationCache(ctx, capacity=2)
        keys = verbs_state(tiny_cluster).keys
        addrs = [ctx.space.alloc(4096) for _ in range(3)]

        def prog(sim):
            handles = []
            for a in addrs:
                handles.append((yield from cache.get(a, 4096)))
            return handles

        handles = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert cache.evictions == 1
        # Oldest (first) registration was deregistered on eviction.
        assert not keys.is_live(handles[0].lkey)
        assert keys.is_live(handles[1].lkey) and keys.is_live(handles[2].lkey)
        assert len(cache._entries) == 2

    def test_ib_regcache_hit_refreshes_lru(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        cache = RegistrationCache(ctx, capacity=2)
        a, b, c = (ctx.space.alloc(4096) for _ in range(3))

        def prog(sim):
            ha = yield from cache.get(a, 4096)
            yield from cache.get(b, 4096)
            yield from cache.get(a, 4096)  # refresh a: b is now LRU
            yield from cache.get(c, 4096)  # evicts b, not a
            return ha

        ha = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        assert keys.is_live(ha.lkey)
        assert (a, 4096) in cache._entries and (b, 4096) not in cache._entries

    def test_host_gvmi_cache_evicts_and_revokes(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxies[0]
        cache = HostGvmiCache(host, capacity=2)
        gid = gvmi_id_of(proxy)
        addrs = [host.space.alloc(4096) for _ in range(3)]

        def prog(sim):
            infos = []
            for a in addrs:
                infos.append((yield from cache.get(proxy, gid, a, 4096)))
            return infos

        infos = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        keys = verbs_state(tiny_cluster).keys
        assert cache.evictions == 1
        assert not keys.is_live(infos[0].key)
        assert keys.is_live(infos[1].key) and keys.is_live(infos[2].key)
        assert cache.entries == 2
        assert tiny_cluster.metrics.get("gvmi_cache.host.evict") == 1

    def test_capacity_param_flows_from_machine_params(self):
        cl = _cluster(gvmi_cache_capacity=5, ib_cache_capacity=7)
        host = cl.rank_ctx(0)
        assert HostGvmiCache(host).capacity == 5
        assert RegistrationCache(host).capacity == 7

    def test_host_group_cache_bounded(self, tiny_cluster):
        cache = HostGroupCache(capacity=2)
        plans = [cache.insert(("sig", i), [{"kind": "barrier"}]) for i in range(3)]
        assert cache.lookup(("sig", 0)) is None  # evicted
        assert cache.lookup(("sig", 1)) is plans[1]
        assert cache.lookup(("sig", 2)) is plans[2]
        assert cache.evictions == 1

    def test_dpu_plan_cache_bounded(self, tiny_cluster):
        proxy = tiny_cluster.proxies[0]
        cache = DpuPlanCache(ctx=proxy, capacity=2)
        for pid in (1, 2, 3):
            cache.store(pid, {"plan_id": pid, "entries": []})
        assert cache.fetch(1) is None
        assert cache.fetch(2) is not None and cache.fetch(3) is not None
        assert cache.evictions == 1

    def test_staging_pool_reclaims_under_budget(self, tiny_cluster):
        proxy = tiny_cluster.proxies[0]
        proxy.space.budget = proxy.space.allocated_bytes + 16_384
        chan = StagingChannel(proxy)
        keys = verbs_state(tiny_cluster).keys

        def prog(sim):
            bufs = []
            for _ in range(3):
                bufs.append((yield from chan.acquire(4096)))
            for b in bufs:
                chan.release(b)
            # 12 KiB pooled in 4 KiB buffers; a 16 KiB request must
            # tear pooled buffers down to fit.
            big = yield from chan.acquire(16_384)
            return bufs, big

        bufs, big = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert chan.evictions >= 2
        assert not keys.is_live(bufs[0].handle.lkey)
        assert keys.is_live(big.handle.lkey)
        assert tiny_cluster.metrics.get("staging.evictions") == chan.evictions

    def test_staging_oom_when_reclaim_insufficient(self, tiny_cluster):
        proxy = tiny_cluster.proxies[0]
        proxy.space.budget = proxy.space.allocated_bytes + 4096
        chan = StagingChannel(proxy)

        def prog(sim):
            with pytest.raises(OutOfMemoryError):
                yield from chan.acquire(16_384)

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert tiny_cluster.metrics.get("staging.oom") == 1
        assert chan.outstanding == 0


# ---------------------------------------------------------------------------
# CQ overflow
# ---------------------------------------------------------------------------

class TestCqOverflow:
    def _setup(self, cluster, size=1024):
        src, dst = cluster.rank_ctx(0), cluster.rank_ctx(1)
        sa = src.space.alloc_like(pattern(size))
        da = dst.space.alloc(size)
        box = {}

        def prog(sim):
            box["s"] = yield from reg_mr(src, sa, size)
            box["d"] = yield from reg_mr(dst, da, size)

        run_proc(cluster, prog(cluster.sim))
        return src, dst, sa, da, box["s"], box["d"]

    def test_unpolled_completions_overflow(self, tiny_cluster):
        src, dst, sa, da, hs, hd = self._setup(tiny_cluster)
        qp = QueuePair(src, dst, cq_depth=1)

        def prog(sim):
            for _ in range(2):
                yield from qp.post(rdma_write(
                    src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey,
                    dst_addr=da, size=256))
            # Both completions fire while nobody polls: depth-1 CQ
            # overflows on the second.
            yield sim.timeout(1.0)
            assert qp.overflowed
            with pytest.raises(CqOverflowError):
                yield from qp.drain()

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert tiny_cluster.metrics.get("verbs.cq_overflows") == 1

    def test_polling_consumer_never_overflows(self, tiny_cluster):
        src, dst, sa, da, hs, hd = self._setup(tiny_cluster)
        qp = QueuePair(src, dst, cq_depth=1)

        def prog(sim):
            for _ in range(6):
                yield from qp.post(rdma_write(
                    src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey,
                    dst_addr=da, size=256))
                yield from qp.drain()
            assert not qp.overflowed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert tiny_cluster.metrics.get("verbs.cq_overflows") == 0

    def test_default_cq_unbounded(self, tiny_cluster):
        src, dst, sa, da, hs, hd = self._setup(tiny_cluster)
        qp = QueuePair(src, dst)
        assert qp.cq_depth is None


# ---------------------------------------------------------------------------
# admission control / backpressure windows
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_offload_window_blocks_and_drains(self):
        cl = _cluster()
        fw = OffloadFramework(cl, max_outstanding=1)
        size = 2048
        datas = [pattern(size, seed=i) for i in range(3)]

        def sender(sim):
            ep = fw.endpoint(0)
            reqs = []
            for i, d in enumerate(datas):
                addr = ep.ctx.space.alloc_like(d)
                reqs.append((yield from ep.send_offload(addr, size, dst=1, tag=i)))
            for r in reqs:
                yield from ep.wait(r)

        def receiver(sim):
            ep = fw.endpoint(1)
            for i, d in enumerate(datas):
                addr = ep.ctx.space.alloc(size)
                req = yield from ep.recv_offload(addr, size, src=0, tag=i)
                yield from ep.wait(req)
                assert (ep.ctx.space.read(addr, size) == d).all()

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
        fw.assert_quiescent()
        # Sends 2 and 3 each stalled behind the window of one.
        assert cl.metrics.get("offload.admission_stalls") >= 2

    def test_window_off_by_default(self):
        cl = _cluster()
        fw = OffloadFramework(cl)
        assert fw.max_outstanding is None

    def test_window_from_params(self):
        cl = _cluster(max_outstanding_offloads=4)
        fw = OffloadFramework(cl)
        assert fw.max_outstanding == 4

    def test_resilient_window_survives_faults(self):
        from repro.hw import FaultPlan, FaultSpec

        cl = _cluster()
        cl.install_faults(FaultPlan(FaultSpec(drop_prob=0.2), seed=5))
        fw = OffloadFramework(cl, max_outstanding=2,
                              retry=RetryPolicy(timeout=30e-6))
        size = 1024
        datas = [pattern(size, seed=10 + i) for i in range(6)]

        def sender(sim):
            ep = fw.endpoint(0)
            reqs = []
            for i, d in enumerate(datas):
                addr = ep.ctx.space.alloc_like(d)
                reqs.append((yield from ep.send_offload(addr, size, dst=1, tag=i)))
            yield from ep.waitall(reqs)

        def receiver(sim):
            ep = fw.endpoint(1)
            reqs, addrs = [], []
            for i in range(len(datas)):
                addr = ep.ctx.space.alloc(size)
                addrs.append(addr)
                reqs.append((yield from ep.recv_offload(addr, size, src=0, tag=i)))
            yield from ep.waitall(reqs)
            for addr, d in zip(addrs, datas):
                assert (ep.ctx.space.read(addr, size) == d).all()

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])

    def test_shmem_queue_depth_stalls(self):
        cl = _cluster(shmem_queue_depth=1)
        world = ShmemWorld(cl)
        size = 512
        data = pattern(size, seed=3)

        def pe0(sim):
            ep = world.endpoint(0)
            src = yield from ep.symmetric_alloc(4 * size)
            dst = yield from ep.symmetric_alloc(4 * size)
            ep.ctx.space.write(src, data)
            for k in range(4):
                yield from ep.put(dst + k * size, src, size, 1)
            yield from ep.quiet()

        def pe1(sim):
            ep = world.endpoint(1)
            yield from ep.symmetric_alloc(4 * size)
            yield from ep.symmetric_alloc(4 * size)
            yield sim.timeout(2e-3)

        run_procs(cl, [pe0(cl.sim), pe1(cl.sim)])
        assert cl.metrics.get("shmem.backpressure_stalls") >= 1
        dst_space = cl.rank_ctx(1).space
        # All four puts landed despite the depth-1 window.
        assert cl.metrics.get("proxy.shmem_puts") == 4


# ---------------------------------------------------------------------------
# defaults: the governance machinery must be fully dormant
# ---------------------------------------------------------------------------

class TestDormantByDefault:
    def test_default_params_unbounded(self):
        p = MachineParams()
        assert p.host_mem_budget is None
        assert p.dpu_mem_budget is None
        assert p.ib_cache_capacity is None
        assert p.gvmi_cache_capacity is None
        assert p.group_cache_capacity is None
        assert p.plan_cache_capacity is None
        assert p.max_outstanding_offloads is None
        assert p.shmem_queue_depth is None
        assert p.cq_depth is None
        assert p.reuse_freed_addresses is False

    def test_clean_run_emits_no_governance_metrics(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        data = pattern(4096)

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(addr, 4096, dst=1, tag=0)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(4096)
            req = yield from ep.recv_offload(addr, 4096, src=0, tag=0)
            yield from ep.wait(req)

        run_procs(tiny_cluster, [sender(tiny_cluster.sim),
                                 receiver(tiny_cluster.sim)])
        m = tiny_cluster.metrics
        for name in ("offload.admission_stalls", "proxy.stale_keys",
                     "proxy.oom_degrades", "gvmi_cache.host.evict",
                     "staging.evictions", "verbs.cq_overflows",
                     "mem.frees", "verbs.revoked_keys"):
            assert m.get(name) == 0, name
