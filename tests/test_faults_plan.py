"""Unit tests for the fault-injection plan and its fabric hooks."""

import pytest

from tests.helpers import pattern, run_proc
from repro.hw import (
    OFFLOAD_CONTROL_KINDS,
    Cluster,
    ClusterSpec,
    FaultPlan,
    FaultSpec,
    ProxyKillPlan,
    RetryPolicy,
)
from repro.verbs import post_control, rdma_write, reg_mr


def _drain(cluster):
    """Run the simulator dry so in-flight fabric processes finish."""
    cluster.sim.run()


class TestSpecValidation:
    @pytest.mark.parametrize("knob", [
        "drop_prob", "dup_prob", "corrupt_prob", "delay_prob", "error_cqe_prob",
    ])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_bounded(self, knob, value):
        with pytest.raises(ValueError, match="not a probability"):
            FaultSpec(**{knob: value})

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_max"):
            FaultSpec(delay_max=-1e-6)

    def test_defaults_are_inert(self):
        spec = FaultSpec()
        assert spec.drop_prob == spec.dup_prob == spec.error_cqe_prob == 0.0

    def test_offload_kinds_exclude_baseline_ctrl(self):
        assert "ctrl" not in OFFLOAD_CONTROL_KINDS
        assert {"rts", "rtr", "fin", "group_plan"} <= OFFLOAD_CONTROL_KINDS


class TestPlanBinding:
    def test_unbound_plan_refuses_draws(self):
        plan = FaultPlan(FaultSpec(drop_prob=0.5))
        with pytest.raises(RuntimeError, match="not bound"):
            plan.control_fate("rts", 0, 1)
        with pytest.raises(RuntimeError, match="not bound"):
            plan.transfer_fate("data", "dpu", 0, 1)

    def test_install_binds_and_hands_to_fabric(self, tiny_cluster):
        plan = FaultPlan(FaultSpec(drop_prob=0.1))
        tiny_cluster.install_faults(plan)
        assert tiny_cluster.fault_plan is plan
        assert tiny_cluster.fabric.fault_plan is plan
        assert plan.sim is tiny_cluster.sim

    def test_same_seed_same_decision_sequence(self):
        def draws(seed):
            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
            plan = FaultPlan(
                FaultSpec(drop_prob=0.3, dup_prob=0.2, delay_prob=0.25),
                seed=seed,
            )
            cl.install_faults(plan)
            return [plan.control_fate("rts", 0, 1) for _ in range(64)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)


class TestControlFate:
    def _bound(self, cluster, spec):
        plan = FaultPlan(spec, seed=11)
        cluster.install_faults(plan)
        return plan

    def test_certain_drop_counts_and_records(self, tiny_cluster):
        plan = self._bound(tiny_cluster, FaultSpec(drop_prob=1.0))
        for _ in range(5):
            action, extra = plan.control_fate("fin", 0, 1)
            assert (action, extra) == ("drop", 0.0)
        assert plan.stats["drops"] == 5
        assert all(cat == "drop" for _, cat, _ in plan.trace())

    def test_kind_filter_limits_eligibility(self, tiny_cluster):
        plan = self._bound(
            tiny_cluster,
            FaultSpec(drop_prob=1.0, control_kinds=frozenset({"rts"})),
        )
        assert plan.control_fate("ctrl", 0, 1) == ("deliver", 0.0)
        assert plan.control_fate("rts", 0, 1)[0] == "drop"
        assert plan.stats["drops"] == 1

    def test_error_cqe_respects_initiator_filter(self, tiny_cluster):
        plan = self._bound(
            tiny_cluster,
            FaultSpec(error_cqe_prob=1.0, error_initiators=("dpu",)),
        )
        assert plan.transfer_fate("data", "host", 0, 1) == ("ok", 0.0)
        assert plan.transfer_fate("data", "dpu", 0, 1)[0] == "error"
        assert plan.stats["error_cqes"] == 1


class TestFabricControlHooks:
    def _send(self, cluster, kind="rts"):
        a = cluster.rank_ctx(0)
        b = cluster.rank_ctx(1)

        def prog(sim):
            yield from post_control(a, b, ("probe", kind), kind=kind)

        run_proc(cluster, prog(cluster.sim))
        _drain(cluster)
        return b.inbox

    def test_dropped_message_never_lands(self, tiny_cluster):
        tiny_cluster.install_faults(FaultPlan(FaultSpec(drop_prob=1.0)))
        inbox = self._send(tiny_cluster)
        assert len(inbox) == 0
        assert tiny_cluster.metrics.get("fabric.faults.drop") == 1

    def test_corrupt_discarded_by_receiver(self, tiny_cluster):
        tiny_cluster.install_faults(FaultPlan(FaultSpec(corrupt_prob=1.0)))
        inbox = self._send(tiny_cluster)
        assert len(inbox) == 0
        assert tiny_cluster.metrics.get("fabric.faults.corrupt") == 1

    def test_duplicate_delivered_twice(self, tiny_cluster):
        tiny_cluster.install_faults(FaultPlan(FaultSpec(dup_prob=1.0)))
        inbox = self._send(tiny_cluster)
        assert inbox.items == [("probe", "rts"), ("probe", "rts")]
        assert tiny_cluster.metrics.get("fabric.faults.dup") == 1

    def test_kind_filter_spares_baseline_traffic(self, tiny_cluster):
        tiny_cluster.install_faults(FaultPlan(
            FaultSpec(drop_prob=1.0, control_kinds=OFFLOAD_CONTROL_KINDS)
        ))
        inbox = self._send(tiny_cluster, kind="ctrl")
        assert len(inbox) == 1
        assert tiny_cluster.metrics.get("fabric.faults.drop") == 0

    def test_delay_postpones_delivery(self):
        def arrival(spec):
            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
            if spec is not None:
                cl.install_faults(FaultPlan(spec, seed=3))
            a, b = cl.rank_ctx(0), cl.rank_ctx(1)
            times = {}

            def prog(sim):
                ev = yield from post_control(a, b, "x", kind="rts")
                yield ev
                times["t"] = sim.now

            run_proc(cl, prog(cl.sim))
            return times["t"]

        clean = arrival(None)
        delayed = arrival(FaultSpec(delay_prob=1.0, delay_max=40e-6))
        assert delayed > clean


class TestFabricTransferHooks:
    def test_error_cqe_moves_no_bytes(self, tiny_cluster):
        tiny_cluster.install_faults(FaultPlan(
            FaultSpec(error_cqe_prob=1.0, error_initiators=("host",))
        ))
        src = tiny_cluster.rank_ctx(0)
        dst = tiny_cluster.rank_ctx(1)
        data = pattern(4096, seed=5)
        sa = src.space.alloc_like(data)
        da = dst.space.alloc(4096)
        out = {}

        def prog(sim):
            hs = yield from reg_mr(src, sa, 4096)
            hd = yield from reg_mr(dst, da, 4096)
            t = yield from rdma_write(
                src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey,
                dst_addr=da, size=4096)
            out["dv"] = yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert out["dv"].status == "error"
        assert (dst.space.read(da, 4096) == 0).all()  # nothing landed
        assert tiny_cluster.fault_plan.stats["error_cqes"] == 1


class TestKillScheduling:
    def test_kill_plan_arms_on_framework_build(self, tiny_cluster):
        from repro.offload import OffloadFramework

        plan = FaultPlan(kills=[ProxyKillPlan(proxy_gid=0, at=5e-6,
                                              restart_after=10e-6)])
        tiny_cluster.install_faults(plan)
        fw = OffloadFramework(tiny_cluster)
        engine = fw.proxy_engine_for_rank(0)
        tiny_cluster.sim.run(until=tiny_cluster.sim.timeout(8e-6))
        assert engine.alive is False
        tiny_cluster.sim.run(until=tiny_cluster.sim.timeout(20e-6))
        assert engine.alive is True and engine.incarnation == 1
        assert plan.stats["kills"] == 1 and plan.stats["restarts"] == 1
        assert [cat for _, cat, _ in plan.trace()] == ["kill", "restart"]
        assert tiny_cluster.metrics.get("proxy.kills") == 1
        assert tiny_cluster.metrics.get("proxy.restarts") == 1

    def test_retry_policy_implied_by_plan(self, tiny_cluster):
        from repro.offload import OffloadFramework

        tiny_cluster.install_faults(FaultPlan())
        fw = OffloadFramework(tiny_cluster)
        assert fw.resilient and isinstance(fw.retry, RetryPolicy)

    def test_clean_framework_not_resilient(self, tiny_cluster):
        from repro.offload import OffloadFramework

        fw = OffloadFramework(tiny_cluster)
        assert not fw.resilient and fw.retry is None
