"""Congestion physics on the explicit fat-tree: closed forms + ECMP.

The per-link fluid fabric makes contention *predictable*: max-min
fairness over the topology's link graph has exact closed forms for the
canonical patterns, and this file pins them down --

* **N:1 incast** -- N equal flows into one rx link each get ``cap/N``,
  so they all drain at exactly ``N * work`` (engine level) and the
  fabric's delivery times grow by exactly one serialization window per
  extra sender (the protocol tail cancels in differences);
* **shared-spine interference** -- a victim crossing a spine with k
  longer-lived aggressors gets share ``1/(k+1)`` and drains at exactly
  ``(k+1) * work``;
* **ECMP** -- the deterministic hash spreads cross-leaf pairs over all
  spines, is bit-stable across cluster seeds and interpreter respawns
  (it never touches Python's ``hash()``), and flows hashed to distinct
  spines do not contend at all;
* **link-level degradation** -- ``LinkWindow(link=...)`` composes with
  path-routed flows: halving a spine uplink exactly doubles the drain
  window of the flow crossing it.

Plus the ``endpoint_capacity`` query symmetry: capacities read back
identically before and after flows are admitted on the link.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.hw import (
    Cluster,
    ClusterSpec,
    FatTreeTopology,
    LinkDegradePlan,
    LinkWindow,
    ecmp_hash,
)
from repro.sim import FlowEngine, Simulator

REL = 1e-9


def _engine():
    sim = Simulator()
    eng = FlowEngine(sim, threshold=1)
    sim.attach_flow_engine(eng)
    return sim, eng


def _drains(sim, eng, flows):
    """Admit (path, work) flows at t=0; run; return drain times in order."""
    out = {}

    def finish(flow, now):
        out[flow.tag] = now

    for i, (path, work) in enumerate(flows):
        eng.add_flow(path=path, work=work, finish=finish, tag=i)
    sim.run()
    return [out[i] for i in range(len(flows))]


# ---------------------------------------------------------------------------
# closed forms at the engine level
# ---------------------------------------------------------------------------

class TestClosedForms:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_incast_drains_in_n_windows(self, n):
        """N equal flows into one rx link each get cap/N: drain = N*work."""
        sim, eng = _engine()
        work = 3e-4
        flows = [(((("tx", i), ("rx", 0))), work) for i in range(n)]
        times = _drains(sim, eng, flows)
        for t in times:
            assert t == pytest.approx(n * work, rel=REL)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_spine_victim_fair_share(self, k):
        """A victim sharing a spine with k outliving aggressors gets 1/(k+1)."""
        sim, eng = _engine()
        work = 2e-4
        up = ("up", 0, 0)
        victim = ((("tx", 0), up, ("down", 0, 1), ("rx", 4)), work)
        aggrs = [
            ((("tx", 1 + i), up, ("down", 0, 1), ("rx", 5 + i)), 4 * work)
            for i in range(k)
        ]
        times = _drains(sim, eng, [victim] + aggrs)
        assert times[0] == pytest.approx((k + 1) * work, rel=REL)

    def test_distinct_spines_do_not_contend(self):
        """Two cross-leaf flows on different spines drain like solo flows."""
        sim, eng = _engine()
        work = 2e-4
        flows = [
            ((("tx", 0), ("up", 0, 0), ("down", 0, 1), ("rx", 4)), work),
            ((("tx", 1), ("up", 0, 1), ("down", 1, 1), ("rx", 5)), work),
        ]
        for t in _drains(sim, eng, flows):
            assert t == pytest.approx(work, rel=REL)

    def test_double_crossing_loads_twice(self):
        """A path crossing the same link twice loads it with both hops."""
        sim, eng = _engine()
        work = 1e-4
        hairpin = ((("tx", 0), ("up", 0, 0), ("up", 0, 0), ("rx", 1)), work)
        [t] = _drains(sim, eng, [hairpin])
        # Share is capped at cap/2 by its own double crossing.
        assert t == pytest.approx(2 * work, rel=REL)


# ---------------------------------------------------------------------------
# closed forms through the fabric (protocol tail cancels in differences)
# ---------------------------------------------------------------------------

def _incast_cluster(n):
    return Cluster(ClusterSpec(nodes=n + 1, ppn=1, proxies_per_dpu=1,
                               nodes_per_switch=n + 1,
                               fluid=True, fluid_threshold=1024))


def _fabric_incast_time(n, size=1 << 20):
    """Last delivery time of an n:1 raw-fabric incast posted at t=0."""
    cl = _incast_cluster(n)
    deliveries = []

    def prog():
        pending = [
            cl.fabric.transfer(src_node=i, dst_node=0, size=size,
                               initiator="host").delivered
            for i in range(1, n + 1)
        ]
        got = yield cl.sim.all_of(pending)
        deliveries.extend(got.values() if hasattr(got, "values") else got)

    cl.sim.process(prog())
    cl.sim.run()
    return cl.sim.now


class TestFabricIncast:
    def test_linear_in_fan_in(self):
        """t(N) = t(1) + (N-1)*ser exactly: fair sharing of the rx port."""
        t1, t2, t4 = (_fabric_incast_time(n) for n in (1, 2, 4))
        ser = t2 - t1  # one extra sender costs exactly one window
        assert ser > 0
        assert t4 == pytest.approx(t1 + 3 * ser, rel=REL)

    def test_congestion_observable(self):
        """An incast trips the link.congested metric on the rx link."""
        n = 4
        cl = Cluster(ClusterSpec(nodes=n + 1, ppn=1, proxies_per_dpu=1,
                                 nodes_per_switch=2, spine_count=2,
                                 fluid=True, fluid_threshold=1024))

        def prog():
            pending = [
                cl.fabric.transfer(src_node=i, dst_node=0, size=1 << 20,
                                   initiator="host").completed
                for i in range(1, n + 1)
            ]
            yield cl.sim.all_of(pending)

        cl.sim.process(prog())
        cl.sim.run()
        assert cl.metrics.get("fabric.link_congested") >= 1
        # Per-link utilization integrated the congested rx port's busy time.
        util = cl.fabric.flow_engine.link_utilization()
        assert util.get(("rx", 0), 0.0) > 0.0


class TestFabricSpine:
    def _victim_time(self, k, size=1 << 20):
        """Victim's delivery time with k same-spine aggressor flows."""
        cl = Cluster(ClusterSpec(nodes=8, ppn=1, proxies_per_dpu=1,
                                 nodes_per_switch=4, spine_count=1,
                                 fluid=True, fluid_threshold=1024))
        t_victim = []

        def prog():
            pending = [cl.fabric.transfer(src_node=0, dst_node=4, size=size,
                                          initiator="host").delivered]
            for i in range(k):
                pending.append(cl.fabric.transfer(
                    src_node=1 + i, dst_node=5 + i, size=4 * size,
                    initiator="host").delivered)
            dv = yield pending[0]
            t_victim.append(dv.time)
            yield cl.sim.all_of(pending[1:])

        cl.sim.process(prog())
        cl.sim.run()
        return t_victim[0]

    def test_victim_slows_by_exact_fair_share(self):
        """Each aggressor adds exactly one serialization window."""
        t0, t1, t3 = (self._victim_time(k) for k in (0, 1, 3))
        ser = t1 - t0
        assert ser > 0
        assert t3 == pytest.approx(t0 + 3 * ser, rel=REL)

    def test_delivery_records_path(self):
        """Path-routed deliveries carry the 4-link path they crossed."""
        cl = Cluster(ClusterSpec(nodes=8, ppn=1, proxies_per_dpu=1,
                                 nodes_per_switch=4, spine_count=1,
                                 fluid=True, fluid_threshold=1024))
        got = []

        def prog():
            dv = yield cl.fabric.transfer(src_node=0, dst_node=4,
                                          size=1 << 20,
                                          initiator="host").delivered
            got.append(dv)

        cl.sim.process(prog())
        cl.sim.run()
        assert got[0].path == (("tx", 0), ("up", 0, 0),
                               ("down", 0, 1), ("rx", 4))


# ---------------------------------------------------------------------------
# ECMP: spread + determinism
# ---------------------------------------------------------------------------

class TestEcmp:
    def test_hash_golden_values(self):
        """The splitmix-style mix is pinned: these values may never drift
        (committed traces and figure tables depend on path choices)."""
        assert ecmp_hash(0, 1) == 0x5693D3E0E482F7D9
        assert ecmp_hash(1, 0) == 0xC0E16B163A85A4DC
        assert ecmp_hash(0, 4) == 0xCEC16CDB07C216FF
        assert ecmp_hash(7, 3) == 0xCBF2C5071E242A5B

    def test_spread_across_spines(self):
        """Cross-leaf pairs cover every spine of a 4-spine tree."""
        spec = ClusterSpec(nodes=32, ppn=1, nodes_per_switch=4,
                           spine_count=4)
        topo = FatTreeTopology(spec)
        spines = set()
        for src in range(4):
            for dst in range(4, 32):
                p = topo.path(src, dst)
                assert len(p) == 4
                spines.add(p[1][2])
        assert spines == {0, 1, 2, 3}

    def test_same_pair_same_spine(self):
        """All flows of one (src, dst) pair ride one spine, like a real
        switch hashing a 5-tuple."""
        spec = ClusterSpec(nodes=8, ppn=1, nodes_per_switch=2,
                           spine_count=4)
        topo = FatTreeTopology(spec)
        assert len({topo.path(0, 6) for _ in range(10)}) == 1

    def test_deterministic_across_cluster_seeds(self):
        """Path choice is independent of the cluster RNG seed."""
        paths = []
        for seed in (1, 12345):
            cl = Cluster(ClusterSpec(nodes=8, ppn=1, nodes_per_switch=2,
                                     spine_count=2, seed=seed, fluid=True))
            paths.append([cl.topology.path(s, d)
                          for s in range(2) for d in range(4, 8)])
        assert paths[0] == paths[1]

    def test_deterministic_across_process_respawn(self):
        """ECMP survives interpreter restarts and PYTHONHASHSEED changes
        (it must never route through Python's randomized hash())."""
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.hw import FatTreeTopology, ClusterSpec\n"
            "t = FatTreeTopology(ClusterSpec(nodes=8, ppn=1,"
            " nodes_per_switch=2, spine_count=3))\n"
            "print([t.path(s, d)[1] for s in range(2)"
            " for d in range(4, 8)])\n"
        )
        outs = set()
        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            r = subprocess.run([sys.executable, "-c", code], env=env,
                               capture_output=True, text=True, timeout=60,
                               cwd=os.path.dirname(os.path.dirname(
                                   os.path.abspath(__file__))))
            assert r.returncode == 0, r.stderr
            outs.add(r.stdout.strip())
        assert len(outs) == 1

    def test_random_selector_is_seeded(self):
        """path_selector='random' draws from the cluster's seeded stream:
        same seed -> same choices, different seed -> (generally) different."""
        def paths(seed):
            cl = Cluster(ClusterSpec(nodes=8, ppn=1, nodes_per_switch=2,
                                     spine_count=4, path_selector="random",
                                     seed=seed, fluid=True))
            return [cl.topology.path(0, 7) for _ in range(16)]

        assert paths(3) == paths(3)
        # Per-flow randomness: one pair visits several spines.
        assert len({p[1] for p in paths(3)}) > 1

    def test_least_loaded_spreads_incast(self):
        """'least' balances k concurrent cross-leaf flows over k spines."""
        cl = Cluster(ClusterSpec(nodes=8, ppn=1, nodes_per_switch=4,
                                 spine_count=4, path_selector="least",
                                 fluid=True, fluid_threshold=1024))
        used = []

        def prog():
            pending = []
            for i in range(4):
                t = cl.fabric.transfer(src_node=i, dst_node=4 + i,
                                       size=1 << 20, initiator="host")
                pending.append(t.delivered)
            got = []
            for p in pending:
                dv = yield p
                got.append(dv)
            used.extend(dv.path[1][2] for dv in got)

        cl.sim.process(prog())
        cl.sim.run()
        assert sorted(used) == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# link-level degradation composes with path routing
# ---------------------------------------------------------------------------

class TestLinkDegrade:
    def _cross_leaf_time(self, plan=None, size=1 << 20):
        cl = Cluster(ClusterSpec(nodes=4, ppn=1, proxies_per_dpu=1,
                                 nodes_per_switch=2, spine_count=1,
                                 fluid=True, fluid_threshold=1024))
        if plan is not None:
            cl.install_link_degrade(plan)
        out = []

        def prog():
            dv = yield cl.fabric.transfer(src_node=0, dst_node=2, size=size,
                                          initiator="host").delivered
            out.append(dv.time)

        cl.sim.process(prog())
        cl.sim.run()
        return out[0]

    def test_degraded_uplink_halves_flow_rate(self):
        """factor=0.5 on the spine uplink exactly doubles the drain
        window of the flow crossing it (the tail is rate-independent)."""
        base = self._cross_leaf_time()
        plan = LinkDegradePlan(windows=(
            LinkWindow(link=("up", 0, 0), start=0.0, duration=1.0,
                       factor=0.5),
        ))
        degraded = self._cross_leaf_time(plan)
        # Solo flow on a unit path: drain window == one serialization
        # window == extra time at half rate.
        t1, t2 = (_fabric_incast_time(n) for n in (1, 2))
        ser = t2 - t1
        assert degraded - base == pytest.approx(ser, rel=1e-6)
        assert plan.stats["degrades"] == 1

    def test_unrelated_link_degrade_is_free(self):
        """Degrading a link the flow does not cross changes nothing."""
        base = self._cross_leaf_time()
        plan = LinkDegradePlan(windows=(
            LinkWindow(link=("down", 0, 0), start=0.0, duration=1.0,
                       factor=0.25),
        ))
        # The flow runs 0 -> 2: leaf0 -> spine0 -> leaf1, crossing
        # ("down", 0, 1) -- not ("down", 0, 0).
        assert self._cross_leaf_time(plan) == base

    def test_endpoint_window_still_composes(self):
        """Node-level (tx/rx) windows keep their pre-topology semantics."""
        base = self._cross_leaf_time()
        plan = LinkDegradePlan(windows=(
            LinkWindow(node=0, direction="tx", start=0.0, duration=1.0,
                       factor=0.5),
        ))
        assert self._cross_leaf_time(plan) > base


# ---------------------------------------------------------------------------
# endpoint_capacity: the query is symmetric around admission
# ---------------------------------------------------------------------------

class TestEndpointCapacityQuery:
    def test_unknown_key_is_unit(self):
        _sim, eng = _engine()
        assert eng.endpoint_capacity(("tx", 99)) == 1.0

    def test_pre_admission_set_then_query(self):
        """A capacity set before any flow exists reads back identically
        after flows are admitted on the link (the PR's latent-asymmetry
        fix: set_endpoint_capacity used to be write-only for keys with
        no active flows)."""
        sim, eng = _engine()
        eng.set_endpoint_capacity(("rx", 0), 0.25)
        assert eng.endpoint_capacity(("rx", 0)) == 0.25

        drained = []
        eng.add_flow(tx=("tx", 1), rx=("rx", 0), work=1e-4,
                     finish=lambda f, now: drained.append(now), tag=None)
        # Query is unchanged by admission...
        assert eng.endpoint_capacity(("rx", 0)) == 0.25
        sim.run()
        # ...and the capacity actually governed the flow: 4x the work.
        assert drained[0] == pytest.approx(4e-4, rel=REL)
        # Restoring to (>=) base pops the override.
        eng.set_endpoint_capacity(("rx", 0), 1.0)
        assert eng.endpoint_capacity(("rx", 0)) == 1.0

    def test_registered_link_base(self):
        """register_link declares the base; degrade factors scale it and
        restore returns to the declared base, not to 1.0."""
        _sim, eng = _engine()
        eng.register_link(("up", 0, 0), 2.0)
        assert eng.base_capacity(("up", 0, 0)) == 2.0
        assert eng.endpoint_capacity(("up", 0, 0)) == 2.0
        eng.set_endpoint_capacity(("up", 0, 0), 0.5)
        assert eng.endpoint_capacity(("up", 0, 0)) == 0.5
        eng.set_endpoint_capacity(("up", 0, 0), 2.0)
        assert eng.endpoint_capacity(("up", 0, 0)) == 2.0
