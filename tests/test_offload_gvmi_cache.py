"""Unit tests for the array-of-BST GVMI registration caches."""

import pytest

from tests.helpers import run_proc
from repro.offload import DpuGvmiCache, HostGvmiCache
from repro.verbs import gvmi_id_of, host_gvmi_register


def _host_cache_get(cluster, cache, proxy, addr, size):
    def prog(sim):
        return (yield from cache.get(proxy, gvmi_id_of(proxy), addr, size))

    return run_proc(cluster, prog(cluster.sim))


class TestHostCache:
    def test_must_live_on_host(self, tiny_cluster):
        with pytest.raises(ValueError):
            HostGvmiCache(tiny_cluster.proxy_ctx(0, 0))

    def test_miss_then_hit(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        cache = HostGvmiCache(host)
        addr = host.space.alloc(4096)
        a = _host_cache_get(tiny_cluster, cache, proxy, addr, 4096)
        b = _host_cache_get(tiny_cluster, cache, proxy, addr, 4096)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)
        assert tiny_cluster.metrics.get("gvmi.host_registrations") == 1

    def test_keyed_by_proxy_rank(self, small_cluster):
        """Same buffer toward two different proxies = two registrations
        (the GVMI-ID differs), exactly the paper's cache key argument."""
        host = small_cluster.rank_ctx(0)
        pa = small_cluster.proxy_ctx(0, 0)
        pb = small_cluster.proxy_ctx(0, 1)
        cache = HostGvmiCache(host)
        addr = host.space.alloc(1024)
        _host_cache_get(small_cluster, cache, pa, addr, 1024)
        _host_cache_get(small_cluster, cache, pb, addr, 1024)
        assert cache.misses == 2
        assert cache.entries == 2

    def test_covering_range_is_a_hit(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        cache = HostGvmiCache(host)
        addr = host.space.alloc(1 << 16)
        big = _host_cache_get(tiny_cluster, cache, proxy, addr, 1 << 16)
        small = _host_cache_get(tiny_cluster, cache, proxy, addr + 128, 1024)
        assert small is big and cache.hits == 1

    def test_invalidate(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        cache = HostGvmiCache(host)
        addr = host.space.alloc(64)
        _host_cache_get(tiny_cluster, cache, proxy, addr, 64)
        assert cache.invalidate(proxy.global_id, addr, 64)
        _host_cache_get(tiny_cluster, cache, proxy, addr, 64)
        assert cache.misses == 2

    def test_check_invariants_clean(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        cache = HostGvmiCache(host)
        for _ in range(20):
            addr = host.space.alloc(256)
            _host_cache_get(tiny_cluster, cache, proxy, addr, 256)
        cache.check_invariants()


class TestDpuCache:
    def _mkey(self, cluster, host, proxy, addr, size):
        def prog(sim):
            return (yield from host_gvmi_register(host, addr, size, gvmi_id_of(proxy)))

        return run_proc(cluster, prog(cluster.sim))

    def test_must_live_on_dpu(self, tiny_cluster):
        with pytest.raises(ValueError):
            DpuGvmiCache(tiny_cluster.rank_ctx(0))

    def test_miss_then_hit(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr = host.space.alloc(4096)
        mkey = self._mkey(tiny_cluster, host, proxy, addr, 4096)
        cache = DpuGvmiCache(proxy)

        def prog(sim):
            a = yield from cache.get(0, gvmi_id_of(proxy), mkey.key, addr, 4096)
            b = yield from cache.get(0, gvmi_id_of(proxy), mkey.key, addr, 4096)
            return a, b

        a, b = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)
        assert tiny_cluster.metrics.get("gvmi.cross_registrations") == 1

    def test_stale_mkey_detected_and_reregistered(self, tiny_cluster):
        """The paper argues an (addr, size, rank) key can never alias a
        different mkey; we verify rather than assume, so a *forced*
        mismatch (fresh registration of the same buffer) is detected."""
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr = host.space.alloc(2048)
        mkey1 = self._mkey(tiny_cluster, host, proxy, addr, 2048)
        mkey2 = self._mkey(tiny_cluster, host, proxy, addr, 2048)
        cache = DpuGvmiCache(proxy)

        def prog(sim):
            yield from cache.get(0, gvmi_id_of(proxy), mkey1.key, addr, 2048)
            yield from cache.get(0, gvmi_id_of(proxy), mkey2.key, addr, 2048)

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert cache.stale_detected == 1
        assert cache.misses == 2

    def test_keyed_by_host_rank(self, small_cluster):
        proxy = small_cluster.proxy_ctx(0, 0)
        cache = DpuGvmiCache(proxy)
        entries = {}
        for rank in (0, 1):
            host = small_cluster.rank_ctx(rank)
            addr = host.space.alloc(512)
            mkey = self._mkey(small_cluster, host, proxy, addr, 512)
            entries[rank] = (addr, mkey)

        def prog(sim):
            for rank, (addr, mkey) in entries.items():
                yield from cache.get(rank, gvmi_id_of(proxy), mkey.key, addr, 512)

        run_proc(small_cluster, prog(small_cluster.sim))
        assert cache.misses == 2 and cache.entries == 2
        cache.check_invariants()
