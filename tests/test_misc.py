"""Odds and ends: presets, CLI, experiment sweep configs."""


from repro.__main__ import main as cli_main
from repro.experiments import appruns
from repro.hw import MachineParams


class TestBlueField3Preset:
    def test_faster_than_bf2_everywhere_it_should_be(self):
        bf2 = MachineParams.paper_testbed()
        bf3 = MachineParams.bluefield3()
        assert bf3.wire_bandwidth > bf2.wire_bandwidth
        assert bf3.dpu_post_overhead < bf2.dpu_post_overhead
        assert bf3.dpu_injection_gap < bf2.dpu_injection_gap
        assert bf3.dpu_memory_bandwidth > bf2.dpu_memory_bandwidth
        assert bf3.xreg_base < bf2.xreg_base

    def test_asymmetries_narrow_but_remain(self):
        bf3 = MachineParams.bluefield3()
        bf2 = MachineParams.paper_testbed()
        # the DPU is still the slower party...
        assert bf3.dpu_injection_gap > bf3.host_injection_gap
        assert bf3.dpu_memory_bandwidth < bf3.wire_bandwidth
        # ...but relatively less so than on BF-2
        assert (bf3.dpu_injection_gap / bf3.host_injection_gap
                < bf2.dpu_injection_gap / bf2.host_injection_gap)
        assert (bf3.dpu_memory_bandwidth / bf3.wire_bandwidth
                > bf2.dpu_memory_bandwidth / bf2.wire_bandwidth)


class TestCli:
    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "fig17_hpl" in out

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2

    def test_figures_subcommand_unknown_figure(self, capsys):
        assert cli_main(["figures", "fig99"]) == 2

    def test_figures_runs_a_cheap_figure(self, capsys):
        assert cli_main(["figures", "fig05"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "PASS" in out


class TestSweepConfigs:
    def test_paper_scale_matches_testbed(self):
        spec = appruns.stencil_spec("paper")
        assert (spec.nodes, spec.ppn) == (16, 32)
        assert appruns.stencil_sizes("paper") == [512, 1024, 2048]
        assert appruns.ialltoall_nodes("paper") == [4, 8, 16]
        assert appruns.hpl_spec("paper").ppn == 32

    def test_quick_scale_is_small(self):
        spec = appruns.stencil_spec("quick")
        assert spec.world_size <= 64
        for nodes in appruns.ialltoall_nodes("quick"):
            assert appruns.ialltoall_spec("quick", nodes).world_size <= 64

    def test_hpl_variants_cover_the_paper(self):
        labels = [label for label, _f, _b in appruns.hpl_variants()]
        assert labels == [
            "IntelMPI-1ring", "IntelMPI-Ibcast", "BluesMPI", "Proposed",
        ]

    def test_hpl_fractions_match_fig17(self):
        assert appruns.hpl_fractions() == [0.05, 0.10, 0.25, 0.50, 0.75]

    def test_p3dfft_paper_grids_divide(self):
        for cfg in appruns.p3dfft_configs("paper"):
            from repro.apps.p3dfft import PencilGrid

            for z in cfg["zs"]:
                grid = PencilGrid.for_world(cfg["x"], cfg["y"], z,
                                            cfg["spec"].world_size)
                grid.check()  # must not raise
