"""Scale-out machinery: slim state and proxy batching are timing-safe.

The thousand-rank path rests on three opt-in knobs
(``ClusterSpec.slim``, ``MachineParams.proxy_batch_drain``,
``MachineParams.counter_doorbell_batch``).  Each is allowed to change
*resident memory* or *event count*, never simulated semantics:

* **slim** builds rank/proxy contexts, MPI runtimes, and offload
  endpoints lazily -- the differential tests here prove completion
  times and payloads are identical to eager construction, and that
  touching a few ranks of a big cluster materializes only those ranks.
* **proxy_batch_drain** drains a proxy's shmem queue in batches: one
  handler charge and one ``queue.drain`` event per wakeup instead of
  per message.  Payloads are unchanged; latency can only improve.
* **counter_doorbell_batch** rings one WQE-post doorbell for a flush
  segment's whole set of barrier-counter writes.

With every knob at its default the batching metrics and events must
not exist at all -- that is what keeps the committed golden traces and
figure tables bit-identical.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from tests.helpers import run_procs
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi.collectives import allreduce as host_allreduce
from repro.obs import EventBus
from repro.offload import OffloadFramework, build_iallreduce


def _spec(p: int, ppn: int = 1, slim: bool = False, **knobs) -> ClusterSpec:
    spec = ClusterSpec(nodes=p, ppn=ppn, slim=slim)
    if knobs:
        spec = dataclasses.replace(
            spec, params=dataclasses.replace(spec.params, **knobs))
    return spec


# ----------------------------------------------------------------------
# slim: timing-differential against eager construction
# ----------------------------------------------------------------------
def _offload_allreduce_run(spec: ClusterSpec, count: int = 96):
    cl = Cluster(spec)
    fw = OffloadFramework(cl)
    p = spec.world_size
    vals = [np.arange(count, dtype=np.float64) * (r + 1) for r in range(p)]
    out = {}

    def prog(rank):
        ep = fw.endpoint(rank)
        addr = ep.ctx.space.alloc_like(vals[rank])
        greq, _ = build_iallreduce(ep, addr, count * 8, comm_size=p)
        yield from ep.group_call(greq)
        yield from ep.group_wait(greq)
        out[rank] = ep.ctx.space.read_as(addr, np.float64, count).copy()
        return cl.sim.now

    t = run_procs(cl, [prog(r) for r in range(p)])
    return max(t), out


class TestSlimTimingIdentical:
    def test_offloaded_allreduce(self):
        t_eager, out_eager = _offload_allreduce_run(_spec(4))
        t_slim, out_slim = _offload_allreduce_run(_spec(4, slim=True))
        assert t_slim == t_eager
        for r in range(4):
            assert out_slim[r].tobytes() == out_eager[r].tobytes()

    def test_host_mpi_allreduce(self):
        def run(slim):
            cl = Cluster(_spec(3, ppn=2, slim=slim))
            world = MpiWorld(cl)
            done = []

            def prog(rt):
                addr = rt.ctx.space.alloc(512, fill=rt.rank + 1)
                yield from host_allreduce(rt, world.comm_world, addr, 512)
                done.append(rt.sim.now)

            world.run(prog)
            return max(done)

        assert run(slim=True) == run(slim=False)

    def test_p2p_offload(self):
        def run(slim):
            cl = Cluster(_spec(2, slim=slim))
            fw = OffloadFramework(cl)
            t = {}

            def sender(sim):
                ep = fw.endpoint(0)
                buf = ep.ctx.space.alloc(4096, fill=7)
                req = yield from ep.send_offload(buf, 4096, dst=1, tag=1)
                yield from ep.wait(req)
                t[0] = sim.now

            def receiver(sim):
                ep = fw.endpoint(1)
                buf = ep.ctx.space.alloc(4096)
                req = yield from ep.recv_offload(buf, 4096, src=0, tag=1)
                yield from ep.wait(req)
                assert (ep.ctx.space.read(buf, 4096) == 7).all()
                t[1] = sim.now

            run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
            return t

        assert run(slim=True) == run(slim=False)


class TestSlimLaziness:
    def test_only_touched_ranks_materialize(self):
        cl = Cluster(_spec(64, ppn=16, slim=True))
        assert len(cl.ranks._made) == 0
        cl.rank_ctx(0)
        cl.rank_ctx(777)
        assert len(cl.ranks._made) == 2

    def test_eager_unaffected(self):
        cl = Cluster(_spec(2, ppn=2))
        # Eager clusters keep a plain list: everything exists up front.
        assert len(cl.ranks) == 4
        assert all(ctx is not None for ctx in cl.ranks)


# ----------------------------------------------------------------------
# batched proxy drain
# ----------------------------------------------------------------------
def _burst(batch):
    """8 ranks on node0 each fire 4 sends through one shared proxy."""
    spec = _spec(2, ppn=8, **({"proxy_batch_drain": batch} if batch else {}))
    spec = dataclasses.replace(spec, proxies_per_dpu=1)
    cl = Cluster(spec)
    bus = EventBus.attach(cl)
    fw = OffloadFramework(cl)
    NMSG, SZ = 4, 2048

    def sender(rank):
        def prog(sim):
            ep = fw.endpoint(rank)
            buf = ep.ctx.space.alloc(SZ, fill=rank + 1)
            reqs = []
            for m in range(NMSG):
                reqs.append((yield from ep.send_offload(
                    buf, SZ, dst=rank + 8, tag=m)))
            yield from ep.waitall(reqs)
            return sim.now

        return prog

    def receiver(rank):
        def prog(sim):
            ep = fw.endpoint(rank)
            buf = ep.ctx.space.alloc(SZ)
            reqs = []
            for m in range(NMSG):
                reqs.append((yield from ep.recv_offload(
                    buf, SZ, src=rank - 8, tag=m)))
            yield from ep.waitall(reqs)
            assert (ep.ctx.space.read(buf, SZ) == rank - 8 + 1).all()
            return sim.now

        return prog

    t = run_procs(cl, [sender(r)(cl.sim) for r in range(8)]
                      + [receiver(r)(cl.sim) for r in range(8, 16)])
    return max(t), cl.metrics, bus


class TestBatchedProxyDrain:
    def test_burst_batches_and_is_no_slower(self):
        t_plain, m_plain, bus_plain = _burst(batch=None)
        t_batch, m_batch, bus_batch = _burst(batch=16)

        # Defaults: the batching machinery leaves no trace at all.
        assert m_plain.get("proxy.wakeups") == 0
        assert m_plain.get("proxy.drained_items") == 0
        assert bus_plain.select(cat="queue", name="drain") == []

        # Batched: strictly fewer wakeups than items served, one
        # queue.drain event per wakeup whose ``n`` args account for
        # every item exactly once.
        wakeups = m_batch.get("proxy.wakeups")
        drained = m_batch.get("proxy.drained_items")
        assert 0 < wakeups < drained
        drains = bus_batch.select(cat="queue", name="drain")
        assert len(drains) == wakeups
        assert sum(ev.arg("n") for ev in drains) == drained
        assert any(ev.arg("n") > 1 for ev in drains)

        # One handler charge per batch instead of per message can only
        # help the burst.
        assert t_batch <= t_plain

    def test_lockstep_collective_payload_unchanged(self):
        t_plain, out_plain = _offload_allreduce_run(_spec(4))
        t_batch, out_batch = _offload_allreduce_run(
            _spec(4, proxy_batch_drain=8))
        assert t_batch <= t_plain
        for r in range(4):
            assert out_batch[r].tobytes() == out_plain[r].tobytes()


# ----------------------------------------------------------------------
# batched counter doorbells
# ----------------------------------------------------------------------
def _fanout_group(doorbell: bool):
    """Each rank sends one block to every peer in a single flush segment."""
    spec = _spec(4, **({"counter_doorbell_batch": True} if doorbell else {}))
    cl = Cluster(spec)
    fw = OffloadFramework(cl)
    P, SZ = 4, 1024

    def prog(rank):
        ep = fw.endpoint(rank)
        sbuf = ep.ctx.space.alloc(SZ, fill=rank + 10)
        rbuf = ep.ctx.space.alloc(P * SZ)
        greq = ep.group_start()
        for d in range(1, P):
            dst, src = (rank + d) % P, (rank - d) % P
            ep.group_send(greq, sbuf, SZ, dst=dst, tag=5)
            ep.group_recv(greq, rbuf + src * SZ, SZ, src=src, tag=5)
        ep.group_end(greq)
        yield from ep.group_call(greq)
        yield from ep.group_wait(greq)
        for s in range(P):
            if s != rank:
                assert (ep.ctx.space.read(rbuf + s * SZ, SZ) == s + 10).all()
        return cl.sim.now

    t = run_procs(cl, [prog(r) for r in range(P)])
    return max(t), cl.metrics


class TestCounterDoorbellBatch:
    def test_one_doorbell_per_segment_fanout(self):
        t_plain, m_plain = _fanout_group(doorbell=False)
        t_batch, m_batch = _fanout_group(doorbell=True)

        assert m_plain.get("proxy.counter_doorbells") == 0
        # 4 ranks x 1 final flush segment, each covering 3 peers.
        assert m_batch.get("proxy.counter_doorbells") == 4
        assert m_batch.get("proxy.counter_writes") == 12
        # One WQE-post charge instead of three makes the flush cheaper.
        assert t_batch <= t_plain
