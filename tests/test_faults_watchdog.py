"""Simulator hang watchdog: structured DeadlockError diagnostics.

A simulation that runs dry with work outstanding must not die with a
bare "ran dry" -- the DeadlockError names every parked executor,
unmatched control message, and pending request so a protocol deadlock
is debuggable from the exception alone.
"""

import pytest

from tests.helpers import pattern
from repro.offload import OffloadFramework
from repro.sim import DeadlockError, SimulationError, Simulator


class TestDeadlockErrorShape:
    def test_subclass_of_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_reports_embedded_in_message(self):
        err = DeadlockError("simulation ran dry before `until` event fired",
                            ["rank 0: stuck", "proxy 1: parked"])
        assert err.reports == ["rank 0: stuck", "proxy 1: parked"]
        assert "outstanding waits:" in str(err)
        assert "rank 0: stuck" in str(err) and "proxy 1: parked" in str(err)

    def test_no_reports_keeps_plain_message(self):
        err = DeadlockError("simulation ran dry before `until` event fired")
        assert "outstanding waits" not in str(err)

    def test_plain_dry_run_still_raises(self):
        """A no-waiter dry run raises the same (catchable) family."""
        sim = Simulator()
        ev = sim.event()  # never succeeds
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run(until=ev)

    def test_probe_exceptions_do_not_mask_the_deadlock(self):
        sim = Simulator()

        def bad_probe():
            raise RuntimeError("broken probe")

        sim.watchdog_probes.append(bad_probe)
        with pytest.raises(DeadlockError):
            sim.run(until=sim.event())


class TestOffloadDeadlockReports:
    def test_unmatched_recv_names_rank_and_proxy_queue(self, tiny_cluster):
        """A receive with no matching send: both layers report it."""
        fw = OffloadFramework(tiny_cluster)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(1024)
            req = yield from ep.recv_offload(addr, 1024, src=0, tag=3)
            yield from ep.wait(req)

        proc = tiny_cluster.sim.process(receiver(tiny_cluster.sim))
        with pytest.raises(DeadlockError) as ei:
            tiny_cluster.sim.run(until=proc)
        msg = str(ei.value)
        assert "ran dry" in msg
        assert "rank 1: offload request" in msg
        assert "unmatched RTR" in msg

    def test_parked_group_executor_names_counter_key(self, tiny_cluster):
        """A group recv whose sender never calls: the executor parks on a
        counter that never arrives, and the report says which one."""
        fw = OffloadFramework(tiny_cluster)

        def caller(sim):
            ep = fw.endpoint(0)
            rbuf = ep.ctx.space.alloc(4096)
            greq = ep.group_start()
            ep.group_recv(greq, rbuf, 4096, src=1, tag=2)
            ep.group_end(greq)
            yield from ep.group_call(greq)
            yield from ep.group_wait(greq)

        proc = tiny_cluster.sim.process(caller(tiny_cluster.sim))
        with pytest.raises(DeadlockError) as ei:
            tiny_cluster.sim.run(until=proc)
        msg = str(ei.value)
        assert "parked" in msg          # the executor is named...
        assert "counter" in msg         # ...and the counter it waits on
        assert "rank 0: offload request" in msg

    def test_quiescent_completion_raises_nothing(self, tiny_cluster):
        """Sanity: a matched exchange never trips the watchdog."""
        fw = OffloadFramework(tiny_cluster)
        data = pattern(512, seed=4)

        def sender(sim):
            ep = fw.endpoint(0)
            sa = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(sa, 512, dst=1, tag=1)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            ra = ep.ctx.space.alloc(512)
            req = yield from ep.recv_offload(ra, 512, src=0, tag=1)
            yield from ep.wait(req)

        procs = [tiny_cluster.sim.process(g(tiny_cluster.sim))
                 for g in (sender, receiver)]
        tiny_cluster.sim.run(until=tiny_cluster.sim.all_of(procs))
        fw.assert_quiescent()


class TestMpiDeadlockReports:
    def test_unmatched_mpi_recv_reported(self, world):
        def program(rt):
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(256)
                req = yield from rt.irecv(rt.world.comm_world, 1, addr, 256,
                                          tag=5)
                yield from rt.wait(req)
            return rt.sim.now

        with pytest.raises(DeadlockError) as ei:
            world.run(program)
        msg = str(ei.value)
        assert "mpi rank 0" in msg
        assert "posted receive(s) unmatched" in msg
