"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, SimulationError


class TestLifecycle:
    def test_return_value_becomes_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return 99

        p = sim.process(proc(sim))
        sim.run()
        assert p.processed and p.value == 99

    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return "from-child"

        def parent(sim):
            value = yield sim.process(child(sim))
            return (value, sim.now)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == ("from-child", 2.0)

    def test_is_alive_tracks_state(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_exception_fails_the_process_event(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("died")

        def watcher(sim, target):
            try:
                yield target
            except RuntimeError as exc:
                return f"saw {exc}"

        p = sim.process(proc(sim))
        w = sim.process(watcher(sim, p))
        sim.run()
        assert w.value == "saw died"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_yielding_non_event_raises_inside_process(self, sim):
        def proc(sim):
            yield 42  # not an event

        p = sim.process(proc(sim))
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()
        assert not p.is_alive

    def test_immediate_return_process(self, sim):
        def proc(sim):
            return "now"
            yield  # pragma: no cover

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "now"

    def test_yield_from_composition(self, sim):
        def inner(sim):
            yield sim.timeout(1.0)
            return 10

        def outer(sim):
            a = yield from inner(sim)
            b = yield from inner(sim)
            return a + b

        p = sim.process(outer(sim))
        sim.run()
        assert p.value == 20 and sim.now == 2.0


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        def attacker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt(cause="deadline")

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert v.value == ("interrupted", "deadline", 2.0)

    def test_interrupt_dead_process_rejected(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        def attacker(sim, target):
            yield sim.timeout(5.0)
            target.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert v.value == 6.0


class TestConcurrency:
    def test_many_processes_share_the_clock(self, sim):
        finish = {}

        def proc(sim, name, delay):
            yield sim.timeout(delay)
            finish[name] = sim.now

        for name, d in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            sim.process(proc(sim, name, d))
        sim.run()
        assert finish == {"a": 3.0, "b": 1.0, "c": 2.0}

    def test_process_chain_of_dependencies(self, sim):
        def stage(sim, upstream, delay):
            if upstream is not None:
                yield upstream
            yield sim.timeout(delay)
            return sim.now

        p1 = sim.process(stage(sim, None, 1.0))
        p2 = sim.process(stage(sim, p1, 1.0))
        p3 = sim.process(stage(sim, p2, 1.0))
        sim.run()
        assert (p1.value, p2.value, p3.value) == (1.0, 2.0, 3.0)
