"""Property-based tests: registration caches vs dict+interval models.

The paper's Section VII-B caches (the exact-match host IB cache and the
array-of-BST GVMI caches) both promise production registration-cache
semantics: a request is a **hit** iff some cached registration's
``[base, base+length)`` interval covers the requested ``[addr,
addr+size)``.  Hypothesis drives random op sequences through the real
caches (running on a real simulated process, so lookup/registration
costs are charged) and checks every hit/miss decision against a
simulator-free dict+interval reference model.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import run_proc
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi.regcache import RegistrationCache
from repro.offload.gvmi_cache import HostGvmiCache
from repro.verbs.gvmi import gvmi_id_of

# Small offset universe (into one allocated arena) so random ops
# actually collide and cover each other.
_OFFS = st.integers(0, 7).map(lambda i: i * 256)
_SIZES = st.sampled_from([64, 256, 512, 1024])
_ARENA = 8 * 256 + 1024


def _covered(model: dict, addr: int, size: int) -> bool:
    return any(base <= addr and addr + size <= base + length
               for base, length in model)


class _IntervalModel:
    """Reference: set of registered intervals with covering lookups."""

    def __init__(self):
        self.entries: set[tuple[int, int]] = set()

    def get(self, addr: int, size: int) -> bool:
        """True on hit; registers (addr, size) on miss."""
        if _covered(self.entries, addr, size):
            return True
        self.entries.add((addr, size))
        return False

    def invalidate(self, addr: int, size: int) -> bool:
        try:
            self.entries.remove((addr, size))
            return True
        except KeyError:
            return False


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["get", "get", "get", "invalidate"]),
              _OFFS, _SIZES),
    min_size=1, max_size=30,
))
def test_host_regcache_matches_interval_model(ops):
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
    ctx = MpiWorld(cl).runtime(0).ctx
    arena = ctx.space.alloc(_ARENA)
    ops = [(op, arena + off, size) for op, off, size in ops]
    cache = RegistrationCache(ctx, name="prop")
    model = _IntervalModel()

    def prog():
        decisions = []
        for op, addr, size in ops:
            if op == "get":
                before = cache.hits
                handle = yield from cache.get(addr, size)
                hit = cache.hits > before
                # the returned registration must cover the request
                assert handle.addr <= addr
                assert addr + size <= handle.addr + handle.size
                decisions.append(("get", hit))
            else:
                decisions.append(("invalidate", cache.invalidate(addr, size)))
        return decisions

    decisions = run_proc(cl, prog())
    expected = [("get", model.get(a, s)) if op == "get"
                else ("invalidate", model.invalidate(a, s))
                for op, a, s in ops]
    assert decisions == expected
    assert len(cache) == len(model.entries)
    assert cache.hits + cache.misses == sum(1 for op, *_ in ops if op == "get")


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(
    st.tuples(st.integers(0, 1), _OFFS, _SIZES),
    min_size=1, max_size=25,
))
def test_host_gvmi_cache_matches_array_of_interval_models(ops):
    """The array-of-BST cache behaves as one interval model *per proxy*
    (requests under different GVMIs never alias)."""
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=2))
    ctx = MpiWorld(cl).runtime(0).ctx
    arena = ctx.space.alloc(_ARENA)
    ops = [(which, arena + off, size) for which, off, size in ops]
    cache = HostGvmiCache(ctx)
    proxies = [cl.proxies[0], cl.proxies[1]]
    models = [_IntervalModel(), _IntervalModel()]

    def prog():
        decisions = []
        for which, addr, size in ops:
            proxy = proxies[which]
            before = cache.hits
            info = yield from cache.get(proxy, gvmi_id_of(proxy), addr, size)
            assert info.gvmi_id == gvmi_id_of(proxy)
            decisions.append(cache.hits > before)
        return decisions

    decisions = run_proc(cl, prog())
    expected = [models[which].get(addr, size) for which, addr, size in ops]
    assert decisions == expected
    assert cache.entries == sum(len(m.entries) for m in models)
    cache.check_invariants()  # the underlying AVL trees stayed legal


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.tuples(_OFFS, _SIZES), min_size=1, max_size=20),
       drop=st.integers(0, 19))
def test_regcache_invalidate_then_reregister(ops, drop):
    """Invalidating an entry forces exactly the misses the model predicts
    when the same sequence replays."""
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
    ctx = MpiWorld(cl).runtime(0).ctx
    arena = ctx.space.alloc(_ARENA)
    ops = [(arena + off, size) for off, size in ops]
    cache = RegistrationCache(ctx, name="prop2")
    model = _IntervalModel()

    victim = ops[drop % len(ops)]

    def prog():
        for addr, size in ops:
            yield from cache.get(addr, size)
        cache.invalidate(*victim)
        decisions = []
        for addr, size in ops:
            before = cache.hits
            yield from cache.get(addr, size)
            decisions.append(cache.hits > before)
        return decisions

    decisions = run_proc(cl, prog())
    for addr, size in ops:
        model.get(addr, size)
    model.invalidate(*victim)
    expected = [model.get(addr, size) for addr, size in ops]
    assert decisions == expected
