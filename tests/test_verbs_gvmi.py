"""Unit tests for GVMI / cross-GVMI registration semantics (Section V)."""

import pytest

from tests.helpers import run_proc
from repro.verbs import (
    GvmiError,
    ProtectionError,
    cross_register,
    gvmi_id_of,
    host_gvmi_register,
)


class TestGvmiId:
    def test_stable_per_proxy(self, small_cluster):
        p = small_cluster.proxy_ctx(0, 0)
        assert gvmi_id_of(p) == gvmi_id_of(p)

    def test_distinct_across_proxies(self, small_cluster):
        ids = {gvmi_id_of(ctx) for ctx in small_cluster.proxies}
        assert len(ids) == len(small_cluster.proxies)

    def test_host_processes_have_no_gvmi(self, small_cluster):
        with pytest.raises(GvmiError):
            gvmi_id_of(small_cluster.rank_ctx(0))


def _do_host_reg(cluster, host, proxy, size=4096):
    addr = host.space.alloc(size)

    def prog(sim):
        return (yield from host_gvmi_register(host, addr, size, gvmi_id_of(proxy)))

    return addr, run_proc(cluster, prog(cluster.sim))


class TestHostRegistration:
    def test_produces_mkey_bound_to_gvmi(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        _, info = _do_host_reg(tiny_cluster, host, proxy)
        assert info.kind == "mkey"
        assert info.gvmi_id == gvmi_id_of(proxy)
        assert info.owner is host

    def test_rejected_on_dpu_process(self, tiny_cluster):
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr = proxy.space.alloc(64)

        def prog(sim):
            yield from host_gvmi_register(proxy, addr, 64, gvmi_id_of(proxy))

        with pytest.raises(GvmiError):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_unmapped_buffer_rejected(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)

        def prog(sim):
            yield from host_gvmi_register(host, 0xBEEF00, 64, gvmi_id_of(proxy))

        with pytest.raises(ProtectionError):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))


class TestCrossRegistration:
    def test_produces_mkey2_over_host_memory(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr, mkey = _do_host_reg(tiny_cluster, host, proxy)

        def prog(sim):
            return (yield from cross_register(
                proxy, addr, 4096, gvmi_id_of(proxy), mkey.key))

        info = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert info.kind == "mkey2"
        assert info.owner is host  # grants access to *host* memory
        assert info.parent_mkey == mkey.key

    def test_foreign_gvmi_rejected(self, small_cluster):
        host = small_cluster.rank_ctx(0)
        proxy_a = small_cluster.proxy_ctx(0, 0)
        proxy_b = small_cluster.proxy_ctx(0, 1)
        addr, mkey = _do_host_reg(small_cluster, host, proxy_a)

        def prog(sim):
            yield from cross_register(
                proxy_b, addr, 4096, gvmi_id_of(proxy_a), mkey.key)

        with pytest.raises(GvmiError, match="different protection domain"):
            run_proc(small_cluster, prog(small_cluster.sim))

    def test_mismatched_range_rejected(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr, mkey = _do_host_reg(tiny_cluster, host, proxy)

        def prog(sim):
            yield from cross_register(
                proxy, addr, 2048, gvmi_id_of(proxy), mkey.key)

        with pytest.raises(GvmiError, match="does not match"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_non_mkey_parent_rejected(self, tiny_cluster):
        from repro.verbs import reg_mr

        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr = host.space.alloc(64)

        def prog(sim):
            h = yield from reg_mr(host, addr, 64)
            yield from cross_register(proxy, addr, 64, gvmi_id_of(proxy), h.lkey)

        with pytest.raises(GvmiError, match="not a host GVMI mkey"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_host_process_cannot_cross_register(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        addr, mkey = _do_host_reg(tiny_cluster, host, proxy)

        def prog(sim):
            yield from cross_register(host, addr, 4096, gvmi_id_of(proxy), mkey.key)

        with pytest.raises(GvmiError):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_cross_registration_slower_than_host_registration(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        proxy = tiny_cluster.proxy_ctx(0, 0)
        size = 256 * 1024
        addr = host.space.alloc(size)
        times = {}

        def prog(sim):
            t0 = sim.now
            mkey = yield from host_gvmi_register(host, addr, size, gvmi_id_of(proxy))
            times["host"] = sim.now - t0
            t1 = sim.now
            yield from cross_register(proxy, addr, size, gvmi_id_of(proxy), mkey.key)
            times["dpu"] = sim.now - t1

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert times["dpu"] > times["host"]
