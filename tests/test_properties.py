"""Property-based tests (hypothesis) on protocol invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import run_procs
from repro.apps.harness import dims_create
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Envelope, MpiRequest
from repro.mpi.matching import MatchingEngine, UnexpectedMessage


# ---------------------------------------------------------------------------
# matching engine vs a reference model
# ---------------------------------------------------------------------------

def _reference_match(posted, env):
    """Oldest posted receive accepting env (the MPI rule)."""
    for i, (peer, tag, comm) in enumerate(posted):
        if env.matches_recv(peer, tag, comm):
            return i
    return None


@settings(max_examples=200, deadline=None)
@given(
    events=st.lists(
        st.one_of(
            st.tuples(st.just("recv"), st.integers(-1, 3), st.integers(-1, 3)),
            st.tuples(st.just("msg"), st.integers(0, 3), st.integers(0, 3)),
        ),
        max_size=40,
    )
)
def test_matching_engine_equals_reference_model(events):
    engine = MatchingEngine()
    model_posted: list = []   # [(peer, tag, comm)]
    model_unexpected: list = []  # [Envelope]

    for ev in events:
        if ev[0] == "recv":
            _, peer, tag = ev
            req = MpiRequest(kind="recv", rank=9, peer=peer, tag=tag,
                             comm_id=0, addr=0, size=0)
            # model: match against unexpected first (FIFO)
            hit = None
            for i, env in enumerate(model_unexpected):
                if env.matches_recv(peer, tag, 0):
                    hit = i
                    break
            got = engine.post_recv(req)
            if hit is not None:
                assert got is not None and got.envelope == model_unexpected.pop(hit)
            else:
                assert got is None
                model_posted.append((peer, tag, 0, req))
        else:
            _, src, tag = ev
            env = Envelope(src=src, dst=9, tag=tag, comm_id=0)
            idx = _reference_match([(p, t, c) for p, t, c, _ in model_posted], env)
            got = engine.match_arrival(env)
            if idx is not None:
                assert got is model_posted.pop(idx)[3]
            else:
                assert got is None
                engine.add_unexpected(UnexpectedMessage(env, "eager", b"", 0, 0.0))
                model_unexpected.append(env)

    assert engine.posted_count == len(model_posted)
    assert engine.unexpected_count == len(model_unexpected)


# ---------------------------------------------------------------------------
# end-to-end payload integrity under random traffic
# ---------------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(
            st.integers(0, 3),            # src
            st.integers(0, 3),            # dst
            st.integers(0, 7),            # tag
            st.sampled_from([64, 1024, 20_000, 70_000]),  # size
        ),
        min_size=1,
        max_size=8,
    ).filter(lambda ms: all(s != d for s, d, _, _ in ms)),
    seed=st.integers(0, 2**16),
)
def test_random_traffic_delivers_every_byte(msgs, seed):
    """Arbitrary send/recv sets complete and deliver exact payloads."""
    cluster = Cluster(ClusterSpec(nodes=2, ppn=2))
    world = MpiWorld(cluster)
    rng = np.random.default_rng(seed)
    payloads = {
        i: rng.integers(0, 255, size=size, dtype=np.uint8)
        for i, (_s, _d, _t, size) in enumerate(msgs)
    }

    def program(rt):
        comm = world.comm_world
        reqs = []
        # Post receives first (deterministic order), then sends.
        for i, (src, dst, tag, size) in enumerate(msgs):
            if rt.rank == dst:
                addr = rt.ctx.space.alloc(size)
                req = yield from rt.irecv(comm, src, addr, size, tag=100 + i)
                reqs.append(("recv", i, addr, req))
        for i, (src, dst, tag, size) in enumerate(msgs):
            if rt.rank == src:
                addr = rt.ctx.space.alloc_like(payloads[i])
                req = yield from rt.isend(comm, dst, addr, size, tag=100 + i)
                reqs.append(("send", i, addr, req))
        yield from rt.waitall([r for *_xs, r in reqs])
        for kind, i, addr, _req in reqs:
            if kind == "recv":
                got = rt.ctx.space.read(addr, len(payloads[i]))
                assert (got == payloads[i]).all(), f"msg {i} corrupted"
        return True

    assert all(world.run(program))
    world.assert_quiescent()


# ---------------------------------------------------------------------------
# offload framework: random scatter patterns stay correct
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    block=st.sampled_from([256, 4096, 40_000]),
    seed=st.integers(0, 1000),
    mode=st.sampled_from(["gvmi", "staged"]),
)
def test_offload_alltoall_any_block_size(block, seed, mode):
    from repro.offload import OffloadFramework

    cluster = Cluster(ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2))
    fw = OffloadFramework(cluster, mode=mode, group_caching=True)
    P = cluster.world_size
    rng = np.random.default_rng(seed)
    fills = rng.integers(1, 250, size=P)

    def make(rank):
        def prog(sim):
            ep = fw.endpoint(rank)
            sbuf = ep.ctx.space.alloc(P * block, fill=int(fills[rank]))
            rbuf = ep.ctx.space.alloc(P * block)
            greq = ep.group_start()
            for d in range(1, P):
                dst = (rank + d) % P
                src = (rank - d) % P
                ep.group_send(greq, sbuf + dst * block, block, dst=dst, tag=3)
                ep.group_recv(greq, rbuf + src * block, block, src=src, tag=3)
            ep.group_end(greq)
            yield from ep.group_call(greq)
            yield from ep.group_wait(greq)
            for s in range(P):
                if s != rank:
                    assert (ep.ctx.space.read(rbuf + s * block, block)
                            == fills[s]).all()
            return True

        return prog

    assert all(run_procs(cluster, [make(r)(cluster.sim) for r in range(P)]))
    fw.assert_quiescent()


# ---------------------------------------------------------------------------
# misc invariants
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(n=st.integers(1, 4096), d=st.integers(1, 4))
def test_dims_create_invariants(n, d):
    dims = dims_create(n, d)
    assert len(dims) == d
    assert math.prod(dims) == n
    assert all(x >= 1 for x in dims)
    assert dims == sorted(dims, reverse=True)


@settings(max_examples=60, deadline=None)
@given(
    src=st.integers(0, 5), tag=st.integers(0, 5),
    rsrc=st.integers(-1, 5), rtag=st.integers(-1, 5),
)
def test_wildcard_matching_is_superset_of_exact(src, tag, rsrc, rtag):
    env = Envelope(src=src, dst=0, tag=tag, comm_id=0)
    if env.matches_recv(rsrc, rtag, 0):
        # widening any selector must keep it matching
        assert env.matches_recv(ANY_SOURCE, rtag, 0)
        assert env.matches_recv(rsrc, ANY_TAG, 0)
        assert env.matches_recv(ANY_SOURCE, ANY_TAG, 0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100))
def test_simulation_is_deterministic(seed):
    """Same configuration -> bit-identical event counts and final time."""
    def one_run():
        cluster = Cluster(ClusterSpec(nodes=2, ppn=2, seed=seed))
        world = MpiWorld(cluster)
        from repro.mpi import collectives as coll

        def program(rt):
            cw = world.comm_world
            P = world.size
            sa = rt.ctx.space.alloc(P * 512, fill=rt.rank + 1)
            ra = rt.ctx.space.alloc(P * 512)
            yield from coll.alltoall(rt, cw, sa, ra, 512)
            return rt.sim.now

        world.run(program)
        return cluster.sim.processed_events, cluster.sim.now

    assert one_run() == one_run()


# ---------------------------------------------------------------------------
# group offload: relay chains of arbitrary length stay correct
# ---------------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    ranks=st.integers(3, 6),
    size=st.sampled_from([512, 8192, 40_000]),
    seed=st.integers(0, 500),
)
def test_offload_relay_chain_any_length(ranks, size, seed):
    """A barrier-gated relay 0 -> 1 -> ... -> last: every hop forwards the
    bytes it received, so any barrier-ordering bug corrupts the tail."""
    from repro.offload import OffloadFramework

    cluster = Cluster(ClusterSpec(nodes=ranks, ppn=1, proxies_per_dpu=1))
    fw = OffloadFramework(cluster)
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 255, size=size, dtype=np.uint8)
    bufs = {}

    def make(rank):
        def prog(sim):
            ep = fw.endpoint(rank)
            if rank == 0:
                buf = ep.ctx.space.alloc_like(payload)
            else:
                buf = ep.ctx.space.alloc(size)
            bufs[rank] = buf
            g = ep.group_start()
            if rank == 0:
                ep.group_send(g, buf, size, dst=1, tag=70)
                ep.group_barrier(g)
            else:
                ep.group_recv(g, buf, size, src=rank - 1, tag=70)
                ep.group_barrier(g)
                if rank + 1 < ranks:
                    ep.group_send(g, buf, size, dst=rank + 1, tag=70)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return True

        return prog

    assert all(run_procs(cluster, [make(r)(cluster.sim) for r in range(ranks)]))
    fw.assert_quiescent()
    for k in range(1, ranks):
        got = cluster.rank_ctx(k).space.read(bufs[k], size)
        assert (got == payload).all(), f"hop {k} corrupted"
