"""Unit tests for the staging-buffer pool."""

import pytest

from tests.helpers import run_proc
from repro.offload import OffloadError, StagingChannel
from repro.offload.staging import size_class_of


class TestSizeClasses:
    def test_minimum_bucket(self):
        assert size_class_of(1) == 4096
        assert size_class_of(4096) == 4096

    def test_power_of_two_rounding(self):
        assert size_class_of(4097) == 8192
        assert size_class_of(100_000) == 131072

    def test_invalid_size(self):
        with pytest.raises(OffloadError):
            size_class_of(0)


class TestPool:
    def test_host_context_rejected(self, tiny_cluster):
        with pytest.raises(OffloadError):
            StagingChannel(tiny_cluster.rank_ctx(0))

    def test_first_acquire_registers(self, tiny_cluster):
        ch = StagingChannel(tiny_cluster.proxy_ctx(0, 0))

        def prog(sim):
            t0 = sim.now
            buf = yield from ch.acquire(10_000)
            first = sim.now - t0
            ch.release(buf)
            t1 = sim.now
            buf2 = yield from ch.acquire(10_000)
            second = sim.now - t1
            ch.release(buf2)
            return first, second, buf, buf2

        first, second, buf, buf2 = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert first > 0 and second == 0.0  # reuse is free
        assert buf is buf2
        assert ch.created == 1 and ch.reused == 1

    def test_distinct_size_classes_distinct_buffers(self, tiny_cluster):
        ch = StagingChannel(tiny_cluster.proxy_ctx(0, 0))

        def prog(sim):
            a = yield from ch.acquire(1000)
            b = yield from ch.acquire(100_000)
            ch.release(a)
            ch.release(b)
            return a, b

        a, b = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert a.size_class != b.size_class
        assert ch.created == 2

    def test_concurrent_acquires_get_distinct_buffers(self, tiny_cluster):
        ch = StagingChannel(tiny_cluster.proxy_ctx(0, 0))

        def prog(sim):
            a = yield from ch.acquire(4096)
            b = yield from ch.acquire(4096)
            assert a.addr != b.addr
            assert ch.outstanding == 2
            ch.release(a)
            ch.release(b)
            assert ch.outstanding == 0
            assert ch.pooled == 2

        run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_buffer_is_registered_dpu_memory(self, tiny_cluster):
        proxy = tiny_cluster.proxy_ctx(0, 0)
        ch = StagingChannel(proxy)

        def prog(sim):
            buf = yield from ch.acquire(4096)
            return buf

        buf = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert proxy.space.contains(buf.addr, buf.size_class)
        assert buf.handle.owner is proxy
