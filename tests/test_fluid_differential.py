"""Differential equivalence harness for the fluid-flow hybrid engine.

The fluid engine (docs/PERFORMANCE.md) is only allowed to exist behind
two guarantees, both enforced here:

1. **Exact mode is bit-identical.**  With fluid off, the figure tables
   regenerate byte-for-byte against the committed ``results/figNN.json``
   snapshots, and the golden observability traces are untouched.
2. **Fluid mode is equivalent within a stated tolerance.**  The
   quick-scale micro figures (fig02/03/05/15) must match the committed
   event-exact tables point by point within ``FLUID_RTOL``, and every
   paper-shape check must still pass.

The measured deviations behind the tolerance choice (also quoted in
docs/PERFORMANCE.md): fig02/05/15 are bit-identical in fluid mode (all
their transfers sit below the 256 KiB threshold or run solo, where a
flow lands on exactly the event engine's timestamps), and fig03's worst
point is ~1e-15 (one float round-trip through the rate solver).
``FLUID_RTOL = 1e-9`` therefore has six orders of magnitude of margin
while still catching any genuine modelling drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import runall
from repro.experiments.common import canonical_json
from repro.hw import Cluster, ClusterSpec, using_fluid, using_topology
from repro.obs import EventBus, trace_violations

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: The quick-scale micro figures the differential harness gates on
#: (the app figures deviate up to ~10% through lost bulk-vs-control
#: port contention and are covered by shape checks, not bit tolerance).
DIFF_FIGURES = [
    "fig02_rdma_latency",
    "fig03_rdma_bw",
    "fig05_registration",
    "fig15_group_vs_simple",
]

#: Relative tolerance for fluid-vs-exact figure values.
FLUID_RTOL = 1e-9


def _committed(name: str) -> dict:
    doc = json.loads((RESULTS_DIR / f"{name.split('_')[0]}.json").read_text())
    doc.pop("schema", None)  # added by runall's file writer, not by run()
    return doc


def _run(name: str):
    fig, exc = runall.run_one(name, scale="quick")
    assert exc is None, f"{name} crashed: {exc!r}"
    return fig


class TestExactModeBitIdentity:
    """Fluid off => committed tables regenerate byte-for-byte."""

    @pytest.mark.parametrize("name", DIFF_FIGURES)
    def test_tables_match_committed(self, name):
        fig = _run(name)
        assert canonical_json(fig.to_dict()) == canonical_json(_committed(name)), (
            f"{name}: exact-mode table drifted from the committed snapshot -- "
            f"the event engine must stay bit-identical with fluid off"
        )

    def test_flow_engine_disengaged(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        assert cl.fabric.flow_engine is None
        assert cl.sim.flow_engine is None

    def test_golden_traces_unchanged_even_in_fluid_mode(self):
        """Control-plane scenarios carry no bulk: their event streams
        must match the golden files byte-for-byte in *both* modes (the
        hybrid split leaves everything below the threshold exact)."""
        from tests.test_golden_traces import GOLDEN_DIR, SCENARIOS, serialize_events

        with using_fluid():
            obs = SCENARIOS["ring_broadcast"]()
        got = serialize_events(obs.bus)
        assert got == (GOLDEN_DIR / "ring_broadcast.events").read_text()


class TestFluidWithinTolerance:
    """Fluid on => every micro-figure point within FLUID_RTOL."""

    @pytest.mark.parametrize("name", DIFF_FIGURES)
    def test_tables_match_within_tolerance(self, name):
        with using_fluid():
            fig = _run(name)
        assert fig.all_passed, (
            f"{name}: paper-shape checks failed in fluid mode: "
            + "; ".join(c.name for c in fig.checks if not c.passed)
        )
        committed = _committed(name)
        got = fig.to_dict()
        assert [s["label"] for s in got["series"]] == \
            [s["label"] for s in committed["series"]]
        for se, sf in zip(committed["series"], got["series"]):
            assert sf["x"] == se["x"]
            for x, exact, fluid in zip(se["x"], se["y"], sf["y"]):
                assert fluid == pytest.approx(exact, rel=FLUID_RTOL), (
                    f"{name} {se['label']}@{x}: fluid {fluid!r} vs "
                    f"exact {exact!r} exceeds rtol={FLUID_RTOL}"
                )

    def test_bulk_actually_rides_flows(self):
        """Guard against the differential passing vacuously: a transfer
        above the threshold must engage the FlowEngine and complete via
        the flow path."""
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, fluid=True))
        seen = {}

        def prog():
            t = cl.fabric.transfer(src_node=0, dst_node=1, size=1 << 20,
                                   initiator="host")
            dv = yield t.completed
            seen["via"] = dv.via

        cl.sim.process(prog())
        cl.sim.run()
        assert seen["via"] == "flow"
        assert cl.fabric.flow_engine.flows_finished == 1
        assert cl.nodes[0].hca.metrics.get("fabric.flows") == 1

    def test_sub_threshold_stays_event_exact(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, fluid=True))
        seen = {}

        def prog():
            t = cl.fabric.transfer(src_node=0, dst_node=1, size=4096,
                                   initiator="host")
            dv = yield t.completed
            seen["via"] = dv.via

        cl.sim.process(prog())
        cl.sim.run()
        assert seen["via"] == "event"
        assert cl.fabric.flow_engine.flows_started == 0


class TestTopologyModeBitIdentity:
    """A single-switch fat-tree is the identity topology: every flow's
    path degenerates to the 2-link (tx, rx) pair, the engine stays on
    its endpoint fast solver, and the committed fluid-equivalent tables
    must regenerate within FLUID_RTOL -- with the per-link machinery
    attached, not bypassed.  Golden traces stay byte-identical too (the
    control plane never touches the flow engine)."""

    @pytest.mark.parametrize("name", DIFF_FIGURES)
    def test_single_switch_tables_match(self, name):
        with using_fluid(), using_topology(nodes_per_switch=1 << 20):
            fig = _run(name)
        assert fig.all_passed, (
            f"{name}: paper-shape checks failed in topology mode: "
            + "; ".join(c.name for c in fig.checks if not c.passed)
        )
        committed = _committed(name)
        got = fig.to_dict()
        assert [s["label"] for s in got["series"]] == \
            [s["label"] for s in committed["series"]]
        for se, sf in zip(committed["series"], got["series"]):
            assert sf["x"] == se["x"]
            for x, exact, topo in zip(se["x"], se["y"], sf["y"]):
                assert topo == pytest.approx(exact, rel=FLUID_RTOL), (
                    f"{name} {se['label']}@{x}: topology {topo!r} vs "
                    f"exact {exact!r} exceeds rtol={FLUID_RTOL}"
                )

    def test_topology_attached_not_bypassed(self):
        """Guard against vacuity: the ambient override must actually
        build a FatTreeTopology and route flows through path= admission."""
        with using_fluid(), using_topology(nodes_per_switch=1 << 20):
            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        assert cl.topology is not None
        assert cl.topology.n_leaves == 1
        seen = {}

        def prog():
            t = cl.fabric.transfer(src_node=0, dst_node=1, size=1 << 20,
                                   initiator="host")
            dv = yield t.completed
            seen["path"] = dv.path

        cl.sim.process(prog())
        cl.sim.run()
        assert seen["path"] == (("tx", 0), ("rx", 1))
        # Degenerate 2-link paths keep the endpoint fast solver engaged.
        assert cl.fabric.flow_engine._n_multilink == 0

    def test_golden_traces_unchanged_in_topology_mode(self):
        from tests.test_golden_traces import GOLDEN_DIR, SCENARIOS, serialize_events

        with using_fluid(), using_topology(nodes_per_switch=1 << 20):
            obs = SCENARIOS["ring_broadcast"]()
        got = serialize_events(obs.bus)
        assert got == (GOLDEN_DIR / "ring_broadcast.events").read_text()

    def test_explicit_spec_wins_over_ambient(self):
        """A spec that chose its own fat-tree keeps it under overrides."""
        spec = ClusterSpec(nodes=8, ppn=1, nodes_per_switch=2,
                           spine_count=2, fluid=True)
        with using_topology(nodes_per_switch=1 << 20, spine_count=7):
            cl = Cluster(spec)
        assert cl.topology.nodes_per_switch == 2
        assert cl.topology.spine_count == 2


def _bulk_observed(break_finisher=None):
    """Two crossing bulk transfers in fluid mode with the bus attached;
    returns the bus after the run."""
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, fluid=True))
    bus = EventBus.attach(cl)
    if break_finisher is not None:
        fabric = cl.fabric
        fabric._flow_drained = break_finisher.__get__(fabric, type(fabric))

    def prog():
        a = cl.fabric.transfer(src_node=0, dst_node=1, size=1 << 20,
                               initiator="host")
        b = cl.fabric.transfer(src_node=1, dst_node=0, size=1 << 20,
                               initiator="host")
        yield cl.sim.all_of([a.completed, b.completed])

    cl.sim.process(prog())
    cl.sim.run()
    return bus


class TestFlowWindowInvariant:
    """The obs checker treats a flow's bulk window as opaque DMA."""

    def test_clean_fluid_run_passes(self):
        bus = _bulk_observed()
        assert trace_violations(bus) == []
        assert bus.count(cat="flow", name="begin") == 2
        assert bus.count(cat="flow", name="end") == 2
        assert bus.count(cat="xfer", name="deliver") == 2

    def test_lost_finisher_is_caught(self):
        """A finisher that delivers but never closes the window."""
        from repro.hw.fabric import Fabric

        real = Fabric._flow_drained

        def lost_end(self, flow, t_drain):
            bus = self.bus
            self.bus = None          # swallow only the flow.end emission
            try:
                real(self, flow, t_drain)
            finally:
                self.bus = bus

        bus = _bulk_observed(break_finisher=lost_end)
        violations = trace_violations(bus)
        assert violations, "lost flow.end went undetected"
        assert any("never ended" in v for v in violations)

    def test_early_delivery_inside_window_is_caught(self):
        """A finisher that fires the delivery tail *inside* the bulk
        window (before emitting flow.end)."""
        from repro.hw.fabric import Fabric

        def early_deliver(self, flow, t_drain):
            st = flow.tag
            self._flow_deliver(st)   # delivery leaks into the open window
            self.bus.emit("flow", "end", f"flow{flow.fid}", fid=flow.fid,
                          xid=st.xid)

        bus = _bulk_observed(break_finisher=early_deliver)
        violations = trace_violations(bus)
        assert violations, "early delivery inside the bulk window went undetected"
        assert any("inside its bulk window" in v for v in violations)

    def test_control_event_inside_window_is_caught(self):
        """Synthetic stream: a host-CPU event attributed to an open flow."""
        bus = EventBus()
        bus.emit("flow", "begin", "flow0", fid=0, xid=0, kind="data",
                 size=1 << 20, src=0, dst=1)
        bus.emit("proc", "start", "flow0", fid=0)
        bus.emit("flow", "end", "flow0", fid=0, xid=0)
        violations = trace_violations(bus)
        assert any("bulk window" in v for v in violations)


class TestFaultyDifferential:
    """Fault injection composed with the hybrid engine: the same seeded
    chaos campaign must tell the same recovery story on both engines.

    At the soak workload's message sizes each exchange rides a solo
    flow, where the fluid engine reproduces the event engine's
    timestamps exactly -- so the differential is strict: identical
    fault statistics, identical completion counts, and latency samples
    within FLUID_RTOL.  Flow-drop fates exist only on the fluid path
    (their stream is never consumed in exact mode), so the strict
    comparison runs with flow_drop=0 and a separate check covers the
    composed fates.
    """

    SEEDS = (7, 8, 9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_fluid_matches_faulty_exact(self, seed):
        from repro.experiments.soak import soak_iteration

        exact = soak_iteration(0, "quick", 0.05, 0.02, 4, 1, 1,
                               False, 0.0, seed=seed)
        fluid = soak_iteration(0, "quick", 0.05, 0.02, 4, 1, 1,
                               True, 0.0, seed=seed)
        assert exact["fault_stats"] == fluid["fault_stats"]
        for k, v in exact["counters"].items():
            assert fluid["counters"][k] == v, f"counter {k} diverged"
        assert fluid["counters"]["flows"] > 0  # not vacuous
        for hist in ("recovery_latency", "req_latency"):
            a, b = exact["hists"][hist], fluid["hists"][hist]
            assert len(a) == len(b), f"{hist} sample count diverged"
            for x, y in zip(sorted(a), sorted(b)):
                assert y == pytest.approx(x, rel=FLUID_RTOL), (
                    f"{hist}: fluid {y!r} vs exact {x!r}")

    def test_flow_drops_stay_in_the_recovery_envelope(self):
        """With flow-drop fates armed on top, the campaign still
        completes every request and recovery latencies stay in the same
        regime (the retransmitted remainder rides the same backoff
        constants as the event path's recoveries)."""
        import numpy as np

        from repro.experiments.soak import soak_iteration

        exact = soak_iteration(0, "quick", 0.05, 0.02, 4, 1, 1,
                               False, 0.0, seed=7)
        faulty = soak_iteration(0, "quick", 0.05, 0.02, 4, 1, 1,
                                True, 0.2, seed=7)
        assert faulty["counters"]["completions"] == \
            exact["counters"]["completions"]
        assert faulty["fault_stats"]["flow_drops"] > 0
        p50_exact = float(np.percentile(exact["hists"]["req_latency"], 50))
        p50_faulty = float(np.percentile(faulty["hists"]["req_latency"], 50))
        assert p50_faulty < 5.0 * p50_exact
