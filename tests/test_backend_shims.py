"""Tests for dependent-request shims (HPL's ring hop) and backend glue."""

import pytest

from tests.helpers import pattern
from repro.apps.hpl import _RingForward, _ring_bcast_p2p
from repro.baselines import make_stack
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=4, ppn=1, proxies_per_dpu=1)


def _ring_once(flavor, size=32 * 1024, compute=0.0, chunk=5e-6):
    """Run one 1-ring broadcast via the shim machinery on all ranks."""
    stack = make_stack(flavor, SPEC)
    data = pattern(size, seed=4)
    out = {}

    def program(be):
        comm = be.stack.comm_world
        if be.rank == 0:
            addr = be.ctx.space.alloc_like(data)
        else:
            addr = be.ctx.space.alloc(size)
        reqs = yield from _ring_bcast_p2p(be, comm, 0, addr, size)
        if compute:
            remaining = compute
            while remaining > 0:
                step = min(chunk, remaining)
                yield be.ctx.consume(step)
                remaining -= step
                for r in reqs:
                    yield from be.test(r)
        yield from be.waitall(reqs)
        out[be.rank] = be.sim.now
        assert (be.ctx.space.read(addr, size) == data).all()
        return True

    assert all(stack.run(program))
    return out


class TestRingForwardShim:
    @pytest.mark.parametrize("flavor", ["intelmpi", "proposed"])
    def test_data_travels_the_whole_ring(self, flavor):
        _ring_once(flavor)

    def test_forward_needs_cpu_intervention(self):
        """Without test pokes, the middle ranks only forward in waitall;
        with pokes, forwards happen during the compute."""
        lazy = _ring_once("intelmpi", compute=0.0)
        eager = _ring_once("intelmpi", compute=100e-6, chunk=5e-6)
        # With a compute region + pokes, the last rank's finish time is
        # dominated by the compute (forwards interleave), not stacked
        # after it.
        assert eager[3] < lazy[3] + 120e-6

    def test_shim_reports_completion_only_after_forward(self):
        stack = make_stack("intelmpi", SPEC)
        state = {}

        def program(be):
            comm = be.stack.comm_world
            size = 1024
            if be.rank == 0:
                addr = be.ctx.space.alloc(size, fill=3)
                req = yield from be.isend(comm, 1, addr, size, tag=53)
                yield from be.wait(req)
            elif be.rank == 1:
                addr = be.ctx.space.alloc(size)
                recv = yield from be._irecv(comm, 0, addr, size, 53)
                shim = _RingForward(be, comm, recv, 2, addr, size)
                # even once the recv lands, the shim is not complete
                # until advance() posts (and completes) the forward
                yield from be._wait(recv)
                state["before_advance"] = shim.complete
                yield from be.wait(shim)
                state["after_wait"] = shim.complete
            elif be.rank == 2:
                addr = be.ctx.space.alloc(size)
                req = yield from be.irecv(comm, 1, addr, size, tag=53)
                yield from be.wait(req)
            return True

        assert all(stack.run(program))
        assert state == {"before_advance": False, "after_wait": True}

    def test_blocking_events_exposes_offload_events(self):
        stack = make_stack("proposed", ClusterSpec(nodes=3, ppn=1, proxies_per_dpu=1))

        def program(be):
            comm = be.stack.comm_world
            size = 2048
            if be.rank == 0:
                addr = be.ctx.space.alloc(size, fill=1)
                req = yield from be.isend(comm, 1, addr, size, tag=53)
                yield from be.wait(req)
            elif be.rank == 1:
                addr = be.ctx.space.alloc(size)
                recv = yield from be._irecv(comm, 0, addr, size, 53)
                shim = _RingForward(be, comm, recv, 2, addr, size)
                evs = shim.blocking_events()
                assert len(evs) == 1  # the offload recv's event
                yield from be.wait(shim)
            elif be.rank == 2:
                addr = be.ctx.space.alloc(size)
                req = yield from be.irecv(comm, 1, addr, size, tag=53)
                yield from be.wait(req)
            return True

        assert all(stack.run(program))
