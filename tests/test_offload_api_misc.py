"""Remaining offload API surface: errors, lifecycle, bookkeeping."""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadError, OffloadFramework
from repro.offload.requests import GroupOp, OffloadGroupRequest


class TestEndpointErrors:
    def test_completion_for_unknown_request(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        with pytest.raises(OffloadError, match="unknown request"):
            ep._complete_by_id(987654)

    def test_unknown_endpoint_inbox_item(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        ep.inbox.put(("mystery", {}))

        def prog(sim):
            yield from ep._drain_inbox()

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        with pytest.raises(OffloadError, match="unknown inbox item"):
            tiny_cluster.sim.run(until=proc)

    def test_quiescence_detects_pending_requests(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)

        def prog(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc(64)
            yield from ep.send_offload(addr, 64, dst=1, tag=1)
            # never waited, never matched

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        tiny_cluster.sim.run(until=proc)
        tiny_cluster.sim.run(until=tiny_cluster.sim.now + 1e-3)
        with pytest.raises(OffloadError):
            fw.assert_quiescent()


class TestGroupRequestObject:
    def test_record_after_end_raises(self):
        g = OffloadGroupRequest(rank=0)
        g.state = "ready"
        with pytest.raises(OffloadError):
            g.record(GroupOp("send"))

    def test_signature_covers_all_fields(self):
        a = OffloadGroupRequest(rank=0)
        b = OffloadGroupRequest(rank=0)
        a.record(GroupOp("send", addr=1, size=2, peer=3, tag=4))
        b.record(GroupOp("send", addr=1, size=2, peer=3, tag=5))  # tag differs
        assert a.signature() != b.signature()

    def test_signature_rank_scoped(self):
        a = OffloadGroupRequest(rank=0)
        b = OffloadGroupRequest(rank=1)
        assert a.signature() != b.signature()

    def test_calls_counter(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        g = ep.group_start()
        ep.group_end(g)

        def prog(sim):
            for _ in range(3):
                yield from ep.group_call(g)
                yield from ep.group_wait(g)
            return g.calls

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        tiny_cluster.sim.run(until=proc)
        assert proc.value == 3


class TestReadyGate:
    def test_ops_wait_for_init_exchange(self, tiny_cluster):
        """The GVMI-ID exchange happens inside Init_Offload; the first
        operation cannot start before it finishes."""
        fw = OffloadFramework(tiny_cluster)
        t_ready = {}

        def watch(sim):
            yield fw.ready
            t_ready["t"] = sim.now

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc(64)
            req = yield from ep.send_offload(addr, 64, dst=1, tag=1)
            t_ready["first_op_after"] = sim.now
            _ = req

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(64)
            req = yield from ep.recv_offload(addr, 64, src=0, tag=1)
            yield from ep.wait(req)

        run_procs(tiny_cluster, [watch(tiny_cluster.sim),
                                 sender(tiny_cluster.sim),
                                 receiver(tiny_cluster.sim)])
        assert t_ready["first_op_after"] >= t_ready["t"] > 0


class TestWaitall:
    def test_waitall_over_mixed_basic_requests(self, small_cluster):
        fw = OffloadFramework(small_cluster)
        data = pattern(1024)

        def sender(sim):
            ep = fw.endpoint(0)
            a = ep.ctx.space.alloc_like(data)
            reqs = []
            for tag in (1, 2, 3):
                reqs.append((yield from ep.send_offload(a, 1024, dst=2, tag=tag)))
            yield from ep.waitall(reqs)
            return all(r.complete for r in reqs)

        def receiver(sim):
            ep = fw.endpoint(2)
            reqs = []
            bufs = []
            for tag in (3, 1, 2):  # scrambled post order
                b = ep.ctx.space.alloc(1024)
                bufs.append(b)
                reqs.append((yield from ep.recv_offload(b, 1024, src=0, tag=tag)))
            yield from ep.waitall(reqs)
            return all((ep.ctx.space.read(b, 1024) == data).all() for b in bufs)

        results = run_procs(small_cluster,
                            [sender(small_cluster.sim), receiver(small_cluster.sim)])
        assert results == [True, True]
        fw.assert_quiescent()


class TestProxyMapping:
    def test_ranks_spread_over_proxies(self):
        """rank % proxies_per_dpu: different local ranks -> different
        workers, so one slow pattern cannot serialise a whole node."""
        cl = Cluster(ClusterSpec(nodes=1, ppn=4, proxies_per_dpu=2))
        fw = OffloadFramework(cl)
        engines = {r: fw.proxy_engine_for_rank(r) for r in range(4)}
        assert engines[0] is engines[2]
        assert engines[1] is engines[3]
        assert engines[0] is not engines[1]
