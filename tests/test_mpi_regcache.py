"""Unit tests for the host IB registration cache."""

from tests.helpers import run_proc
from repro.mpi import RegistrationCache


def _get(cluster, cache, addr, size):
    def prog(sim):
        return (yield from cache.get(addr, size))

    return run_proc(cluster, prog(cluster.sim))


def test_miss_then_hit(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(4096)
    h1 = _get(tiny_cluster, cache, addr, 4096)
    h2 = _get(tiny_cluster, cache, addr, 4096)
    assert h1 is h2
    assert (cache.hits, cache.misses) == (1, 1)


def test_covering_registration_is_a_hit(tiny_cluster):
    """Production caches pin whole regions: a smaller interior range hits."""
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(1 << 20)
    big = _get(tiny_cluster, cache, addr, 1 << 20)
    small = _get(tiny_cluster, cache, addr + 4096, 4096)
    assert small is big
    assert cache.misses == 1 and cache.hits == 1


def test_non_covering_range_misses(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(8192)
    _get(tiny_cluster, cache, addr, 4096)
    _get(tiny_cluster, cache, addr, 8192)  # extends past the first
    assert cache.misses == 2


def test_hit_is_much_cheaper_than_miss(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(1 << 20)
    times = []

    def prog(sim):
        for _ in range(2):
            t0 = sim.now
            yield from cache.get(addr, 1 << 20)
            times.append(sim.now - t0)

    run_proc(tiny_cluster, prog(tiny_cluster.sim))
    assert times[1] < times[0] / 20


def test_invalidate(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(64)
    _get(tiny_cluster, cache, addr, 64)
    assert cache.invalidate(addr, 64)
    assert not cache.invalidate(addr, 64)
    _get(tiny_cluster, cache, addr, 64)
    assert cache.misses == 2


def test_peek_does_not_charge_or_register(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(64)
    assert cache.peek(addr, 64) is None
    _get(tiny_cluster, cache, addr, 64)
    assert cache.peek(addr, 64) is not None


def test_clear(tiny_cluster):
    ctx = tiny_cluster.rank_ctx(0)
    cache = RegistrationCache(ctx)
    addr = ctx.space.alloc(64)
    _get(tiny_cluster, cache, addr, 64)
    cache.clear()
    assert len(cache) == 0
