"""Tests for the extended OSU-style suite."""


from repro.apps.osu_suite import osu_bw, osu_iallgather, osu_ibcast, osu_latency
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2)


class TestLatency:
    def test_monotone_in_size(self):
        lat = osu_latency("intelmpi", SPEC, [64, 4096, 262144], iters=4)
        assert lat[64] < lat[4096] < lat[262144]

    def test_proposed_latency_close_to_host_at_large_sizes(self):
        """Offload adds fixed control costs; at bandwidth-bound sizes the
        direct GVMI data path keeps it within ~1.5x of host latency."""
        size = 262144
        host = osu_latency("intelmpi", SPEC, [size], iters=4)[size]
        prop = osu_latency("proposed", SPEC, [size], iters=4)[size]
        assert prop < 1.5 * host


class TestBandwidth:
    def test_approaches_wire_rate_for_large_messages(self):
        bw = osu_bw("intelmpi", SPEC, [1 << 20], window=16, iters=2)
        assert bw[1 << 20] > 0.6 * SPEC.params.wire_bandwidth

    def test_small_messages_are_gap_bound(self):
        bw = osu_bw("intelmpi", SPEC, [64], window=16, iters=2)
        assert bw[64] < 0.05 * SPEC.params.wire_bandwidth

    def test_bandwidth_increases_with_size(self):
        bw = osu_bw("intelmpi", SPEC, [1024, 65536, 1 << 20], window=8, iters=2)
        assert bw[1024] < bw[65536] < bw[1 << 20]


class TestIbcastOverlap:
    def test_offloads_overlap_host_does_not(self):
        size = 128 * 1024
        host = osu_ibcast("intelmpi", SPEC, size, iters=3)
        prop = osu_ibcast("proposed", SPEC, size, iters=3)
        assert prop.overlap_pct > host.overlap_pct + 30
        assert prop.overlap_pct > 70

    def test_result_sanity(self):
        r = osu_ibcast("bluesmpi", SPEC, 64 * 1024, iters=2)
        assert r.pure_comm > 0 and r.overall >= r.compute > 0


class TestIallgatherOverlap:
    def test_runs_and_reports(self):
        r = osu_iallgather(SPEC, 16 * 1024, iters=2)
        assert r.pure_comm > 0
        assert 0 <= r.overlap_pct <= 100
