"""Plain-function helpers shared across test modules."""

from __future__ import annotations

import numpy as np


def run_proc(cluster, gen):
    """Run one generator to completion on the cluster's simulator."""
    proc = cluster.sim.process(gen)
    cluster.sim.run(until=proc)
    return proc.value


def run_procs(cluster, gens):
    """Run several generators; returns their values in order."""
    procs = [cluster.sim.process(g) for g in gens]
    cluster.sim.run(until=cluster.sim.all_of(procs))
    return [p.value for p in procs]


def pattern(n: int, seed: int = 0) -> np.ndarray:
    """Deterministic uint8 payload."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 255, size=n, dtype=np.uint8)
