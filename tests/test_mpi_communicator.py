"""Unit tests for communicators."""

import pytest

from repro.mpi import Communicator, MpiError


class TestBasics:
    def test_world(self):
        c = Communicator.world(8)
        assert c.size == 8
        assert c.world_rank(3) == 3
        assert c.rank_of(5) == 5

    def test_subset_translation(self):
        c = Communicator([4, 2, 7])
        assert c.size == 3
        assert c.world_rank(0) == 4
        assert c.rank_of(7) == 2

    def test_contains(self):
        c = Communicator([1, 3])
        assert c.contains(3) and not c.contains(2)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(MpiError):
            Communicator([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(MpiError):
            Communicator([])

    def test_unknown_world_rank(self):
        with pytest.raises(MpiError):
            Communicator([0, 1]).rank_of(9)

    def test_local_rank_out_of_range(self):
        with pytest.raises(MpiError):
            Communicator([0, 1]).world_rank(2)

    def test_distinct_comm_ids(self):
        assert Communicator([0]).comm_id != Communicator([0]).comm_id


class TestSplit:
    def test_split_by_color(self):
        c = Communicator.world(6)
        parts = c.split([0, 1, 0, 1, 0, 1])
        assert sorted(parts) == [0, 1]
        assert parts[0].world_ranks == [0, 2, 4]
        assert parts[1].world_ranks == [1, 3, 5]

    def test_split_respects_keys(self):
        c = Communicator.world(4)
        parts = c.split([0, 0, 0, 0], keys=[3, 2, 1, 0])
        assert parts[0].world_ranks == [3, 2, 1, 0]

    def test_split_is_memoised_across_ranks(self):
        """Every rank calling split with identical args must receive the
        *same* communicator objects (consistent comm ids)."""
        c = Communicator.world(4)
        a = c.split([0, 1, 0, 1])
        b = c.split([0, 1, 0, 1])
        assert a[0] is b[0] and a[1] is b[1]

    def test_different_colors_get_fresh_comms(self):
        c = Communicator.world(4)
        a = c.split([0, 1, 0, 1])
        b = c.split([0, 0, 1, 1])
        assert a[0] is not b[0]

    def test_wrong_color_count_rejected(self):
        with pytest.raises(MpiError):
            Communicator.world(3).split([0, 1])
