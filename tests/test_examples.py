"""Smoke tests: every shipped example runs end to end and says so."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "payload verified" in out
    assert "finished during the compute" in out


def test_ring_broadcast(capsys):
    out = _run_example("ring_broadcast", capsys)
    assert "proposed cross-GVMI offload" in out
    assert "hides the ring" in out


def test_fft_transpose(capsys):
    out = _run_example("fft_transpose", capsys)
    assert out.count("OK") == 3
    assert "normalised to IntelMPI" in out


def test_shmem_pgas(capsys):
    out = _run_example("shmem_pgas", capsys)
    assert "bit-exact" in out


def test_timeline_trace(capsys):
    out = _run_example("timeline_trace", capsys)
    assert "dpu0" in out and "#" in out


@pytest.mark.slow
def test_hpl_lookahead(capsys):
    out = _run_example("hpl_lookahead", capsys)
    assert out.count("OK") == 3
    assert "Proposed" in out


def test_runall_single_figure(capsys):
    from repro.experiments.runall import main

    assert main(["fig05"]) == 0
    out = capsys.readouterr().out
    assert "all shape checks passed" in out
