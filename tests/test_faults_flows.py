"""Flow-path fault fates: drops, error CQEs, aborts on the fluid engine.

The chaos-hardened hybrid: an armed FaultPlan no longer forces the exact
engine -- fault fates ride the flow path itself.  Flow drops retransmit
the lost remainder through the RetryPolicy's exponential backoff; error
CQEs surface after a full drain; proxy kills abort in-flight flows into
flush errors that the existing recovery machinery (incarnation-guarded
watchers, host retransmit, group replay) absorbs.  Drop fates draw from
a dedicated ``flow-faults`` stream, so arming them never perturbs an
exact-mode trace.
"""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import (
    Cluster,
    ClusterSpec,
    FaultPlan,
    FaultSpec,
    ProxyKillPlan,
    RetryPolicy,
)
from repro.obs.events import EventBus
from repro.obs.invariants import check_trace
from repro.verbs.mr import reg_mr
from repro.verbs.rdma import rdma_write

MB = 1 << 20


def _fluid_cluster(spec=None, seed=11, threshold=4096, kills=(), retry=None):
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, seed=seed,
                             fluid=True, fluid_threshold=threshold))
    bus = EventBus.attach(cl)
    plan = FaultPlan(spec if spec is not None else FaultSpec(),
                     kills=kills, seed=seed, retry=retry)
    cl.install_faults(plan)
    return cl, plan, bus


def _stream(cl, n=8, size=256 * 1024, collect=None):
    """One rank streams ``n`` bulk writes to its peer; returns statuses."""
    a, b = cl.ranks[0], cl.ranks[1]
    statuses = [] if collect is None else collect

    def prog(sim):
        sa = a.space.alloc(MB)
        da = b.space.alloc(MB)
        ha = yield from reg_mr(a, sa, MB)
        hb = yield from reg_mr(b, da, MB)
        for i in range(n):
            t = yield from rdma_write(a, lkey=ha.lkey, src_addr=sa,
                                      rkey=hb.rkey, dst_addr=da, size=size,
                                      copy=False)
            dv = yield t.completed
            statuses.append(dv.status)
        return None

    run_procs(cl, [prog(cl.sim)])
    return statuses


class TestFlowDrops:
    def test_drops_retransmit_and_complete(self):
        cl, plan, bus = _fluid_cluster(FaultSpec(flow_drop_prob=0.5))
        statuses = _stream(cl, n=8)
        assert statuses == ["ok"] * 8  # every transfer still completes
        m = cl.metrics
        assert m.get("fabric.flow_drops") > 0
        assert m.get("fabric.flow_drops") == m.get("fabric.flow_retries")
        assert plan.stats["flow_drops"] == m.get("fabric.flow_drops")
        assert plan.stats["flow_retries"] == m.get("fabric.flow_retries")
        check_trace(bus)

    def test_drop_emits_fault_and_retry_events(self):
        cl, plan, bus = _fluid_cluster(FaultSpec(flow_drop_prob=0.5))
        _stream(cl, n=8)
        drops = bus.select(cat="flow", name="fault", action="drop")
        retries = bus.select(cat="flow", name="retry")
        assert drops and len(drops) == len(retries)
        # Retry-chain flows share the transfer's xid with fresh fids.
        xid = drops[0].arg("xid")
        chain = [ev for ev in bus.select(cat="flow", name="begin")
                 if ev.arg("xid") == xid]
        assert len(chain) >= 2
        assert len({ev.arg("fid") for ev in chain}) == len(chain)
        assert [ev.arg("attempt") for ev in chain] == \
            list(range(1, len(chain) + 1))

    def test_certain_drop_is_bounded_by_retry_limit(self):
        """flow_drop_prob=1.0 must not loop forever: fates stop being
        consulted past the retry limit, so the transfer completes after
        exactly ``rdma_retry_limit`` drops."""
        retry = RetryPolicy(rdma_retry_limit=3)
        cl, plan, bus = _fluid_cluster(FaultSpec(flow_drop_prob=1.0),
                                       retry=retry)
        statuses = _stream(cl, n=2)
        assert statuses == ["ok", "ok"]
        assert cl.metrics.get("fabric.flow_drops") == 2 * 3
        check_trace(bus)

    def test_backoff_grows_exponentially(self):
        retry = RetryPolicy(rdma_retry_limit=4)
        cl, plan, bus = _fluid_cluster(FaultSpec(flow_drop_prob=1.0),
                                       retry=retry)
        _stream(cl, n=1)
        backoffs = [float(detail.split("backoff=")[1].rstrip("s"))
                    for _, cat, detail in plan.events if cat == "flow_retry"]
        assert len(backoffs) == 4
        expect = [min(retry.rdma_backoff * retry.backoff ** k,
                      retry.max_timeout) for k in range(4)]
        assert backoffs == pytest.approx(expect, rel=1e-3)

    def test_sub_threshold_transfers_never_draw_fates(self):
        cl, plan, bus = _fluid_cluster(FaultSpec(flow_drop_prob=1.0),
                                       threshold=1 * MB)
        statuses = _stream(cl, n=4, size=64 * 1024)  # below the threshold
        assert statuses == ["ok"] * 4
        assert plan.stats["flow_drops"] == 0
        assert bus.count(cat="flow") == 0


class TestErrorCqesOnFlows:
    def test_error_cqe_surfaces_after_full_drain(self):
        cl, plan, bus = _fluid_cluster(FaultSpec(error_cqe_prob=0.5))
        statuses = _stream(cl, n=8)
        assert "error" in statuses and "ok" in statuses
        # Errored flows still occupy the ports for their full window --
        # same as the event path -- so each has a begin/end pair.
        assert bus.count(cat="flow", name="begin") == 8
        assert bus.count(cat="flow", name="end") == 8
        check_trace(bus)

    def test_delay_fate_stretches_the_tail(self):
        base_cl, _, _ = _fluid_cluster(FaultSpec())
        base = _stream(base_cl, n=4)
        slow_cl, plan, _ = _fluid_cluster(
            FaultSpec(delay_prob=1.0, delay_max=50e-6))
        slow = _stream(slow_cl, n=4)
        assert base == slow == ["ok"] * 4
        assert plan.stats["delays"] == 4
        assert slow_cl.sim.now > base_cl.sim.now


class TestDeterminism:
    def _trace(self, seed, flow_drop, fluid):
        spec = ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, seed=seed,
                           fluid=True if fluid else None,
                           fluid_threshold=4096 if fluid else None)
        cl = Cluster(spec)
        bus = EventBus.attach(cl)
        cl.install_faults(FaultPlan(
            FaultSpec(flow_drop_prob=flow_drop, drop_prob=0.1,
                      error_cqe_prob=0.1),
            seed=seed))
        _stream(cl, n=6)
        return tuple((e.time, e.cat, e.name, e.entity, e.args)
                     for e in bus.events)

    def test_fluid_trace_reproducible(self):
        assert self._trace(5, 0.3, True) == self._trace(5, 0.3, True)

    def test_flow_stream_independent_of_event_path(self):
        """Arming flow-drop fates must leave exact-mode traces
        bit-identical: flow fates draw from their own RNG stream."""
        assert self._trace(5, 0.0, False) == self._trace(5, 0.9, False)


class TestChunkModeStaysExact:
    def test_armed_plan_disables_chunk_pricing_loudly(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, seed=3,
                                 chunk_bytes=64 * 1024))
        bus = EventBus.attach(cl)
        cl.install_faults(FaultPlan(FaultSpec(), seed=3))
        _stream(cl, n=2, size=256 * 1024)
        assert cl.metrics.get("fabric.fluid_disabled") == 2
        assert cl.metrics.get("fabric.chunks") == 0  # message-level FSM
        evs = bus.select(cat="fluid", name="disabled")
        assert len(evs) == 2
        assert evs[0].arg("reason") == "fault_plan"

    def test_clean_chunk_mode_emits_nothing(self):
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1, seed=3,
                                 chunk_bytes=64 * 1024))
        bus = EventBus.attach(cl)
        _stream(cl, n=2, size=256 * 1024)
        assert cl.metrics.get("fabric.fluid_disabled") == 0
        assert cl.metrics.get("fabric.chunks") > 0
        assert bus.count(cat="fluid") == 0


class TestProxyKillAbortsFlows:
    def _bulk_exchange(self, cl, fw, iters=4, size=512 * 1024):
        data = pattern(size, seed=5)

        def player(rank, peer):
            def prog(sim):
                ep = fw.endpoint(rank)
                for i in range(iters):
                    if rank == 0:
                        sa = ep.ctx.space.alloc_like(data)
                        req = yield from ep.send_offload(sa, size, dst=peer,
                                                         tag=i)
                        yield from ep.wait(req)
                    else:
                        ra = ep.ctx.space.alloc(size)
                        req = yield from ep.recv_offload(ra, size, src=peer,
                                                         tag=i)
                        yield from ep.wait(req)
                        assert (ep.ctx.space.read(ra, size) == data).all()
                return sim.now
            return prog

        return run_procs(cl, [player(0, 1)(cl.sim), player(1, 0)(cl.sim)])

    def test_kill_mid_flow_recovers_through_restart(self):
        from repro.offload import OffloadFramework

        probe = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        gid = probe.proxy_for_rank(0).global_id
        cl, plan, bus = _fluid_cluster(
            kills=[ProxyKillPlan(proxy_gid=gid, at=80e-6,
                                 restart_after=60e-6)],
            threshold=4096)
        fw = OffloadFramework(cl)
        self._bulk_exchange(cl, fw)
        fw.assert_quiescent()
        m = cl.metrics
        assert m.get("proxy.kills") == 1 and m.get("proxy.restarts") == 1
        # The kill caught flows in flight and aborted them...
        assert m.get("fabric.flow_aborts") >= 1
        assert m.get("proxy.flows_aborted") == m.get("fabric.flow_aborts")
        aborts = bus.select(cat="flow", name="fault", action="abort")
        assert len(aborts) == m.get("fabric.flow_aborts")
        # ...into flush-error deliveries the recovery machinery absorbed.
        assert m.get("offload.retransmits") >= 1
        check_trace(bus)

    def test_abort_only_touches_the_dead_proxys_flows(self):
        cl, plan, bus = _fluid_cluster()
        eng = cl.fabric.flow_engine
        victim, bystander = cl.proxies[0], cl.proxies[1]
        b = cl.ranks[1]
        results = {}

        def prog(sim):
            da = b.space.alloc(MB)
            hb = yield from reg_mr(b, da, MB)
            sv = victim.space.alloc(MB)
            hv = yield from reg_mr(victim, sv, MB)
            sy = bystander.space.alloc(MB)
            hy = yield from reg_mr(bystander, sy, MB)
            t1 = yield from rdma_write(victim, lkey=hv.lkey, src_addr=sv,
                                       rkey=hb.rkey, dst_addr=da,
                                       size=256 * 1024, copy=False)
            t2 = yield from rdma_write(bystander, lkey=hy.lkey, src_addr=sy,
                                       rkey=hb.rkey, dst_addr=da,
                                       size=256 * 1024, copy=False)
            assert eng.active_count == 2
            assert cl.fabric.abort_flows(victim) == 1
            results["d1"] = yield t1.completed
            results["d2"] = yield t2.completed

        run_procs(cl, [prog(cl.sim)])
        assert results["d1"].status == "error"
        assert results["d2"].status == "ok"
        # Aborting the victim is idempotent: nothing is left to abort.
        assert cl.fabric.abort_flows(victim) == 0
