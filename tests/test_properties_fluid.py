"""Property-based tests (hypothesis) on the fluid-flow hybrid engine.

Three families of invariants (docs/PERFORMANCE.md):

* the max-min rate solver (``repro.sim.flows.fair_shares``) never
  oversubscribes an endpoint, never hands out negative or
  above-cap rates, and always leaves every unfrozen flow with a
  saturated bottleneck (the water-filling fixed point);
* flow completion times through the fabric are monotone in message
  size;
* fluid results are a pure function of the workload *set*: the same
  transfers give bit-identical finish times regardless of posting
  order, and re-running the same seed reproduces them exactly.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster, ClusterSpec
from repro.sim.flows import fair_shares

# ---------------------------------------------------------------------------
# fair_shares: conservation + max-min fixed point
# ---------------------------------------------------------------------------

flow_sets = st.lists(
    st.tuples(
        st.integers(0, 5),                                 # tx endpoint
        st.integers(6, 11),                                # rx endpoint
        st.floats(0.05, 1.0, allow_nan=False),             # per-flow cap
    ),
    min_size=1,
    max_size=40,
)

_EPS = 1e-9


@settings(max_examples=200, deadline=None)
@given(flows=flow_sets)
def test_fair_shares_conserves_link_capacity(flows):
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    shares = fair_shares(tx, rx, caps, 12)

    assert shares.shape == caps.shape
    # no negative or above-cap rates
    assert np.all(shares >= 0.0)
    assert np.all(shares <= caps + _EPS)
    # conservation: every endpoint's shares sum to at most its capacity
    for ep in range(12):
        load = shares[(tx == ep) | (rx == ep)].sum()
        assert load <= 1.0 + _EPS, f"endpoint {ep} oversubscribed: {load}"


@settings(max_examples=200, deadline=None)
@given(flows=flow_sets)
def test_fair_shares_is_maxmin_fixed_point(flows):
    """No flow can be raised without breaking a constraint: each flow is
    either at its own cap or crosses a saturated endpoint."""
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    shares = fair_shares(tx, rx, caps, 12)

    load = np.zeros(12)
    np.add.at(load, tx, shares)
    np.add.at(load, rx, shares)
    for i in range(len(flows)):
        at_cap = shares[i] >= caps[i] - _EPS
        tx_sat = load[tx[i]] >= 1.0 - _EPS
        rx_sat = load[rx[i]] >= 1.0 - _EPS
        assert at_cap or tx_sat or rx_sat, (
            f"flow {i} (share {shares[i]}, cap {caps[i]}) could be raised: "
            f"tx load {load[tx[i]]}, rx load {load[rx[i]]}"
        )


@settings(max_examples=100, deadline=None)
@given(
    flows=flow_sets,
    seed=st.integers(0, 2**31 - 1),
)
def test_fair_shares_order_invariant(flows, seed):
    """Rates depend on the flow *set*, not the array order."""
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    base = fair_shares(tx, rx, caps, 12)

    perm = np.arange(len(flows))
    random.Random(seed).shuffle(perm)
    shuffled = fair_shares(tx[perm], rx[perm], caps[perm], 12)
    np.testing.assert_allclose(shuffled, base[perm], rtol=1e-12, atol=1e-15)


# ---------------------------------------------------------------------------
# fabric-level: monotonicity + determinism
# ---------------------------------------------------------------------------

def _finish_times(transfers, threshold=64 * 1024):
    """Completion time of each (src, dst, size) transfer, all posted at
    t=0 on a 4-node fluid cluster; returned in posting order."""
    cl = Cluster(ClusterSpec(nodes=4, ppn=1, proxies_per_dpu=1, fluid=True,
                             fluid_threshold=threshold))
    done = [None] * len(transfers)

    def prog():
        pending = []
        for i, (src, dst, size) in enumerate(transfers):
            t = cl.fabric.transfer(src_node=src, dst_node=dst, size=size,
                                   initiator="host")
            t.completed.callbacks.append(
                lambda _ev, i=i: done.__setitem__(i, cl.sim.now))
            pending.append(t.completed)
        yield cl.sim.all_of(pending)

    cl.sim.process(prog())
    cl.sim.run()
    assert all(t is not None for t in done)
    return done


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(64 * 1024, 4 << 20), min_size=2, max_size=6,
                   unique=True),
)
def test_completion_time_monotone_in_bytes(sizes):
    """Solo flows: more bytes never finish sooner."""
    times = {s: _finish_times([(0, 1, s)])[0] for s in sizes}
    ordered = sorted(sizes)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert times[smaller] < times[larger], (
            f"{smaller}B finished at {times[smaller]}, "
            f"{larger}B at {times[larger]}"
        )


transfer_sets = st.lists(
    st.tuples(
        st.integers(0, 3),                                 # src node
        st.integers(0, 3),                                 # dst node
        st.integers(64 * 1024, 2 << 20),                   # size
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(transfers=transfer_sets, seed=st.integers(0, 2**31 - 1))
def test_fluid_deterministic_under_permutation(transfers, seed):
    """The multiset of (transfer, finish time) pairs is identical no
    matter the posting order, and identical on a re-run."""
    base = _finish_times(transfers)
    # re-run: exact reproduction
    assert _finish_times(transfers) == base

    order = list(range(len(transfers)))
    random.Random(seed).shuffle(order)
    permuted = _finish_times([transfers[i] for i in order])
    got = sorted(zip((transfers[i] for i in order), permuted))
    want = sorted(zip(transfers, base))
    assert got == want
