"""Property-based tests (hypothesis) on the fluid-flow hybrid engine.

Three families of invariants (docs/PERFORMANCE.md):

* the max-min rate solver (``repro.sim.flows.fair_shares``) never
  oversubscribes an endpoint, never hands out negative or
  above-cap rates, and always leaves every unfrozen flow with a
  saturated bottleneck (the water-filling fixed point);
* flow completion times through the fabric are monotone in message
  size;
* fluid results are a pure function of the workload *set*: the same
  transfers give bit-identical finish times regardless of posting
  order, and re-running the same seed reproduces them exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster, ClusterSpec
from repro.sim.flows import fair_shares

# ---------------------------------------------------------------------------
# fair_shares: conservation + max-min fixed point
# ---------------------------------------------------------------------------

flow_sets = st.lists(
    st.tuples(
        st.integers(0, 5),                                 # tx endpoint
        st.integers(6, 11),                                # rx endpoint
        st.floats(0.05, 1.0, allow_nan=False),             # per-flow cap
    ),
    min_size=1,
    max_size=40,
)

_EPS = 1e-9


@settings(max_examples=200, deadline=None)
@given(flows=flow_sets)
def test_fair_shares_conserves_link_capacity(flows):
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    shares = fair_shares(tx, rx, caps, 12)

    assert shares.shape == caps.shape
    # no negative or above-cap rates
    assert np.all(shares >= 0.0)
    assert np.all(shares <= caps + _EPS)
    # conservation: every endpoint's shares sum to at most its capacity
    for ep in range(12):
        load = shares[(tx == ep) | (rx == ep)].sum()
        assert load <= 1.0 + _EPS, f"endpoint {ep} oversubscribed: {load}"


@settings(max_examples=200, deadline=None)
@given(flows=flow_sets)
def test_fair_shares_is_maxmin_fixed_point(flows):
    """No flow can be raised without breaking a constraint: each flow is
    either at its own cap or crosses a saturated endpoint."""
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    shares = fair_shares(tx, rx, caps, 12)

    load = np.zeros(12)
    np.add.at(load, tx, shares)
    np.add.at(load, rx, shares)
    for i in range(len(flows)):
        at_cap = shares[i] >= caps[i] - _EPS
        tx_sat = load[tx[i]] >= 1.0 - _EPS
        rx_sat = load[rx[i]] >= 1.0 - _EPS
        assert at_cap or tx_sat or rx_sat, (
            f"flow {i} (share {shares[i]}, cap {caps[i]}) could be raised: "
            f"tx load {load[tx[i]]}, rx load {load[rx[i]]}"
        )


@settings(max_examples=100, deadline=None)
@given(
    flows=flow_sets,
    seed=st.integers(0, 2**31 - 1),
)
def test_fair_shares_order_invariant(flows, seed):
    """Rates depend on the flow *set*, not the array order."""
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    base = fair_shares(tx, rx, caps, 12)

    perm = np.arange(len(flows))
    random.Random(seed).shuffle(perm)
    shuffled = fair_shares(tx[perm], rx[perm], caps[perm], 12)
    np.testing.assert_allclose(shuffled, base[perm], rtol=1e-12, atol=1e-15)


# ---------------------------------------------------------------------------
# fabric-level: monotonicity + determinism
# ---------------------------------------------------------------------------

def _finish_times(transfers, threshold=64 * 1024):
    """Completion time of each (src, dst, size) transfer, all posted at
    t=0 on a 4-node fluid cluster; returned in posting order."""
    cl = Cluster(ClusterSpec(nodes=4, ppn=1, proxies_per_dpu=1, fluid=True,
                             fluid_threshold=threshold))
    done = [None] * len(transfers)

    def prog():
        pending = []
        for i, (src, dst, size) in enumerate(transfers):
            t = cl.fabric.transfer(src_node=src, dst_node=dst, size=size,
                                   initiator="host")
            t.completed.callbacks.append(
                lambda _ev, i=i: done.__setitem__(i, cl.sim.now))
            pending.append(t.completed)
        yield cl.sim.all_of(pending)

    cl.sim.process(prog())
    cl.sim.run()
    assert all(t is not None for t in done)
    return done


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(64 * 1024, 4 << 20), min_size=2, max_size=6,
                   unique=True),
)
def test_completion_time_monotone_in_bytes(sizes):
    """Solo flows: more bytes never finish sooner."""
    times = {s: _finish_times([(0, 1, s)])[0] for s in sizes}
    ordered = sorted(sizes)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert times[smaller] < times[larger], (
            f"{smaller}B finished at {times[smaller]}, "
            f"{larger}B at {times[larger]}"
        )


transfer_sets = st.lists(
    st.tuples(
        st.integers(0, 3),                                 # src node
        st.integers(0, 3),                                 # dst node
        st.integers(64 * 1024, 2 << 20),                   # size
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(transfers=transfer_sets, seed=st.integers(0, 2**31 - 1))
def test_fluid_deterministic_under_permutation(transfers, seed):
    """The multiset of (transfer, finish time) pairs is identical no
    matter the posting order, and identical on a re-run."""
    base = _finish_times(transfers)
    # re-run: exact reproduction
    assert _finish_times(transfers) == base

    order = list(range(len(transfers)))
    random.Random(seed).shuffle(order)
    permuted = _finish_times([transfers[i] for i in order])
    got = sorted(zip((transfers[i] for i in order), permuted))
    want = sorted(zip(transfers, base))
    assert got == want


# ---------------------------------------------------------------------------
# degraded endpoints: conservation under per-endpoint capacities
# ---------------------------------------------------------------------------

endpoint_cap_sets = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=12, max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(flows=flow_sets, ep_caps=endpoint_cap_sets)
def test_fair_shares_conserves_degraded_capacity(flows, ep_caps):
    """With per-endpoint capacities no endpoint exceeds *its own* cap,
    and flows crossing a flapped (zero-capacity) endpoint get rate 0."""
    tx = np.array([f[0] for f in flows], dtype=np.int64)
    rx = np.array([f[1] for f in flows], dtype=np.int64)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    ep = np.array(ep_caps, dtype=np.float64)
    shares = fair_shares(tx, rx, caps, 12, endpoint_caps=ep)

    assert np.all(shares >= 0.0)
    assert np.all(shares <= caps + _EPS)
    for e in range(12):
        load = shares[(tx == e) | (rx == e)].sum()
        assert load <= ep[e] + _EPS, (
            f"endpoint {e} (cap {ep[e]}) oversubscribed: {load}")
    flapped = (ep[tx] <= 0.0) | (ep[rx] <= 0.0)
    assert np.all(shares[flapped] <= _EPS)


def test_fair_shares_all_idle_endpoints():
    """Endpoints with no crossing flows stay untouched; an empty flow
    set yields an empty share vector whatever the capacities."""
    assert fair_shares([], [], [], 5).shape == (0,)
    assert fair_shares([], [], [], 5, endpoint_caps=np.zeros(5)).shape == (0,)
    # One flow on endpoints 0/1; endpoints 2..4 idle (degraded or not).
    shares = fair_shares([0], [1], [1.0], 5,
                         endpoint_caps=[1.0, 1.0, 0.0, 0.3, 0.0])
    assert shares[0] == 1.0


# ---------------------------------------------------------------------------
# engine edge cases: admission guards, churn, capacity edges
# ---------------------------------------------------------------------------

def _engine():
    from repro.sim import FlowEngine, Simulator

    sim = Simulator()
    return sim, FlowEngine(sim)


def test_zero_work_flow_rejected():
    sim, eng = _engine()
    for bad in (0.0, -1.0):
        try:
            eng.add_flow(tx="a", rx="b", work=bad, finish=lambda f, t: None)
        except ValueError:
            pass
        else:
            raise AssertionError(f"work={bad} was admitted")
    # A fully drained flow has no residue to requeue either.
    drained = []
    f = eng.add_flow(tx="a", rx="b", work=1.0,
                     finish=lambda fl, t: drained.append(fl))
    sim.run()
    assert drained == [f] and f.remaining == 0.0
    try:
        eng.requeue(f)
    except ValueError:
        pass
    else:
        raise AssertionError("drained flow was requeued")


def test_cap_change_mid_drain_stretches_completion():
    """Halving an endpoint's capacity halfway through doubles the rest:
    1s of work at rate 1 for 0.5s, then rate 0.5 -> drains at t=1.5."""
    sim, eng = _engine()
    done = []
    eng.add_flow(tx="a", rx="b", work=1.0,
                 finish=lambda f, t: done.append(t))
    ev = sim.event()
    ev._ok = True
    ev._value = None
    ev.callbacks.append(
        lambda _ev: eng.set_endpoint_capacity(("a"), 0.5))
    sim.schedule_at(ev, 0.5)
    sim.run()
    assert done == [1.5]


def test_restore_mid_drain_speeds_completion():
    sim, eng = _engine()
    done = []
    eng.set_endpoint_capacity("a", 0.5)
    eng.add_flow(tx="a", rx="b", work=1.0,
                 finish=lambda f, t: done.append(t))
    ev = sim.event()
    ev._ok = True
    ev._value = None
    ev.callbacks.append(lambda _ev: eng.set_endpoint_capacity("a", 1.0))
    sim.schedule_at(ev, 1.0)
    sim.run()
    # 0.5 port-s done by t=1 at rate 0.5, the rest at rate 1.
    assert done == [1.5]


def test_flow_set_churn_in_one_instant():
    """Cancel + requeue + admit inside a single simulated instant
    batches into one coherent recompute (no lost or double work)."""
    sim, eng = _engine()
    finished = {}

    def fin(name):
        return lambda f, t: finished.setdefault(name, t)

    f1 = eng.add_flow(tx="a", rx="b", work=1.0, finish=fin("f1"))
    eng.add_flow(tx="a", rx="b", work=1.0, finish=fin("f2"))

    def churn(_ev):
        rem = eng.cancel_flow(f1)          # settled at t=0.5: 0.25 done
        assert rem is not None and abs(rem - 0.75) < 1e-9
        eng.requeue(f1, finish=fin("f1b"))  # back in the same instant
        eng.add_flow(tx="a", rx="b", work=0.5, finish=fin("f3"))

    ev = sim.event()
    ev._ok = True
    ev._value = None
    ev.callbacks.append(churn)
    sim.schedule_at(ev, 0.5)
    sim.run()
    assert "f1" not in finished  # the cancelled flow's finish never fired
    assert set(finished) == {"f1b", "f2", "f3"}
    # Total work 0.75 + 0.75 + 0.5 = 2.0 port-s from t=0.5 on a unit
    # endpoint: everything must have drained by exactly t=2.5.
    assert max(finished.values()) == pytest.approx(2.5)
    assert eng.active_count == 0


def test_cancel_pending_flow_same_instant():
    sim, eng = _engine()
    fired = []
    f = eng.add_flow(tx="a", rx="b", work=1.0,
                     finish=lambda fl, t: fired.append(t))
    assert eng.cancel_flow(f) == 1.0  # cancelled before the batch kick
    sim.run()
    assert not fired and eng.active_count == 0
    assert eng.flows_cancelled == 1


def test_cancel_after_drain_returns_none():
    sim, eng = _engine()
    f = eng.add_flow(tx="a", rx="b", work=1.0, finish=lambda fl, t: None)
    sim.run()
    assert eng.cancel_flow(f) is None


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(0.1, 4.0, allow_nan=False), min_size=2,
                   max_size=8),
    cancel_at=st.floats(0.05, 0.5, allow_nan=False),
    cancel_idx=st.integers(0, 7),
)
def test_cancel_requeue_conserves_work(works, cancel_at, cancel_idx):
    """Cancelling any flow mid-drain and immediately requeueing it
    leaves total delivered work -- and thus the final drain time --
    identical to never cancelling at all."""
    cancel_idx %= len(works)

    def run(interfere):
        sim, eng = _engine()
        done = {}
        flows = [
            eng.add_flow(tx="x", rx=f"r{i}", work=w,
                         finish=lambda f, t, i=i: done.setdefault(i, t))
            for i, w in enumerate(works)
        ]
        if interfere:
            def poke(_ev):
                victim = flows[cancel_idx]
                if eng.cancel_flow(victim) is not None:
                    eng.requeue(
                        victim,
                        finish=lambda f, t: done.setdefault(cancel_idx, t))

            ev = sim.event()
            ev._ok = True
            ev._value = None
            ev.callbacks.append(poke)
            sim.schedule_at(ev, cancel_at)
        sim.run()
        assert len(done) == len(works)
        return max(done.values())

    base = run(False)
    assert run(True) == pytest.approx(base, rel=1e-9)
