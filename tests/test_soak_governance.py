"""Seeded soak: thousands of randomized cycles under memory pressure.

Each soak drives alloc / register / offload / verify / free loops with
tight budgets, small cache capacities, address recycling, injected
fabric faults, and periodic free-while-in-flight races -- then asserts
the governed steady state: zero leaked keys, allocation counters back
at their baselines, byte-exact payloads throughout, and (for the
observed run) a clean trace-invariant sweep.

Everything draws from seeded streams, so these are deterministic
regression tests, not fuzzers.  The cycle counts are sized to keep the
whole module in tens of seconds; the CI soak job runs exactly this.
"""

import random

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import (
    Cluster,
    ClusterSpec,
    FaultPlan,
    FaultSpec,
    MachineParams,
    RetryPolicy,
)
from repro.obs import observe_cluster
from repro.offload import OffloadFramework
from repro.verbs.rdma import verbs_state

RETRY = RetryPolicy(timeout=500e-6)

#: (cycles, race_every): ISSUE.md's acceptance floor is >= 2000 cycles
#: total across the soaks.
STAGED_CYCLES = 1000
GVMI_CYCLES = 1000


def _cycle_plan(cycles, seed, race_every=None):
    """Deterministic per-cycle schedule shared by both endpoints."""
    rng = random.Random(seed)
    plan = []
    for i in range(cycles):
        size = rng.randrange(256, 16384, 256)
        race = race_every is not None and i % race_every == race_every - 1
        plan.append((size, race))
    return plan


def _soak(cl, fw, plan, verify_quiescent=True):
    """Run the schedule: rank 0 sends, rank 1 receives, both free."""
    sim = cl.sim

    def sender(sim):
        ep = fw.endpoint(0)
        for i, (size, race) in enumerate(plan):
            if race:
                # Post, then free + recycle + rewrite while in flight:
                # the proxy must fault on the revoked key and recover
                # with the new incarnation's bytes.
                addr = ep.ctx.space.alloc_like(pattern(size, seed=i))
                req = yield from ep.send_offload(addr, size, dst=1, tag=i)
                ep.ctx.free(addr)
                addr = ep.ctx.space.alloc_like(pattern(size, seed=i + 100_000))
                yield from ep.wait(req)
            else:
                addr = ep.ctx.space.alloc_like(pattern(size, seed=i))
                req = yield from ep.send_offload(addr, size, dst=1, tag=i)
                yield from ep.wait(req)
            ep.ctx.free(addr)

    def receiver(sim):
        ep = fw.endpoint(1)
        for i, (size, race) in enumerate(plan):
            want_seed = i + 100_000 if race else i
            if race:
                # Give the sender's free a head start so the stale path
                # actually triggers (same schedule, same decision).
                yield sim.timeout(100e-6)
            addr = ep.ctx.space.alloc(size)
            req = yield from ep.recv_offload(addr, size, src=0, tag=i)
            yield from ep.wait(req)
            got = ep.ctx.space.read(addr, size)
            assert (got == pattern(size, seed=want_seed)).all(), (
                f"cycle {i}: payload corrupted")
            ep.ctx.free(addr)

    run_procs(cl, [sender(sim), receiver(sim)])
    if verify_quiescent:
        fw.assert_quiescent()


def _assert_no_leaks(cl, baselines):
    keys = verbs_state(cl).keys
    for rank in range(cl.world_size):
        ctx = cl.rank_ctx(rank)
        live = keys.live_owned_by(ctx)
        assert not live, f"rank {rank} leaked {len(live)} key(s): {live[:4]}"
        assert ctx.space.allocated_bytes == baselines[rank], (
            f"rank {rank} leaked "
            f"{ctx.space.allocated_bytes - baselines[rank]} bytes")


def _baselines(cl):
    return {r: cl.rank_ctx(r).space.allocated_bytes
            for r in range(cl.world_size)}


class TestSoak:
    def test_staged_soak_under_dpu_pressure_and_faults(self):
        """Staged mode: tiny DPU budget + chaos fabric, 1000 cycles."""
        params = MachineParams().with_overrides(
            reuse_freed_addresses=True,
            dpu_mem_budget=256 * 1024,
        )
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1,
                                 params=params))
        cl.install_faults(FaultPlan(FaultSpec(drop_prob=0.02), seed=11))
        fw = OffloadFramework(cl, mode="staged", retry=RETRY)
        base = _baselines(cl)
        _soak(cl, fw, _cycle_plan(STAGED_CYCLES, seed=1, race_every=97))
        _assert_no_leaks(cl, base)
        # The proxy stayed inside its budget the whole time (peak is a
        # high-water mark, so this covers every instant of the run).
        proxy = cl.proxy_for_rank(0)
        assert proxy.space.peak_bytes <= 256 * 1024
        assert cl.metrics.get("proxy.stale_keys") >= 1
        assert cl.metrics.get("offload.stale_reposts") >= 1

    def test_gvmi_soak_with_bounded_caches_observed(self):
        """GVMI mode: 4-entry caches, recycling, full trace invariants."""
        params = MachineParams().with_overrides(
            reuse_freed_addresses=True,
            gvmi_cache_capacity=4,
            ib_cache_capacity=4,
        )
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1,
                                 params=params))
        obs = observe_cluster(cl)
        fw = OffloadFramework(cl, retry=RETRY)
        base = _baselines(cl)
        plan = _cycle_plan(GVMI_CYCLES, seed=2, race_every=131)
        # A persistent working set of 6 registered buffers > the 4-entry
        # caches, so hits, misses, and LRU evictions all churn for the
        # whole run (per-cycle frees would just invalidate instead).
        size = 8192
        n_bufs = 6
        sim = cl.sim

        def sender(sim):
            ep = fw.endpoint(0)
            bufs = [ep.ctx.space.alloc(size) for _ in range(n_bufs)]
            for i, (_, race) in enumerate(plan):
                addr = bufs[i % n_bufs]
                if race:
                    # Recycle one working-set slot while a send on it is
                    # in flight: revoke, re-register, recover.
                    ep.ctx.space.write(addr, pattern(size, seed=i))
                    req = yield from ep.send_offload(addr, size, dst=1,
                                                     tag=i)
                    ep.ctx.free(addr)
                    addr = ep.ctx.space.alloc_like(
                        pattern(size, seed=i + 100_000))
                    bufs[i % n_bufs] = addr
                    yield from ep.wait(req)
                else:
                    ep.ctx.space.write(addr, pattern(size, seed=i))
                    req = yield from ep.send_offload(addr, size, dst=1,
                                                     tag=i)
                    yield from ep.wait(req)
            for addr in bufs:
                ep.ctx.free(addr)

        def receiver(sim):
            ep = fw.endpoint(1)
            bufs = [ep.ctx.space.alloc(size) for _ in range(n_bufs)]
            for i, (_, race) in enumerate(plan):
                want_seed = i + 100_000 if race else i
                if race:
                    yield sim.timeout(100e-6)
                addr = bufs[i % n_bufs]
                req = yield from ep.recv_offload(addr, size, src=0, tag=i)
                yield from ep.wait(req)
                got = ep.ctx.space.read(addr, size)
                assert (got == pattern(size, seed=want_seed)).all(), (
                    f"cycle {i}: payload corrupted")
            for addr in bufs:
                ep.ctx.free(addr)

        run_procs(cl, [sender(sim), receiver(sim)])
        fw.assert_quiescent()
        _assert_no_leaks(cl, base)
        # Eviction churned (working set > capacity) but never corrupted.
        assert cl.metrics.get("gvmi_cache.host.evict") >= 1
        assert cl.metrics.get("proxy.stale_keys") >= 1
        # Trace sweep: ordering, balance, and no use-after-revoke.
        obs.check()

    def test_staged_oom_degrades_to_host_fallback(self):
        """A budget too small for the transfer: proxy NACKs, the host
        falls back to its own rendezvous path, bytes still arrive."""
        params = MachineParams().with_overrides(dpu_mem_budget=16 * 1024)
        cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1,
                                 params=params))
        fw = OffloadFramework(cl, mode="staged",
                              retry=RetryPolicy(timeout=500e-6,
                                                fallback_after=2e-3))
        size = 64 * 1024  # 4x the whole DPU budget
        data = pattern(size, seed=9)
        got = {}

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(addr, size, dst=1, tag=0)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(size)
            req = yield from ep.recv_offload(addr, size, src=0, tag=0)
            yield from ep.wait(req)
            got["data"] = ep.ctx.space.read(addr, size)

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
        assert (got["data"] == data).all()
        assert cl.metrics.get("proxy.oom_degrades") >= 1
        assert cl.metrics.get("offload.oom_fallbacks") >= 1

    def test_soak_covers_acceptance_floor(self):
        """The two soaks together must clear ISSUE.md's 2000 cycles."""
        assert STAGED_CYCLES + GVMI_CYCLES >= 2000


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
