"""Unit tests for named random streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_deterministic_across_registries():
    a = RngRegistry(7).stream("workload").standard_normal(8)
    b = RngRegistry(7).stream("workload").standard_normal(8)
    assert np.allclose(a, b)


def test_streams_are_independent():
    reg = RngRegistry(7)
    a = reg.stream("a").standard_normal(64)
    b = reg.stream("b").standard_normal(64)
    assert not np.allclose(a, b)


def test_root_seed_changes_draws():
    a = RngRegistry(1).stream("x").standard_normal(16)
    b = RngRegistry(2).stream("x").standard_normal(16)
    assert not np.allclose(a, b)


def test_reset_rederives_from_root():
    reg = RngRegistry(3)
    first = reg.stream("s").standard_normal(4)
    reg.reset()
    again = reg.stream("s").standard_normal(4)
    assert np.allclose(first, again)


def test_consumer_order_does_not_perturb_other_streams():
    r1 = RngRegistry(5)
    _ = r1.stream("early").standard_normal(100)
    late1 = r1.stream("late").standard_normal(8)

    r2 = RngRegistry(5)
    late2 = r2.stream("late").standard_normal(8)
    assert np.allclose(late1, late2)
