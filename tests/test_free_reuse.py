"""Free-then-reuse regression tests: the stale-mkey epoch protocol.

The seed bug: ``AddressSpace.free`` dropped the buffer but left every
covering KeyTable entry live, so an RDMA through a key registered over
freed (and possibly recycled) memory silently moved garbage.  Now free
revokes covering keys; a stale WQE faults with ProtectionError at post
time, and resilient runs recover by re-registering the buffer's current
incarnation and re-posting (docs/RESOURCES.md).
"""

import pytest

from tests.helpers import pattern, run_proc, run_procs
from repro.hw import Cluster, ClusterSpec, MachineParams, RetryPolicy
from repro.offload import OffloadError, OffloadFramework
from repro.verbs import rdma_write, reg_mr
from repro.verbs.mr import ProtectionError
from repro.verbs.rdma import verbs_state


def _cluster(**overrides) -> Cluster:
    params = MachineParams().with_overrides(reuse_freed_addresses=True,
                                            **overrides)
    return Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1,
                               params=params))


RETRY = RetryPolicy(timeout=500e-6)


# ---------------------------------------------------------------------------
# the direct regression: stale keys must fault, not move bytes
# ---------------------------------------------------------------------------

class TestStaleKeyFaults:
    def test_rdma_through_freed_registration_faults(self):
        cl = _cluster()
        src, dst = cl.rank_ctx(0), cl.rank_ctx(1)
        size = 4096
        sa = src.space.alloc_like(pattern(size))
        da = dst.space.alloc(size)

        def prog(sim):
            hs = yield from reg_mr(src, sa, size)
            hd = yield from reg_mr(dst, da, size)
            return hs, hd

        hs, hd = run_proc(cl, prog(cl.sim))
        src.free(sa)

        def write(sim):
            yield from rdma_write(src, lkey=hs.lkey, src_addr=sa,
                                  rkey=hd.rkey, dst_addr=da, size=size)

        with pytest.raises(ProtectionError, match="revoked"):
            run_proc(cl, write(cl.sim))

    def test_recycled_address_not_reachable_through_old_key(self):
        """free + same-size alloc hands back the same address; the old
        key must not grant access to the new incarnation."""
        cl = _cluster()
        src, dst = cl.rank_ctx(0), cl.rank_ctx(1)
        size = 4096
        old_data = pattern(size, seed=1)
        new_data = pattern(size, seed=2)
        sa = src.space.alloc_like(old_data)
        da = dst.space.alloc(size)

        def prog(sim):
            hs = yield from reg_mr(src, sa, size)
            hd = yield from reg_mr(dst, da, size)
            return hs, hd

        hs, hd = run_proc(cl, prog(cl.sim))
        src.free(sa)
        sa2 = src.space.alloc_like(new_data)
        assert sa2 == sa  # recycled

        def stale_write(sim):
            yield from rdma_write(src, lkey=hs.lkey, src_addr=sa2,
                                  rkey=hd.rkey, dst_addr=da, size=size)

        with pytest.raises(ProtectionError):
            run_proc(cl, stale_write(cl.sim))
        assert (dst.space.read(da, size) == 0).all()  # nothing leaked through

        def fresh_write(sim):
            hs2 = yield from reg_mr(src, sa2, size)
            t = yield from rdma_write(src, lkey=hs2.lkey, src_addr=sa2,
                                      rkey=hd.rkey, dst_addr=da, size=size)
            yield t.completed

        run_proc(cl, fresh_write(cl.sim))
        assert (dst.space.read(da, size) == new_data).all()


# ---------------------------------------------------------------------------
# offload-path recovery: free racing an in-flight basic pair
# ---------------------------------------------------------------------------

def _free_race_exchange(cl, fw, size=8192):
    """Sender posts, then frees + recycles + rewrites before the proxy
    moves bytes; returns what the receiver observed."""
    new_data = pattern(size, seed=22)
    got = {}

    def sender(sim):
        ep = fw.endpoint(0)
        addr = ep.ctx.space.alloc_like(pattern(size, seed=21))
        req = yield from ep.send_offload(addr, size, dst=1, tag=9)
        # The race: the buffer dies (and is recycled with fresh bytes)
        # while the RTS is still in flight.
        ep.ctx.free(addr)
        addr2 = ep.ctx.space.alloc_like(new_data)
        assert addr2 == addr
        yield from ep.wait(req)

    def receiver(sim):
        ep = fw.endpoint(1)
        yield sim.timeout(100e-6)
        addr = ep.ctx.space.alloc(size)
        req = yield from ep.recv_offload(addr, size, src=0, tag=9)
        yield from ep.wait(req)
        got["data"] = ep.ctx.space.read(addr, size)

    run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
    return new_data, got["data"]


class TestBasicPairRecovery:
    def test_gvmi_free_then_reuse_recovers(self):
        cl = _cluster()
        fw = OffloadFramework(cl, retry=RETRY)
        want, got = _free_race_exchange(cl, fw)
        assert (got == want).all()
        m = cl.metrics
        assert m.get("proxy.stale_keys") >= 1
        assert m.get("proxy.stale_nacks") >= 1
        assert m.get("offload.stale_reposts") >= 1
        fw.assert_quiescent()

    def test_staged_free_then_reuse_recovers(self):
        cl = _cluster()
        fw = OffloadFramework(cl, mode="staged", retry=RETRY)
        want, got = _free_race_exchange(cl, fw)
        assert (got == want).all()
        assert cl.metrics.get("proxy.stale_keys") >= 1
        assert cl.metrics.get("offload.stale_reposts") >= 1

    def test_receiver_side_free_recovers(self):
        cl = _cluster()
        fw = OffloadFramework(cl, retry=RETRY)
        size = 4096
        data = pattern(size, seed=31)
        got = {}

        def sender(sim):
            ep = fw.endpoint(0)
            yield sim.timeout(100e-6)
            addr = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(addr, size, dst=1, tag=4)
            yield from ep.wait(req)

        def receiver(sim):
            ep = fw.endpoint(1)
            addr = ep.ctx.space.alloc(size)
            req = yield from ep.recv_offload(addr, size, src=0, tag=4)
            # Kill the posted landing zone, then recycle it.
            ep.ctx.free(addr)
            addr2 = ep.ctx.space.alloc(size)
            assert addr2 == addr
            yield from ep.wait(req)
            got["data"] = ep.ctx.space.read(addr2, size)

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
        assert (got["data"] == data).all()
        assert cl.metrics.get("proxy.stale_keys") >= 1
        assert cl.metrics.get("offload.stale_reposts") >= 1

    def test_non_resilient_fails_loudly(self):
        """Without recovery armed the race is an error, never silent
        corruption."""
        cl = _cluster()
        fw = OffloadFramework(cl)  # no retry policy: not resilient
        with pytest.raises((OffloadError, ProtectionError)):
            _free_race_exchange(cl, fw)

    def test_no_leaked_keys_after_recovery(self):
        cl = _cluster()
        fw = OffloadFramework(cl, retry=RETRY)
        _free_race_exchange(cl, fw)
        keys = verbs_state(cl).keys
        host0 = cl.rank_ctx(0)
        for info in keys.live_owned_by(host0):
            assert host0.space.contains(info.addr, info.size)


# ---------------------------------------------------------------------------
# group plans: a cached plan faulting on freed memory is rebuilt
# ---------------------------------------------------------------------------

class TestGroupPlanRecovery:
    def test_cached_plan_rebuilds_after_free(self):
        cl = _cluster()
        fw = OffloadFramework(cl, retry=RETRY)
        size = 4096
        rounds = {}

        def make(rank, peer):
            def prog(sim):
                ep = fw.endpoint(rank)
                sbuf = ep.ctx.space.alloc_like(pattern(size, seed=50 + rank))
                rbuf = ep.ctx.space.alloc(size)
                greq = ep.group_start()
                ep.group_send(greq, sbuf, size, dst=peer, tag=7)
                ep.group_recv(greq, rbuf, size, src=peer, tag=7)
                ep.group_end(greq)
                # Round 1: build + cache.
                yield from ep.group_call(greq)
                yield from ep.group_wait(greq)
                # Round 2: rank 0 frees its send buffer with the
                # plan-ID-only call already in flight.
                yield from ep.group_call(greq)
                if rank == 0:
                    ep.ctx.free(sbuf)
                    sbuf2 = ep.ctx.space.alloc_like(pattern(size, seed=60))
                    assert sbuf2 == sbuf
                yield from ep.group_wait(greq)
                rounds[rank] = ep.ctx.space.read(rbuf, size)
                return True

            return prog

        run_procs(cl, [make(0, 1)(cl.sim), make(1, 0)(cl.sim)])
        # Rank 1 received rank 0's *recycled* payload via the rebuilt plan.
        assert (rounds[1] == pattern(size, seed=60)).all()
        assert (rounds[0] == pattern(size, seed=51)).all()
        m = cl.metrics
        assert m.get("proxy.stale_plans") >= 1
        assert m.get("offload.group_rebuilds") >= 1
