"""Parametrized protection-fault tests: every illegal key combination.

The paper's security story (Section V) leans on the HCA refusing
cross-process / cross-GVMI key misuse; these tests pin each refusal so
a refactor of the key checks cannot silently relax one.
"""

import pytest

from tests.helpers import run_proc
from repro.verbs import (
    ProtectionError,
    cross_register,
    dereg_mr,
    gvmi_id_of,
    host_gvmi_register,
    rdma_read,
    rdma_write,
    reg_mr,
)

SIZE = 256


def _setup(cluster):
    """Register every key species once; returns the menagerie."""
    src = cluster.rank_ctx(0)
    dst = cluster.rank_ctx(1)
    proxy = cluster.proxy_for_rank(0)
    box = {"src": src, "dst": dst, "proxy": proxy}

    def prog(sim):
        box["sa"] = src.space.alloc(SIZE)
        box["da"] = dst.space.alloc(SIZE)
        box["hs"] = yield from reg_mr(src, box["sa"], SIZE)
        box["hd"] = yield from reg_mr(dst, box["da"], SIZE)
        gid = gvmi_id_of(proxy)
        box["mkey"] = yield from host_gvmi_register(src, box["sa"], SIZE, gid)
        box["mk2"] = yield from cross_register(proxy, box["sa"], SIZE, gid,
                                               box["mkey"].key)

    run_proc(cluster, prog(cluster.sim))
    return box


#: (case id, initiator, local-key pick, remote-key pick, error pattern)
WRITE_CASES = [
    ("rkey-in-lkey-slot", "src", lambda b: b["hs"].rkey,
     lambda b: b["hd"].rkey, "needs an lkey or mkey2"),
    ("mkey-in-lkey-slot", "src", lambda b: b["mkey"].key,
     lambda b: b["hd"].rkey, "needs an lkey or mkey2"),
    ("foreign-lkey", "dst", lambda b: b["hs"].lkey,
     lambda b: b["hd"].rkey, "cannot use it"),
    ("mkey2-used-by-host", "src", lambda b: b["mk2"].key,
     lambda b: b["hd"].rkey, "not usable"),
    ("lkey-in-rkey-slot", "src", lambda b: b["hs"].lkey,
     lambda b: b["hd"].lkey, "needs an rkey"),
    ("mkey2-in-rkey-slot", "proxy", lambda b: b["mk2"].key,
     lambda b: b["mk2"].key, "needs an rkey"),
    ("stale-lkey", "src", lambda b: 0xDEAD,
     lambda b: b["hd"].rkey, "not registered"),
    ("stale-rkey", "src", lambda b: b["hs"].lkey,
     lambda b: 0xBEEF, "not registered"),
]


class TestWriteKeyCombos:
    @pytest.mark.parametrize(
        "who,pick_l,pick_r,match",
        [case[1:] for case in WRITE_CASES],
        ids=[case[0] for case in WRITE_CASES],
    )
    def test_illegal_combo_faults(self, tiny_cluster, who, pick_l, pick_r, match):
        box = _setup(tiny_cluster)

        def prog(sim):
            yield from rdma_write(
                box[who], lkey=pick_l(box), src_addr=box["sa"],
                rkey=pick_r(box), dst_addr=box["da"], size=SIZE)

        with pytest.raises(ProtectionError, match=match):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    @pytest.mark.parametrize("which", ["local", "remote"], ids=["lkey", "rkey"])
    def test_range_overflow_faults(self, tiny_cluster, which):
        box = _setup(tiny_cluster)

        def prog(sim):
            off = 1 if which == "local" else 0
            yield from rdma_write(
                box["src"], lkey=box["hs"].lkey, src_addr=box["sa"] + off,
                rkey=box["hd"].rkey,
                dst_addr=box["da"] + (1 - off), size=SIZE)

        with pytest.raises(ProtectionError, match="covers"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_revoked_key_faults(self, tiny_cluster):
        box = _setup(tiny_cluster)

        def prog(sim):
            dereg_mr(box["src"], box["hs"])
            yield from rdma_write(
                box["src"], lkey=box["hs"].lkey, src_addr=box["sa"],
                rkey=box["hd"].rkey, dst_addr=box["da"], size=SIZE)

        with pytest.raises(ProtectionError, match="not registered"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))


class TestReadKeyCombos:
    @pytest.mark.parametrize("case", [
        ("rkey-in-lkey-slot", "needs an lkey or mkey2"),
        ("lkey-in-rkey-slot", "needs an rkey"),
        ("foreign-lkey", "cannot use it"),
    ], ids=lambda c: c[0] if isinstance(c, tuple) else c)
    def test_illegal_combo_faults(self, tiny_cluster, case):
        name, match = case
        box = _setup(tiny_cluster)

        def prog(sim):
            if name == "rkey-in-lkey-slot":
                who, lk, rk = "dst", box["hd"].rkey, box["hs"].rkey
            elif name == "lkey-in-rkey-slot":
                who, lk, rk = "dst", box["hd"].lkey, box["hs"].lkey
            else:  # foreign-lkey
                who, lk, rk = "src", box["hd"].lkey, box["hs"].rkey
            yield from rdma_read(
                box[who], lkey=lk, local_addr=box["da" if who == "dst" else "sa"],
                rkey=rk, remote_addr=box["sa" if who == "dst" else "da"],
                size=SIZE)

        with pytest.raises(ProtectionError, match=match):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))


class TestMkey2Scope:
    def test_wrong_gvmi_proxy_cannot_use_mkey2(self, small_cluster):
        """The cross-registered key is scoped to one proxy's GVMI."""
        src = small_cluster.rank_ctx(0)
        dst = small_cluster.rank_ctx(2)
        proxy_a = small_cluster.proxy_ctx(0, 0)
        proxy_b = small_cluster.proxy_ctx(0, 1)
        sa = src.space.alloc(SIZE)
        da = dst.space.alloc(SIZE)

        def prog(sim):
            hd = yield from reg_mr(dst, da, SIZE)
            gid = gvmi_id_of(proxy_a)
            mkey = yield from host_gvmi_register(src, sa, SIZE, gid)
            mk2 = yield from cross_register(proxy_a, sa, SIZE, gid, mkey.key)
            yield from rdma_write(
                proxy_b, lkey=mk2.key, src_addr=sa, rkey=hd.rkey,
                dst_addr=da, size=SIZE)

        with pytest.raises(ProtectionError, match="not usable"):
            run_proc(small_cluster, prog(small_cluster.sim))

    def test_right_gvmi_proxy_succeeds(self, tiny_cluster):
        """Control case: the legal combination does move the bytes."""
        box = _setup(tiny_cluster)

        def prog(sim):
            t = yield from rdma_write(
                box["proxy"], lkey=box["mk2"].key, src_addr=box["sa"],
                rkey=box["hd"].rkey, dst_addr=box["da"], size=SIZE)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert (box["dst"].space.read(box["da"], SIZE)
                == box["src"].space.read(box["sa"], SIZE)).all()
