"""The ``python -m repro soak`` chaos-soak SLO harness.

Acceptance (docs/RESILIENCE.md): under an injected FaultPlan the soak
completes, checkpoints every iteration into the campaign journal, and
emits a schema-stamped SLO report whose recovery-latency histogram is
non-empty; rerunning against the same directory resumes from the
journal and reproduces the report byte-for-byte (modulo wall clock).
"""

import json

from repro.experiments import soak
from repro.experiments.campaign import Journal


def _run(tmp_path, *extra):
    out = tmp_path / "soak"
    rc = soak.main(["--iters", "3", "--out", str(out), *extra])
    report = json.loads((out / "SLO.json").read_text())
    return rc, out, report


def _strip_wall(report: dict) -> dict:
    report = dict(report)
    report.pop("wall_seconds", None)
    return report


class TestSoakHarness:
    def test_soak_emits_schema_stamped_slo_report(self, tmp_path):
        rc, out, report = _run(tmp_path)
        assert rc == 0
        assert report["schema"] == soak.SOAK_SCHEMA
        assert report["iterations"] == {
            "requested": 3, "completed": 3, "quarantined": 0}
        # The default fault plan injects control drops: recovery ran,
        # and its latency histogram has real percentiles.
        rl = report["slo"]["recovery_latency"]
        assert rl["count"] > 0
        assert 0 < rl["p50"] <= rl["p95"] <= rl["p99"]
        assert report["slo"]["req_latency"]["count"] > 0
        assert report["fault_stats"]["drops"] > 0
        assert report["counters"]["retransmits"] > 0
        assert report["slo"]["retries_per_point"] > 0

    def test_fault_free_soak_observes_no_recoveries(self, tmp_path):
        rc, out, report = _run(tmp_path, "--drop", "0", "--error-cqe", "0")
        assert rc == 0
        assert report["slo"]["recovery_latency"] == {"count": 0}
        assert report["fault_stats"]["drops"] == 0
        assert report["slo"]["req_latency"]["count"] > 0

    def test_rerun_resumes_from_journal_and_reproduces_report(self, tmp_path):
        rc1, out, first = _run(tmp_path)
        assert rc1 == 0
        j = Journal(out, label="soak")
        assert len(j.keys()) == 3  # one checkpoint per iteration

        rc2, _, second = _run(tmp_path)
        assert rc2 == 0
        assert _strip_wall(first) == _strip_wall(second)

    def test_partial_journal_runs_only_missing_iterations(self, tmp_path):
        rc1, out, _ = _run(tmp_path)
        assert rc1 == 0
        # Damage one checkpoint: the rerun must recompute exactly that
        # iteration and converge on the same report.
        j = Journal(out, label="soak")
        victim = j.keys()[0]
        (j.dir / f"{victim}.json").write_text("garbage")
        rc2, _, report = _run(tmp_path)
        assert rc2 == 0
        assert report["iterations"]["completed"] == 3
        assert Journal(out, label="soak").keys().count(victim) == 1

    def test_iterations_are_seed_deterministic(self, tmp_path):
        _, _, a = _run(tmp_path / "a")
        _, _, b = _run(tmp_path / "b")
        assert _strip_wall(a) == _strip_wall(b)
        _, _, c = _run(tmp_path / "c", "--seed", "99")
        assert _strip_wall(c) != _strip_wall(a)

    def test_config_echoed_into_report(self, tmp_path):
        _, _, report = _run(tmp_path, "--drop", "0.1", "--seed", "5")
        assert report["config"]["drop_prob"] == 0.1
        assert report["config"]["seed"] == 5
        assert report["config"]["scale"] == "quick"
        assert report["config"]["nodes"] == 2
        assert report["config"]["fluid"] is False


class TestSoakTopologyKnobs:
    def test_ring_scales_to_many_ranks(self, tmp_path):
        rc, _, report = _run(tmp_path, "--nodes", "4", "--ppn", "2")
        assert rc == 0
        assert report["iterations"]["completed"] == 3
        assert report["config"] == {**report["config"],
                                    "nodes": 4, "ppn": 2, "proxies": 1}
        # 8 ranks x 12 rounds x (send + recv) per iteration.
        assert report["counters"]["completions"] == 3 * 8 * 12 * 2
        assert report["slo"]["recovery_latency"]["count"] > 0

    def test_shape_extends_the_journal_key(self, tmp_path):
        """Different topologies never collide in one journal directory."""
        out = tmp_path / "soak"
        rc1 = soak.main(["--iters", "2", "--out", str(out)])
        rc2 = soak.main(["--iters", "2", "--out", str(out), "--nodes", "4"])
        assert rc1 == rc2 == 0
        j = Journal(out, label="soak")
        assert len(j.keys()) == 4  # two distinct shapes, two iters each

    def test_multi_proxy_topology(self, tmp_path):
        rc, _, report = _run(tmp_path, "--nodes", "2", "--ppn", "2",
                             "--proxies", "2")
        assert rc == 0
        assert report["iterations"]["completed"] == 3


class TestSoakFluidMode:
    def test_fluid_soak_rides_the_flow_engine(self, tmp_path):
        rc, _, report = _run(tmp_path, "--fluid", "--nodes", "4")
        assert rc == 0
        assert report["config"]["fluid"] is True
        assert report["config"]["flow_drop_prob"] > 0
        # Every exchange is at the pinned threshold: flows were real.
        assert report["counters"]["flows"] > 0
        assert report["counters"]["flow_cqes"] > 0
        # The flow fates bit and were recovered from.
        assert report["fault_stats"]["flow_drops"] > 0
        assert report["counters"]["flow_drops"] == \
            report["counters"]["flow_retries"]
        assert report["slo"]["recovery_latency"]["count"] > 0

    def test_fluid_soak_is_deterministic(self, tmp_path):
        _, _, a = _run(tmp_path / "a", "--fluid", "--nodes", "4")
        _, _, b = _run(tmp_path / "b", "--fluid", "--nodes", "4")
        assert _strip_wall(a) == _strip_wall(b)

    def test_fluid_and_exact_share_a_journal_without_collision(self, tmp_path):
        out = tmp_path / "soak"
        assert soak.main(["--iters", "2", "--out", str(out)]) == 0
        assert soak.main(["--iters", "2", "--out", str(out), "--fluid"]) == 0
        assert len(Journal(out, label="soak").keys()) == 4

    def test_flow_drop_zero_disables_flow_fates(self, tmp_path):
        rc, _, report = _run(tmp_path, "--fluid", "--flow-drop", "0")
        assert rc == 0
        assert report["fault_stats"]["flow_drops"] == 0
        assert report["counters"]["flows"] > 0
