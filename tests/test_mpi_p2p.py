"""Integration tests for point-to-point protocols: eager, rendezvous, shm."""

import pytest

from tests.helpers import pattern
from repro.hw import Cluster, ClusterSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, MpiWorld

EAGER = 1024            # well below the 16 KiB threshold
RNDV = 256 * 1024       # well above


def _pingpong(world, size, src_rank=0, dst_rank=None, tag=7):
    """Send pattern bytes src->dst, verify at dst; returns finish times."""
    if dst_rank is None:
        dst_rank = world.size - 1
    data = pattern(size, seed=size)

    def program(rt):
        comm = world.comm_world
        if rt.rank == src_rank:
            addr = rt.ctx.space.alloc_like(data)
            req = yield from rt.isend(comm, dst_rank, addr, size, tag=tag)
            yield from rt.wait(req)
        elif rt.rank == dst_rank:
            addr = rt.ctx.space.alloc(size)
            req = yield from rt.irecv(comm, src_rank, addr, size, tag=tag)
            yield from rt.wait(req)
            assert (rt.ctx.space.read(addr, size) == data).all()
        return rt.sim.now

    return world.run(program)


class TestProtocolSelection:
    def test_eager_inter_node(self, world):
        _pingpong(world, EAGER, src_rank=0, dst_rank=2)
        assert world.cluster.metrics.get("mpi.eager_sends") == 1
        world.assert_quiescent()

    def test_rendezvous_inter_node(self, world):
        _pingpong(world, RNDV, src_rank=0, dst_rank=2)
        assert world.cluster.metrics.get("mpi.rndv_sends") == 1
        # rendezvous = receiver-side RDMA read
        assert world.cluster.metrics.get("rdma.read.host") == 1
        world.assert_quiescent()

    def test_shared_memory_intra_node(self, world):
        _pingpong(world, RNDV, src_rank=0, dst_rank=1)
        assert world.cluster.metrics.get("mpi.shm_sends") == 1
        assert world.cluster.metrics.get("mpi.rndv_sends") == 0
        world.assert_quiescent()

    def test_threshold_boundary_is_eager(self, world):
        _pingpong(world, world.cluster.params.eager_threshold, src_rank=0, dst_rank=2)
        assert world.cluster.metrics.get("mpi.eager_sends") == 1


class TestSemantics:
    def test_any_source_any_tag(self, world):
        data = pattern(512)

        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc_like(data)
                req = yield from rt.isend(comm, 2, addr, 512, tag=77)
                yield from rt.wait(req)
            elif rt.rank == 2:
                addr = rt.ctx.space.alloc(512)
                req = yield from rt.irecv(comm, ANY_SOURCE, addr, 512, tag=ANY_TAG)
                yield from rt.wait(req)
                assert req.matched_src == 0
                assert req.matched_tag == 77
            return True

        assert all(world.run(program))

    def test_message_ordering_same_pair(self, world):
        """Two same-tag sends must arrive in order."""
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                a1 = rt.ctx.space.alloc(8, fill=1)
                a2 = rt.ctx.space.alloc(8, fill=2)
                r1 = yield from rt.isend(comm, 2, a1, 8, tag=5)
                r2 = yield from rt.isend(comm, 2, a2, 8, tag=5)
                yield from rt.waitall([r1, r2])
            elif rt.rank == 2:
                b1 = rt.ctx.space.alloc(8)
                b2 = rt.ctx.space.alloc(8)
                r1 = yield from rt.irecv(comm, 0, b1, 8, tag=5)
                r2 = yield from rt.irecv(comm, 0, b2, 8, tag=5)
                yield from rt.waitall([r1, r2])
                assert (rt.ctx.space.read(b1, 8) == 1).all()
                assert (rt.ctx.space.read(b2, 8) == 2).all()
            return True

        assert all(world.run(program))

    def test_unexpected_message_then_recv(self, world):
        """Send posted long before the receive."""
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(64, fill=9)
                req = yield from rt.isend(comm, 2, addr, 64, tag=1)
                yield from rt.wait(req)
            elif rt.rank == 2:
                yield rt.ctx.consume(50e-6)  # arrive late
                addr = rt.ctx.space.alloc(64)
                req = yield from rt.irecv(comm, 0, addr, 64, tag=1)
                yield from rt.wait(req)
                assert (rt.ctx.space.read(addr, 64) == 9).all()
            return True

        assert all(world.run(program))

    def test_overflow_recv_rejected(self, world):
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(128, fill=3)
                req = yield from rt.isend(comm, 2, addr, 128, tag=2)
                yield from rt.wait(req)
            elif rt.rank == 2:
                addr = rt.ctx.space.alloc(64)
                req = yield from rt.irecv(comm, 0, addr, 64, tag=2)
                yield from rt.wait(req)
            return True

        with pytest.raises(MpiError, match="overflows"):
            world.run(program)

    def test_self_send_rejected(self, world):
        def program(rt):
            comm = world.comm_world
            addr = rt.ctx.space.alloc(8)
            yield from rt.isend(comm, rt.rank, addr, 8, tag=0)

        with pytest.raises(MpiError):
            world.run(program, ranks=[0])

    def test_negative_tag_rejected(self, world):
        def program(rt):
            addr = rt.ctx.space.alloc(8)
            yield from rt.isend(world.comm_world, 1, addr, 8, tag=-3)

        with pytest.raises(MpiError):
            world.run(program, ranks=[0])

    def test_test_returns_completion_state(self, world):
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(RNDV)
                req = yield from rt.isend(comm, 2, addr, RNDV, tag=3)
                done_now = yield from rt.test(req)
                assert not done_now  # rendezvous can't finish synchronously
                yield from rt.wait(req)
                assert (yield from rt.test(req))
            elif rt.rank == 2:
                addr = rt.ctx.space.alloc(RNDV)
                req = yield from rt.irecv(comm, 0, addr, RNDV, tag=3)
                yield from rt.wait(req)
            return True

        assert all(world.run(program))


class TestProgressSemantics:
    """The property the whole paper hinges on: host MPI only progresses
    inside MPI calls."""

    def test_rendezvous_stalls_while_receiver_computes(self):
        cluster = Cluster(ClusterSpec(nodes=2, ppn=1))
        world = MpiWorld(cluster)
        compute = 200e-6
        finish = {}

        def program(rt):
            comm = world.comm_world
            size = RNDV
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(size)
                req = yield from rt.isend(comm, 1, addr, size, tag=4)
                yield from rt.wait(req)
            else:
                addr = rt.ctx.space.alloc(size)
                req = yield from rt.irecv(comm, 1 - 1 + 0, addr, size, tag=4)
                yield rt.ctx.consume(compute)  # NOT an MPI call
                yield from rt.wait(req)
                finish["recv"] = rt.sim.now
            return True

        world.run(program)
        # The RTS sat unserved during the whole compute: the transfer
        # could only *start* after it, so completion lands after
        # compute + transfer time, not inside the compute window.
        transfer = RNDV / cluster.params.wire_bandwidth
        assert finish["recv"] > compute + transfer

    def test_eager_delivery_needs_no_receiver_cpu(self):
        cluster = Cluster(ClusterSpec(nodes=2, ppn=1))
        world = MpiWorld(cluster)
        finish = {}

        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(EAGER, fill=1)
                req = yield from rt.isend(comm, 1, addr, EAGER, tag=4)
                yield from rt.wait(req)
            else:
                addr = rt.ctx.space.alloc(EAGER)
                req = yield from rt.irecv(comm, 0, addr, EAGER, tag=4)
                yield rt.ctx.consume(200e-6)
                t0 = rt.sim.now
                yield from rt.wait(req)
                finish["wait"] = rt.sim.now - t0
            return True

        world.run(program)
        # Data was already in the bounce buffer: the wait costs only the
        # match + copy-out, microseconds not the full transfer restart.
        assert finish["wait"] < 5e-6

    def test_time_in_mpi_accounting(self, world):
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(EAGER)
                req = yield from rt.isend(comm, 2, addr, EAGER, tag=9)
                yield from rt.wait(req)
                assert rt.time_in_mpi > 0
                total = rt.sim.now
                assert rt.time_in_mpi <= total
            elif rt.rank == 2:
                addr = rt.ctx.space.alloc(EAGER)
                req = yield from rt.irecv(comm, 0, addr, EAGER, tag=9)
                yield from rt.wait(req)
            return True

        assert all(world.run(program))
