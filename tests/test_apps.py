"""Integration tests for the application layer (omb, stencil, fft, hpl)."""

import math

import pytest

from repro.apps.harness import OverlapResult, dims_create
from repro.apps.hpl import lu_validate, n_for_memory_fraction
from repro.apps.omb import ialltoall_overlap, pingpong_latency
from repro.apps.p3dfft import PencilGrid, fft3d_validate
from repro.apps.stencil3d import StencilGeometry, halo_exchange_validate
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2)


class TestHarness:
    def test_dims_create_products(self):
        for n in (1, 2, 6, 8, 12, 32, 100):
            for d in (1, 2, 3):
                dims = dims_create(n, d)
                assert len(dims) == d
                assert math.prod(dims) == n
                assert dims == sorted(dims, reverse=True)

    def test_dims_create_balanced(self):
        assert dims_create(8, 3) == [2, 2, 2]
        assert dims_create(32, 3) == [4, 4, 2]
        assert dims_create(64, 2) == [8, 8]

    def test_overlap_pct_bounds(self):
        r = OverlapResult(pure_comm=10.0, overall=12.0, compute=10.0)
        assert 0 <= r.overlap_pct <= 100
        full = OverlapResult(pure_comm=10.0, overall=10.0, compute=10.0)
        assert full.overlap_pct == 100.0
        none = OverlapResult(pure_comm=10.0, overall=20.0, compute=10.0)
        assert none.overlap_pct == 0.0
        zero = OverlapResult(pure_comm=0.0, overall=1.0, compute=1.0)
        assert zero.overlap_pct == 0.0


class TestOmb:
    def test_pingpong_monotone_in_size(self):
        small = pingpong_latency("intelmpi", SPEC, 1024, iters=5)
        big = pingpong_latency("intelmpi", SPEC, 256 * 1024, iters=5)
        assert 0 < small < big

    def test_overlap_result_consistency(self):
        r = ialltoall_overlap("proposed", SPEC, 8192, iters=2, warmup=1)
        assert r.pure_comm > 0
        assert r.overall >= r.compute
        assert 0 <= r.overlap_pct <= 100


class TestStencil:
    def test_geometry_neighbours_symmetric(self):
        geo = StencilGeometry.for_world(64, 8)
        for rank in range(8):
            for face, peer, nbytes in geo.neighbours(rank):
                back = [f for f, p, b in geo.neighbours(peer) if p == rank]
                assert (face ^ 1) in back

    def test_geometry_boundary_ranks_have_fewer_faces(self):
        geo = StencilGeometry.for_world(64, 8)  # 2x2x2 grid
        for rank in range(8):
            assert len(geo.neighbours(rank)) == 3  # corner ranks

    def test_interior_rank_has_six(self):
        geo = StencilGeometry(n=128, px=3, py=3, pz=3)
        center = geo.rank_of(1, 1, 1)
        assert len(geo.neighbours(center)) == 6

    def test_compute_seconds_scales_with_volume(self):
        geo1 = StencilGeometry.for_world(64, 8)
        geo2 = StencilGeometry.for_world(128, 8)
        assert geo2.compute_seconds(1e9) == pytest.approx(8 * geo1.compute_seconds(1e9))

    @pytest.mark.parametrize("flavor", ["intelmpi", "proposed"])
    def test_halo_exchange_bit_exact(self, flavor):
        assert halo_exchange_validate(flavor, SPEC, n=8)


class TestP3dfft:
    def test_grid_shapes(self):
        g = PencilGrid.for_world(16, 16, 8, 4)
        g.check()
        assert g.rows * g.cols == 4

    def test_block_bytes_positive(self):
        g = PencilGrid.for_world(16, 16, 16, 4)
        assert g.row_block_bytes > 0 and g.col_block_bytes > 0

    def test_indivisible_grid_rejected(self):
        g = PencilGrid(x=10, y=10, z=10, rows=4, cols=1)
        with pytest.raises(ValueError):
            g.check()

    @pytest.mark.parametrize("flavor", ["intelmpi", "bluesmpi", "proposed"])
    def test_distributed_fft_matches_numpy(self, flavor):
        assert fft3d_validate(flavor, SPEC, 8, 8, 8)

    def test_fft_validates_on_rectangular_grid(self):
        assert fft3d_validate("proposed", SPEC, 8, 16, 4)


class TestHpl:
    def test_n_for_memory_fraction_monotone(self):
        ns = [n_for_memory_fraction(f, 256e9, 16) for f in (0.05, 0.25, 0.75)]
        assert ns == sorted(ns)
        assert all(n % 64 == 0 for n in ns)

    @pytest.mark.parametrize("flavor", ["intelmpi", "bluesmpi", "proposed"])
    def test_lu_factors_reproduce_matrix(self, flavor):
        assert lu_validate(flavor, SPEC, n=32, nb=8)

    def test_lu_bigger_blocks(self):
        assert lu_validate("proposed", SPEC, n=48, nb=16)

    def test_lu_indivisible_rejected(self):
        with pytest.raises(ValueError):
            lu_validate("intelmpi", SPEC, n=30, nb=8)
