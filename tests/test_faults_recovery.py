"""Chaos-fabric integration tests: the offload stack under injected faults.

Every scenario here is fully deterministic -- the FaultPlan draws from a
seeded stream -- so assertions on fault/recovery metrics are stable.
"""


from tests.helpers import pattern, run_procs
from repro.hw import (
    OFFLOAD_CONTROL_KINDS,
    Cluster,
    ClusterSpec,
    FaultPlan,
    FaultSpec,
    ProxyKillPlan,
)
from repro.offload import OffloadFramework


def _chaos_cluster(spec=None, kills=(), seed=17, nodes=2, ppn=1, proxies=1):
    cl = Cluster(ClusterSpec(nodes=nodes, ppn=ppn, proxies_per_dpu=proxies))
    plan = FaultPlan(spec if spec is not None else FaultSpec(),
                     kills=kills, seed=seed)
    cl.install_faults(plan)
    return cl, plan


def _pingpong(cluster, fw, iters=8, size=2048):
    """OSU-latency-style ping-pong; the echo verifies bytes both ways."""
    def player(rank, peer):
        def prog(sim):
            ep = fw.endpoint(rank)
            for i in range(iters):
                data = pattern(size, seed=100 + i)
                if rank == 0:
                    sa = ep.ctx.space.alloc_like(data)
                    sreq = yield from ep.send_offload(sa, size, dst=peer,
                                                      tag=2 * i)
                    yield from ep.wait(sreq)
                    ra = ep.ctx.space.alloc(size)
                    rreq = yield from ep.recv_offload(ra, size, src=peer,
                                                      tag=2 * i + 1)
                    yield from ep.wait(rreq)
                    assert (ep.ctx.space.read(ra, size) == data).all()
                else:
                    ra = ep.ctx.space.alloc(size)
                    rreq = yield from ep.recv_offload(ra, size, src=peer,
                                                      tag=2 * i)
                    yield from ep.wait(rreq)
                    assert (ep.ctx.space.read(ra, size) == data).all()
                    sreq = yield from ep.send_offload(ra, size, dst=peer,
                                                      tag=2 * i + 1)
                    yield from ep.wait(sreq)
            return sim.now
        return prog

    return run_procs(cluster, [player(0, 1)(cluster.sim),
                               player(1, 0)(cluster.sim)])


class TestControlDrops:
    def test_pingpong_survives_five_percent_drops(self):
        cl, plan = _chaos_cluster(FaultSpec(
            drop_prob=0.05, control_kinds=OFFLOAD_CONTROL_KINDS))
        fw = OffloadFramework(cl)
        _pingpong(cl, fw, iters=8)
        fw.assert_quiescent()
        m = cl.metrics
        assert plan.stats["drops"] > 0  # the campaign actually bit
        assert m.get("offload.retransmits") > 0  # ...and recovery ran
        assert m.get("proxy.basic_pairs") == 16

    def test_corruption_and_dup_storm(self):
        """Corrupt (= detected drop) plus duplicates: dedupe must hold."""
        cl, plan = _chaos_cluster(FaultSpec(
            corrupt_prob=0.05, dup_prob=0.15,
            control_kinds=OFFLOAD_CONTROL_KINDS))
        fw = OffloadFramework(cl)
        _pingpong(cl, fw, iters=8)
        fw.assert_quiescent()
        m = cl.metrics
        assert plan.stats["dups"] > 0
        # Duplicated RTS/RTR were recognised and dropped, not re-matched.
        assert m.get("proxy.dup_ctrl_dropped") > 0
        assert m.get("proxy.basic_pairs") == 16

    def test_delay_jitter_only_changes_timing(self):
        cl, plan = _chaos_cluster(FaultSpec(
            delay_prob=0.5, delay_max=30e-6,
            control_kinds=OFFLOAD_CONTROL_KINDS))
        fw = OffloadFramework(cl)
        _pingpong(cl, fw, iters=4)
        fw.assert_quiescent()
        assert plan.stats["delays"] > 0
        assert plan.stats["drops"] == 0


class TestErrorCqes:
    def test_gvmi_transfers_reposted(self):
        cl, plan = _chaos_cluster(FaultSpec(
            error_cqe_prob=0.5, error_initiators=("dpu",)))
        fw = OffloadFramework(cl)
        _pingpong(cl, fw, iters=4, size=16 * 1024)
        fw.assert_quiescent()
        m = cl.metrics
        assert plan.stats["error_cqes"] > 0
        assert m.get("proxy.rdma_retries") > 0
        assert m.get("proxy.basic_pairs") == 8

    def test_staged_transfers_reposted(self):
        cl, plan = _chaos_cluster(FaultSpec(
            error_cqe_prob=0.4, error_initiators=("dpu",)))
        fw = OffloadFramework(cl, mode="staged")
        _pingpong(cl, fw, iters=4, size=16 * 1024)
        fw.assert_quiescent()
        m = cl.metrics
        assert plan.stats["error_cqes"] > 0
        assert m.get("proxy.rdma_retries") > 0
        assert m.get("staging.transfers") == 8

    def test_group_segment_reposted(self):
        cl, plan = _chaos_cluster(FaultSpec(
            error_cqe_prob=0.4, error_initiators=("dpu",)))
        fw = OffloadFramework(cl)
        _group_exchange(cl, fw, size=32 * 1024)
        fw.assert_quiescent()
        m = cl.metrics
        assert plan.stats["error_cqes"] > 0
        assert m.get("proxy.rdma_retries") > 0


def _group_exchange(cluster, fw, size=64 * 1024, iters=1):
    """Symmetric pairwise group exchange between ranks 0 and 1."""
    data = {r: pattern(size, seed=50 + r) for r in (0, 1)}

    def make(rank, peer):
        def prog(sim):
            ep = fw.endpoint(rank)
            sbuf = ep.ctx.space.alloc_like(data[rank])
            rbuf = ep.ctx.space.alloc(size)
            greq = ep.group_start()
            ep.group_send(greq, sbuf, size, dst=peer, tag=5)
            ep.group_recv(greq, rbuf, size, src=peer, tag=5)
            ep.group_end(greq)
            for _ in range(iters):
                yield from ep.group_call(greq)
                yield from ep.group_wait(greq)
            assert (ep.ctx.space.read(rbuf, size) == data[peer]).all()
            return sim.now
        return prog

    return run_procs(cluster, [make(0, 1)(cluster.sim),
                               make(1, 0)(cluster.sim)])


class TestProxyKillRestart:
    def test_group_replayed_after_restart(self):
        cl0 = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        gid = cl0.proxy_for_rank(0).global_id
        cl, plan = _chaos_cluster(kills=[
            ProxyKillPlan(proxy_gid=gid, at=50e-6, restart_after=60e-6)])
        fw = OffloadFramework(cl)
        _group_exchange(cl, fw, size=256 * 1024)
        m = cl.metrics
        assert plan.stats["kills"] == 1 and plan.stats["restarts"] == 1
        assert m.get("proxy.kills") == 1 and m.get("proxy.restarts") == 1
        # The host retransmitted its call and the revived proxy replayed
        # the launch with the original sequence numbers.
        assert m.get("proxy.group_replays") >= 1
        assert m.get("proxy.group_completions") >= 2

    def test_basic_pair_survives_restart(self):
        cl0 = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        gid = cl0.proxy_for_rank(0).global_id
        cl, plan = _chaos_cluster(kills=[
            ProxyKillPlan(proxy_gid=gid, at=20e-6, restart_after=40e-6)])
        fw = OffloadFramework(cl)
        _pingpong(cl, fw, iters=3, size=64 * 1024)
        fw.assert_quiescent()
        m = cl.metrics
        assert m.get("proxy.kills") == 1 and m.get("proxy.restarts") == 1
        assert m.get("offload.retransmits") >= 1
        assert m.get("proxy.basic_pairs") >= 6


class TestGracefulDegradation:
    def test_permanent_death_falls_back_to_host_path(self):
        cl0 = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        gid = cl0.proxy_for_rank(0).global_id
        cl, plan = _chaos_cluster(kills=[ProxyKillPlan(proxy_gid=gid, at=2e-6)])
        fw = OffloadFramework(cl)
        data = pattern(8192, seed=77)
        out = {}

        def sender(sim):
            ep = fw.endpoint(0)
            sa = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(sa, 8192, dst=1, tag=9)
            yield from ep.wait(req)
            out["send_done"] = sim.now

        def receiver(sim):
            ep = fw.endpoint(1)
            ra = ep.ctx.space.alloc(8192)
            req = yield from ep.recv_offload(ra, 8192, src=0, tag=9)
            yield from ep.wait(req)
            assert (ep.ctx.space.read(ra, 8192) == data).all()
            out["recv_done"] = sim.now

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
        m = cl.metrics
        assert m.get("offload.fallbacks") >= 1
        assert m.get("offload.fb_pulls") == 1
        assert m.get("offload.fb_fins") >= 1
        assert fw.fallback_log  # the degradation was logged...
        assert {entry[2] for entry in fw.fallback_log} <= {"send", "recv"}
        # ...and happened only after the liveness deadline.
        assert min(e[0] for e in fw.fallback_log) >= fw.retry.fallback_after
        # Host-driven pull: a host-initiated RDMA READ moved the bytes.
        assert m.get("rdma.read.host") >= 1

    def test_fallback_interops_with_control_drops(self):
        """Dead proxy *and* lossy fabric: the offer/pull/fin loop retries."""
        cl0 = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
        gid = cl0.proxy_for_rank(0).global_id
        cl, plan = _chaos_cluster(
            FaultSpec(drop_prob=0.2, control_kinds=OFFLOAD_CONTROL_KINDS),
            kills=[ProxyKillPlan(proxy_gid=gid, at=2e-6)])
        fw = OffloadFramework(cl)
        data = pattern(4096, seed=12)
        done = {}

        def sender(sim):
            ep = fw.endpoint(0)
            sa = ep.ctx.space.alloc_like(data)
            req = yield from ep.send_offload(sa, 4096, dst=1, tag=4)
            yield from ep.wait(req)
            done["s"] = True

        def receiver(sim):
            ep = fw.endpoint(1)
            ra = ep.ctx.space.alloc(4096)
            req = yield from ep.recv_offload(ra, 4096, src=0, tag=4)
            yield from ep.wait(req)
            assert (ep.ctx.space.read(ra, 4096) == data).all()
            done["r"] = True

        run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
        assert done == {"s": True, "r": True}
        assert cl.metrics.get("offload.fb_pulls") >= 1


class TestCleanRunIsolation:
    def test_no_plan_means_no_fault_metrics(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        _pingpong(tiny_cluster, fw, iters=2)
        m = tiny_cluster.metrics
        for key in ("fabric.faults.drop", "fabric.faults.dup",
                    "offload.retransmits", "proxy.rdma_retries",
                    "offload.fallbacks", "proxy.fin_resends"):
            assert m.get(key) == 0
        assert fw.fallback_log == []
