"""Tests for the experiment harness plumbing and the cheap figures."""

import pytest

from repro.experiments import ALL_FIGURES
from repro.experiments.common import (
    FigureResult,
    Series,
    SimBarrier,
    fmt_size,
    improvement_pct,
)
from repro.sim import Simulator


class TestHelpers:
    def test_fmt_size(self):
        assert fmt_size(1) == "1B"
        assert fmt_size(4096) == "4.0KiB"
        assert fmt_size(1 << 20) == "1.0MiB"
        assert fmt_size(64 * 1024) == "64KiB"

    def test_improvement_pct(self):
        assert improvement_pct(100, 80) == pytest.approx(20.0)
        assert improvement_pct(100, 120) == pytest.approx(-20.0)
        assert improvement_pct(0, 10) == 0.0

    def test_series_value_at(self):
        s = Series("x", ["a", "b"], [1.0, 2.0])
        assert s.value_at("b") == 2.0


class TestFigureResult:
    def _fig(self):
        return FigureResult(
            fig_id="figX",
            title="demo",
            series=[Series("one", ["p", "q"], [1.0, 2.0], unit="us")],
        )

    def test_checks_accumulate(self):
        fig = self._fig()
        fig.check("ok", True)
        fig.check("bad", False, "detail")
        assert not fig.all_passed
        assert [c.passed for c in fig.checks] == [True, False]

    def test_render_contains_everything(self):
        fig = self._fig()
        fig.check("condition", True, "why")
        text = fig.render()
        assert "figX" in text and "one" in text
        assert "PASS" in text and "why" in text

    def test_series_by_unknown(self):
        with pytest.raises(KeyError):
            self._fig().series_by("nope")


class TestSimBarrier:
    def test_releases_all_at_last_arrival(self):
        sim = Simulator()
        barrier = SimBarrier(sim, 3)
        out = []

        def proc(sim, name, delay):
            yield sim.timeout(delay)
            yield from barrier.arrive()
            out.append((name, sim.now))

        for name, d in [("a", 1.0), ("b", 5.0), ("c", 3.0)]:
            sim.process(proc(sim, name, d))
        sim.run()
        assert all(t == 5.0 for _, t in out)

    def test_reusable_across_rounds(self):
        sim = Simulator()
        barrier = SimBarrier(sim, 2)
        trace = []

        def proc(sim, name, d):
            for r in range(2):
                yield sim.timeout(d)
                yield from barrier.arrive()
                trace.append((r, name, sim.now))

        sim.process(proc(sim, "fast", 1.0))
        sim.process(proc(sim, "slow", 4.0))
        sim.run()
        round0 = [t for r, _, t in trace if r == 0]
        round1 = [t for r, _, t in trace if r == 1]
        assert all(t == 4.0 for t in round0)
        assert all(t == 8.0 for t in round1)


class TestFigureRegistry:
    def test_every_listed_figure_module_exists_and_has_run(self):
        import importlib

        for name in ALL_FIGURES:
            mod = importlib.import_module(f"repro.experiments.{name}")
            assert callable(getattr(mod, "run"))


class TestCheapFigures:
    """The micro figures run in well under a second each; assert their
    paper-shape checks directly in the test suite."""

    def test_fig02_shape(self):
        from repro.experiments import fig02_rdma_latency

        assert fig02_rdma_latency.run().all_passed

    def test_fig03_shape(self):
        from repro.experiments import fig03_rdma_bw

        assert fig03_rdma_bw.run().all_passed

    def test_fig05_shape(self):
        from repro.experiments import fig05_registration

        assert fig05_registration.run().all_passed

    def test_fig01_shape(self):
        from repro.experiments import fig01_timeline

        assert fig01_timeline.run().all_passed


class TestRunallRobustness:
    """A crash in one figure must not abort the batch (satellite of the
    chaos-fabric work: the experiment driver degrades gracefully too)."""

    def test_crash_reported_but_batch_continues(self, monkeypatch, capsys):
        from repro.experiments import runall

        monkeypatch.setattr(
            runall, "ALL_FIGURES", ["fig99_missing", "fig05_registration"])
        rc = runall.main([])
        captured = capsys.readouterr()
        # One crash beside one pass is a *partial* campaign (exit 3),
        # distinct from wrong science (1) -- see docs/RESILIENCE.md.
        assert rc == 3
        assert "fig99_missing: CRASH" in captured.err
        assert "1/2 figure(s) failed" in captured.out
        assert "fig99_missing: crash" in captured.out
        assert "campaign partial" in captured.out
        # the healthy figure after the crash still rendered its table
        assert "fig05" in captured.out

    def test_all_good_batch_exits_zero(self, capsys):
        from repro.experiments import runall

        assert runall.main(["fig05"]) == 0
        assert "all shape checks passed" in capsys.readouterr().out

    def test_run_figures_still_raises_for_library_use(self, monkeypatch):
        from repro.experiments import runall

        with pytest.raises(ModuleNotFoundError):
            runall.run_figures(["fig99_missing"])

    def test_unknown_selector_exits_two(self, capsys):
        from repro.experiments import runall

        assert runall.main(["nope"]) == 2
        assert "no figures match" in capsys.readouterr().out
