"""Unit + property tests for the AVL tree backing the GVMI caches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offload import AvlTree


class TestBasics:
    def test_empty(self):
        t = AvlTree()
        assert len(t) == 0
        assert t.find((1, 2)) is None
        assert (1, 2) not in t

    def test_insert_find(self):
        t = AvlTree()
        t.insert((0x1000, 64), "a")
        assert t.find((0x1000, 64)) == "a"
        assert (0x1000, 64) in t

    def test_overwrite(self):
        t = AvlTree()
        t.insert((1, 1), "old")
        t.insert((1, 1), "new")
        assert len(t) == 1 and t.find((1, 1)) == "new"

    def test_same_addr_different_size_is_distinct(self):
        t = AvlTree()
        t.insert((0x1000, 64), "small")
        t.insert((0x1000, 128), "big")
        assert len(t) == 2
        assert t.find((0x1000, 64)) == "small"
        assert t.find((0x1000, 128)) == "big"

    def test_remove(self):
        t = AvlTree()
        t.insert((1, 1), "x")
        assert t.remove((1, 1))
        assert not t.remove((1, 1))
        assert t.find((1, 1)) is None

    def test_items_sorted(self):
        t = AvlTree()
        for k in [(5, 0), (1, 0), (3, 0), (2, 0), (4, 0)]:
            t.insert(k, None)
        assert [k for k, _ in t.items()] == [(1, 0), (2, 0), (3, 0), (4, 0), (5, 0)]

    def test_sequential_insert_stays_balanced(self):
        t = AvlTree()
        n = 1024
        for i in range(n):
            t.insert((i, 0), i)
        t.check_invariants()
        # AVL height bound: ~1.44 log2(n)
        assert t.height <= 1.45 * (n.bit_length()) + 2

    def test_depth_of_found_and_missing(self):
        t = AvlTree()
        for i in range(15):
            t.insert((i, 0), i)
        assert 1 <= t.depth_of((7, 0)) <= t.height
        assert t.depth_of((99, 0)) <= t.height


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove"]),
            st.integers(0, 40),
            st.integers(0, 3),
        ),
        max_size=120,
    )
)
def test_avl_matches_dict_model(ops):
    """Random insert/remove interleavings behave exactly like a dict and
    never violate BST order or AVL balance."""
    tree = AvlTree()
    model = {}
    for op, addr, size in ops:
        key = (addr, size)
        if op == "insert":
            tree.insert(key, addr * 10 + size)
            model[key] = addr * 10 + size
        else:
            assert tree.remove(key) == (key in model)
            model.pop(key, None)
    tree.check_invariants()
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
    assert list(tree.keys()) == sorted(model)


@settings(max_examples=50, deadline=None)
@given(keys=st.sets(st.integers(0, 10_000), min_size=1, max_size=300))
def test_avl_height_is_logarithmic(keys):
    tree = AvlTree()
    for k in keys:
        tree.insert((k, 0), k)
    tree.check_invariants()
    import math

    assert tree.height <= 1.45 * math.log2(len(keys) + 2) + 2
