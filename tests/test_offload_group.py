"""Integration tests for Group primitives: recording, execution, caching."""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadError, OffloadFramework


def _cluster(nodes=3, ppn=1, proxies=1):
    return Cluster(ClusterSpec(nodes=nodes, ppn=ppn, proxies_per_dpu=proxies))


class TestRecording:
    def test_lifecycle_enforced(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        greq = ep.group_start()
        assert greq.state == "recording"
        ep.group_send(greq, 0x1000, 64, dst=1, tag=0)
        ep.group_end(greq)
        assert greq.state == "ready"
        with pytest.raises(OffloadError):
            ep.group_send(greq, 0x1000, 64, dst=1, tag=0)
        with pytest.raises(OffloadError):
            ep.group_end(greq)

    def test_call_before_end_rejected(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        greq = ep.group_start()

        def prog(sim):
            yield from ep.group_call(greq)

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        with pytest.raises(OffloadError, match="before Group_Offload_end"):
            tiny_cluster.sim.run(until=proc)

    def test_op_counting(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        greq = ep.group_start()
        ep.group_send(greq, 0x1000, 64, dst=1, tag=0)
        ep.group_recv(greq, 0x2000, 64, src=1, tag=0)
        ep.group_barrier(greq)
        ep.group_send(greq, 0x1000, 64, dst=1, tag=1)
        assert (greq.n_sends, greq.n_recvs, greq.n_barriers) == (2, 1, 1)

    def test_signature_identity(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        a, b = ep.group_start(), ep.group_start()
        for g in (a, b):
            ep.group_send(g, 0x1000, 64, dst=1, tag=0)
        assert a.signature() == b.signature()
        ep.group_barrier(b)
        assert a.signature() != b.signature()


def _ring_program(fw, rank, ranks, size, data, iters=1, compute=0.0):
    """Listing 5's ring broadcast from rank 0."""
    def prog(sim):
        ep = fw.endpoint(rank)
        if rank == 0:
            buf = ep.ctx.space.alloc_like(data)
        else:
            buf = ep.ctx.space.alloc(size)
        greq = ep.group_start()
        if rank == 0:
            ep.group_send(greq, buf, size, dst=1, tag=2)
            ep.group_barrier(greq)
        else:
            ep.group_recv(greq, buf, size, src=rank - 1, tag=2)
            ep.group_barrier(greq)
            if rank + 1 < ranks:
                ep.group_send(greq, buf, size, dst=rank + 1, tag=2)
        ep.group_end(greq)
        for _ in range(iters):
            yield from ep.group_call(greq)
            if compute:
                yield ep.ctx.consume(compute)
            yield from ep.group_wait(greq)
        if rank != 0:
            assert (ep.ctx.space.read(buf, size) == data).all()
        return sim.now

    return prog


class TestRingPattern:
    def test_dependent_chain_executes_in_order(self):
        cl = _cluster(nodes=4)
        fw = OffloadFramework(cl)
        data = pattern(16 * 1024, seed=3)
        run_procs(cl, [
            _ring_program(fw, r, 4, 16 * 1024, data)(cl.sim) for r in range(4)
        ])
        fw.assert_quiescent()

    def test_barrier_enforces_data_dependency(self):
        """Rank 1 forwards the bytes it *received*; without the barrier
        semantics the forward would race the inbound write."""
        cl = _cluster(nodes=3)
        fw = OffloadFramework(cl)
        data = pattern(8192, seed=9)
        run_procs(cl, [
            _ring_program(fw, r, 3, 8192, data)(cl.sim) for r in range(3)
        ])
        # rank 2's payload check inside the program is the assertion

    def test_zero_host_cpu_wait_after_compute(self):
        cl = _cluster(nodes=3)
        fw = OffloadFramework(cl)
        data = pattern(4096)
        finish = run_procs(cl, [
            _ring_program(fw, r, 3, 4096, data, compute=300e-6)(cl.sim)
            for r in range(3)
        ])
        # Everybody is bounded by their compute window (+ call setup),
        # not by the communication: the ring ran entirely on the DPUs.
        assert max(finish) < 500e-6


class TestAlltoallPattern:
    def _run(self, cl, fw, iters=1, block=4096):
        P = cl.world_size
        times = {}

        def make(rank):
            def prog(sim):
                ep = fw.endpoint(rank)
                sbuf = ep.ctx.space.alloc(P * block, fill=(rank % 250) + 1)
                rbuf = ep.ctx.space.alloc(P * block)
                greq = ep.group_start()
                for d in range(1, P):
                    dst = (rank + d) % P
                    src = (rank - d) % P
                    ep.group_send(greq, sbuf + dst * block, block, dst=dst, tag=7)
                    ep.group_recv(greq, rbuf + src * block, block, src=src, tag=7)
                ep.group_end(greq)
                per_iter = []
                for _ in range(iters):
                    t0 = sim.now
                    yield from ep.group_call(greq)
                    yield from ep.group_wait(greq)
                    per_iter.append(sim.now - t0)
                for s in range(P):
                    if s != rank:
                        assert (ep.ctx.space.read(rbuf + s * block, block)
                                == (s % 250) + 1).all()
                times[rank] = per_iter
                return True

            return prog

        run_procs(cl, [make(r)(cl.sim) for r in range(P)])
        return times

    def test_data_correct_all_pairs(self):
        cl = _cluster(nodes=2, ppn=2, proxies=2)
        fw = OffloadFramework(cl)
        self._run(cl, fw)
        fw.assert_quiescent()

    def test_repeat_call_hits_caches_and_gets_faster(self):
        cl = _cluster(nodes=2, ppn=2, proxies=2)
        fw = OffloadFramework(cl)
        times = self._run(cl, fw, iters=3)
        m = cl.metrics
        assert m.get("offload.group_call_build") == cl.world_size
        assert m.get("offload.group_call_cached") == 2 * cl.world_size
        assert m.get("proxy.group_plans_cached") == 2 * cl.world_size
        for rank, per_iter in times.items():
            assert per_iter[1] < per_iter[0] / 2, f"rank {rank}: {per_iter}"

    def test_cross_registration_amortised(self):
        cl = _cluster(nodes=2, ppn=2, proxies=2)
        fw = OffloadFramework(cl)
        self._run(cl, fw, iters=3)
        # one cross-registration per (sender, buffer) pair, not per call
        P = cl.world_size
        assert cl.metrics.get("gvmi.cross_registrations") == P * (P - 1)

    def test_concurrent_group_requests_different_buffers(self):
        """Two in-flight patterns (the P3DFFT situation) must not cross."""
        cl = _cluster(nodes=2, ppn=1, proxies=1)
        fw = OffloadFramework(cl)
        P = 2
        block = 2048

        def make(rank):
            def prog(sim):
                ep = fw.endpoint(rank)
                bufs = []
                greqs = []
                for which in range(2):
                    sbuf = ep.ctx.space.alloc(P * block, fill=10 * (which + 1) + rank)
                    rbuf = ep.ctx.space.alloc(P * block)
                    g = ep.group_start()
                    other = 1 - rank
                    ep.group_send(g, sbuf + other * block, block, dst=other, tag=30 + which)
                    ep.group_recv(g, rbuf + other * block, block, src=other, tag=30 + which)
                    ep.group_end(g)
                    bufs.append((sbuf, rbuf))
                    greqs.append(g)
                yield from ep.group_call(greqs[0])
                yield from ep.group_call(greqs[1])
                yield from ep.group_wait(greqs[0])
                yield from ep.group_wait(greqs[1])
                other = 1 - rank
                for which in range(2):
                    _, rbuf = bufs[which]
                    got = ep.ctx.space.read(rbuf + other * block, block)
                    assert (got == 10 * (which + 1) + other).all(), (rank, which)
                return True

            return prog

        assert all(run_procs(cl, [make(r)(cl.sim) for r in range(2)]))
        fw.assert_quiescent()

    def test_double_call_without_wait_rejected(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        ep = fw.endpoint(0)
        greq = ep.group_start()
        ep.group_end(greq)

        def prog(sim):
            yield from ep.group_call(greq)
            yield from ep.group_call(greq)

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        with pytest.raises(OffloadError, match="in flight"):
            tiny_cluster.sim.run(until=proc)


class TestDescriptorStaleness:
    def test_receiver_rebuild_patches_sender_plan(self):
        """Receiver re-records with a new buffer; the sender's cached plan
        must be patched (and re-shipped) instead of writing to the old
        address."""
        cl = _cluster(nodes=2, ppn=1, proxies=1)
        fw = OffloadFramework(cl)
        size = 1024
        d1 = pattern(size, 1)

        def sender(sim):
            ep = fw.endpoint(0)
            sbuf = ep.ctx.space.alloc_like(d1)
            greq = ep.group_start()
            ep.group_send(greq, sbuf, size, dst=1, tag=5)
            ep.group_end(greq)
            for _ in range(2):
                yield from ep.group_call(greq)
                yield from ep.group_wait(greq)
                yield sim.timeout(30e-6)
            return True

        def receiver(sim):
            ep = fw.endpoint(1)
            # First pattern with buffer A
            buf_a = ep.ctx.space.alloc(size)
            g1 = ep.group_start()
            ep.group_recv(g1, buf_a, size, src=0, tag=5)
            ep.group_end(g1)
            yield from ep.group_call(g1)
            yield from ep.group_wait(g1)
            assert (ep.ctx.space.read(buf_a, size) == d1).all()
            # Re-record with buffer B (new signature -> descriptors resent)
            buf_b = ep.ctx.space.alloc(size)
            g2 = ep.group_start()
            ep.group_recv(g2, buf_b, size, src=0, tag=5)
            ep.group_end(g2)
            yield from ep.group_call(g2)
            yield from ep.group_wait(g2)
            assert (ep.ctx.space.read(buf_b, size) == d1).all()
            return True

        assert all(run_procs(cl, [sender(cl.sim), receiver(cl.sim)]))
        # The sender had to re-ship its patched plan at least once.
        assert cl.metrics.get("offload.group_call_reship") >= 1


class TestStagedGroup:
    def test_ring_correct_in_staged_mode(self):
        cl = _cluster(nodes=3)
        fw = OffloadFramework(cl, mode="staged", group_caching=False)
        data = pattern(32 * 1024, seed=4)
        run_procs(cl, [
            _ring_program(fw, r, 3, 32 * 1024, data)(cl.sim) for r in range(3)
        ])
        assert cl.metrics.get("staging.transfers") == 2  # two ring hops

    def test_no_caching_rebuilds_every_call(self):
        cl = _cluster(nodes=2, ppn=1, proxies=1)
        fw = OffloadFramework(cl, mode="staged", group_caching=False)
        data = pattern(1024)

        def make(rank):
            def prog(sim):
                ep = fw.endpoint(rank)
                other = 1 - rank
                sbuf = ep.ctx.space.alloc_like(data)
                rbuf = ep.ctx.space.alloc(1024)
                for _ in range(3):
                    greq = ep.group_start()
                    ep.group_send(greq, sbuf, 1024, dst=other, tag=8)
                    ep.group_recv(greq, rbuf, 1024, src=other, tag=8)
                    ep.group_end(greq)
                    yield from ep.group_call(greq)
                    yield from ep.group_wait(greq)
                return True

            return prog

        assert all(run_procs(cl, [make(r)(cl.sim) for r in range(2)]))
        m = cl.metrics
        assert m.get("offload.group_call_build") == 6
        assert m.get("offload.group_call_cached") == 0
