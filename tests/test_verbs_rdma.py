"""Unit tests for RDMA operations: data movement, keys, completion."""

import pytest

from tests.helpers import pattern, run_proc
from repro.sim import Store
from repro.verbs import (
    ProtectionError,
    cross_register,
    gvmi_id_of,
    host_gvmi_register,
    post_control,
    rdma_read,
    rdma_write,
    reg_mr,
)


def _regd_pair(cluster, size):
    src = cluster.rank_ctx(0)
    dst = cluster.rank_ctx(1)
    data = pattern(size, seed=1)
    s_addr = src.space.alloc_like(data)
    d_addr = dst.space.alloc(size)
    box = {}

    def prog(sim):
        box["s"] = yield from reg_mr(src, s_addr, size)
        box["d"] = yield from reg_mr(dst, d_addr, size)

    run_proc(cluster, prog(cluster.sim))
    return src, dst, s_addr, d_addr, box["s"], box["d"], data


class TestWrite:
    def test_moves_real_bytes(self, tiny_cluster):
        src, dst, sa, da, hs, hd, data = _regd_pair(tiny_cluster, 8192)

        def prog(sim):
            t = yield from rdma_write(
                src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=8192)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert (dst.space.read(da, 8192) == data).all()

    def test_partial_range_write(self, tiny_cluster):
        src, dst, sa, da, hs, hd, data = _regd_pair(tiny_cluster, 4096)

        def prog(sim):
            t = yield from rdma_write(
                src, lkey=hs.lkey, src_addr=sa + 100, rkey=hd.rkey,
                dst_addr=da + 200, size=50)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert (dst.space.read(da + 200, 50) == data[100:150]).all()

    def test_foreign_lkey_rejected(self, tiny_cluster):
        src, dst, sa, da, hs, hd, _ = _regd_pair(tiny_cluster, 64)

        def prog(sim):
            yield from rdma_write(
                dst, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=64)

        with pytest.raises(ProtectionError, match="cannot use it"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_rkey_as_lkey_rejected(self, tiny_cluster):
        src, dst, sa, da, hs, hd, _ = _regd_pair(tiny_cluster, 64)

        def prog(sim):
            yield from rdma_write(
                src, lkey=hs.rkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=64)

        with pytest.raises(ProtectionError, match="needs an lkey"):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_lkey_range_overflow_rejected(self, tiny_cluster):
        src, dst, sa, da, hs, hd, _ = _regd_pair(tiny_cluster, 64)

        def prog(sim):
            yield from rdma_write(
                src, lkey=hs.lkey, src_addr=sa + 32, rkey=hd.rkey,
                dst_addr=da, size=64)

        with pytest.raises(ProtectionError):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_delivered_precedes_completed(self, tiny_cluster):
        src, dst, sa, da, hs, hd, _ = _regd_pair(tiny_cluster, 1024)
        times = {}

        def prog(sim):
            t = yield from rdma_write(
                src, lkey=hs.lkey, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=1024)
            yield t.delivered
            times["d"] = sim.now
            yield t.completed
            times["c"] = sim.now

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert times["d"] < times["c"]


class TestMkey2Write:
    def test_proxy_moves_host_bytes_directly(self, tiny_cluster):
        src, dst, sa, da, hs, hd, data = _regd_pair(tiny_cluster, 4096)
        proxy = tiny_cluster.proxy_for_rank(0)

        def prog(sim):
            gid = gvmi_id_of(proxy)
            mkey = yield from host_gvmi_register(src, sa, 4096, gid)
            mk2 = yield from cross_register(proxy, sa, 4096, gid, mkey.key)
            t = yield from rdma_write(
                proxy, lkey=mk2.key, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=4096)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert (dst.space.read(da, 4096) == data).all()
        # Data came straight from host memory, posted by the DPU.
        assert tiny_cluster.metrics.get("rdma.write.dpu") == 1

    def test_mkey2_unusable_by_other_proxy(self, small_cluster):
        src = small_cluster.rank_ctx(0)
        dst = small_cluster.rank_ctx(2)
        sa = src.space.alloc(64)
        da = dst.space.alloc(64)
        proxy_a = small_cluster.proxy_ctx(0, 0)
        proxy_b = small_cluster.proxy_ctx(0, 1)

        def prog(sim):
            hd = yield from reg_mr(dst, da, 64)
            gid = gvmi_id_of(proxy_a)
            mkey = yield from host_gvmi_register(src, sa, 64, gid)
            mk2 = yield from cross_register(proxy_a, sa, 64, gid, mkey.key)
            yield from rdma_write(
                proxy_b, lkey=mk2.key, src_addr=sa, rkey=hd.rkey, dst_addr=da, size=64)

        with pytest.raises(ProtectionError, match="not usable"):
            run_proc(small_cluster, prog(small_cluster.sim))


class TestRead:
    def test_pulls_remote_bytes(self, tiny_cluster):
        src, dst, sa, da, hs, hd, data = _regd_pair(tiny_cluster, 2048)

        # dst reads from src: dst needs a local lkey, src's rkey.
        def prog(sim):
            t = yield from rdma_read(
                dst, lkey=hd.lkey, local_addr=da, rkey=hs.rkey,
                remote_addr=sa, size=2048)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert (dst.space.read(da, 2048) == data).all()

    def test_read_counts_initiator_kind(self, tiny_cluster):
        src, dst, sa, da, hs, hd, _ = _regd_pair(tiny_cluster, 128)

        def prog(sim):
            t = yield from rdma_read(
                dst, lkey=hd.lkey, local_addr=da, rkey=hs.rkey,
                remote_addr=sa, size=128)
            yield t.completed

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert tiny_cluster.metrics.get("rdma.read.host") == 1


class TestControl:
    def test_default_inbox_is_target_ctx(self, tiny_cluster):
        a = tiny_cluster.rank_ctx(0)
        b = tiny_cluster.rank_ctx(1)

        def prog(sim):
            ev = yield from post_control(a, b, ("ping", 1))
            yield ev

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert b.inbox.items == [("ping", 1)]

    def test_explicit_inbox(self, tiny_cluster):
        a = tiny_cluster.rank_ctx(0)
        b = tiny_cluster.rank_ctx(1)
        side = Store(tiny_cluster.sim)

        def prog(sim):
            ev = yield from post_control(a, b, "x", inbox=side)
            yield ev

        run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert side.items == ["x"] and len(b.inbox) == 0
