"""Property-based tests (hypothesis) on the per-link topology solver.

Four families of invariants (docs/PERFORMANCE.md, "Per-link topology
mode"):

* **conservation** -- ``fair_shares_links`` never oversubscribes a
  link: for every link the shares of the flows crossing it sum to at
  most its capacity (counted with multiplicity for flows that cross a
  link twice);
* **max-min fixed point** -- every flow is bottlenecked: it either
  sits at its own cap or crosses at least one saturated link, so no
  allocation can raise any flow without lowering a poorer one;
* **order invariance** -- the shares are a pure function of the flow
  *set*: permuting the rows permutes the shares bit-identically;
* **endpoint-mode equivalence** -- on degenerate 2-link paths the
  generalized solver reproduces ``fair_shares`` bit for bit (the
  engine's fast-path guarantee), both at the solver level and through
  a live ``FlowEngine`` driving a single-leaf fat-tree.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.flows import FlowEngine, fair_shares, fair_shares_links
from repro.sim import Simulator

_EPS = 1e-9

# Paths of 1..4 links over a 10-link fabric; per-flow caps in (0, 1].
path_flows = st.lists(
    st.tuples(
        st.lists(st.integers(0, 9), min_size=1, max_size=4),
        st.floats(0.05, 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)

link_cap_arrays = st.one_of(
    st.none(),
    st.lists(st.floats(0.1, 2.0, allow_nan=False),
             min_size=10, max_size=10),
)


def _solve(flows, link_caps):
    paths = [f[0] for f in flows]
    caps = np.array([f[1] for f in flows], dtype=np.float64)
    lc = None if link_caps is None else np.array(link_caps)
    return paths, caps, lc, fair_shares_links(paths, caps, 10, link_caps=lc)


@settings(max_examples=200, deadline=None)
@given(flows=path_flows, link_caps=link_cap_arrays)
def test_links_conservation(flows, link_caps):
    paths, caps, lc, shares = _solve(flows, link_caps)
    assert np.all(shares >= 0.0)
    assert np.all(shares <= caps + _EPS)
    for link in range(10):
        # A flow crossing a link twice loads it twice.
        load = sum(s * p.count(link) for p, s in zip(paths, shares))
        cap = 1.0 if lc is None else lc[link]
        assert load <= cap + _EPS, f"link {link} oversubscribed: {load}"


@settings(max_examples=200, deadline=None)
@given(flows=path_flows, link_caps=link_cap_arrays)
def test_links_maxmin_fixed_point(flows, link_caps):
    paths, caps, lc, shares = _solve(flows, link_caps)
    link_load = np.zeros(10)
    for p, s in zip(paths, shares):
        for link in p:
            link_load[link] += s
    link_cap = np.ones(10) if lc is None else lc
    for i, (p, s) in enumerate(zip(paths, shares)):
        at_cap = s >= caps[i] - _EPS
        on_saturated = any(link_load[l] >= link_cap[l] - _EPS for l in p)
        assert at_cap or on_saturated, (
            f"flow {i} ({s}) below cap {caps[i]} with headroom on "
            f"every link of {p}"
        )


@settings(max_examples=150, deadline=None)
@given(flows=path_flows, link_caps=link_cap_arrays, seed=st.integers(0, 2**31))
def test_links_permutation_invariance(flows, link_caps, seed):
    paths, caps, lc, shares = _solve(flows, link_caps)
    perm = np.random.default_rng(seed).permutation(len(flows))
    permuted = fair_shares_links(
        [paths[i] for i in perm], caps[perm], 10, link_caps=lc)
    assert np.array_equal(shares[perm], permuted)


two_link_flows = st.lists(
    st.tuples(
        st.integers(0, 4),                       # tx link id
        st.integers(5, 9),                       # rx link id
        st.floats(0.05, 1.0, allow_nan=False),   # per-flow cap
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=200, deadline=None)
@given(flows=two_link_flows, link_caps=link_cap_arrays)
def test_links_degenerate_paths_match_endpoint_solver(flows, link_caps):
    """On 2-link paths the two solvers are bit-identical, not just close."""
    tx = np.array([f[0] for f in flows], dtype=np.intp)
    rx = np.array([f[1] for f in flows], dtype=np.intp)
    caps = np.array([f[2] for f in flows], dtype=np.float64)
    lc = None if link_caps is None else np.array(link_caps)
    via_endpoints = fair_shares(tx, rx, caps, 10, endpoint_caps=lc)
    via_links = fair_shares_links(np.stack([tx, rx], axis=1), caps, 10,
                                  link_caps=lc)
    assert np.array_equal(via_endpoints, via_links)


@settings(max_examples=150, deadline=None)
@given(flows=path_flows)
def test_links_padded_matrix_matches_ragged(flows):
    """Pre-padded 2-D input (the engine's cached form) solves identically."""
    paths = [f[0] for f in flows]
    caps = np.array([f[1] for f in flows], dtype=np.float64)
    ragged = fair_shares_links(paths, caps, 10)
    width = max(len(p) for p in paths)
    padded = np.full((len(paths), width), -1, dtype=np.intp)
    for i, p in enumerate(paths):
        padded[i, : len(p)] = p
    assert np.array_equal(ragged, fair_shares_links(padded, caps, 10))


# ---------------------------------------------------------------------------
# engine-level equivalence: multilink paths vs endpoint pairs
# ---------------------------------------------------------------------------

engine_flows = st.lists(
    st.tuples(
        st.integers(0, 3),                        # src node
        st.integers(4, 7),                        # dst node
        st.floats(1e-5, 1e-3, allow_nan=False),   # work (port-seconds)
    ),
    min_size=1,
    max_size=12,
)


def _drain_times(flows, *, as_paths: bool) -> list[float]:
    sim = Simulator()
    engine = FlowEngine(sim, threshold=1)
    sim.attach_flow_engine(engine)
    done: dict[int, float] = {}

    def finish(flow, now, i=None):
        done[flow.tag] = now

    for i, (src, dst, work) in enumerate(flows):
        if as_paths:
            engine.add_flow(path=(("tx", src), ("rx", dst)),
                            work=work, finish=finish, tag=i)
        else:
            engine.add_flow(tx=("tx", src), rx=("rx", dst),
                            work=work, finish=finish, tag=i)
    sim.run()
    return [done[i] for i in range(len(flows))]


@settings(max_examples=60, deadline=None)
@given(flows=engine_flows)
def test_engine_degenerate_paths_drain_identically(flows):
    """2-link path= flows behave exactly like tx=/rx= endpoint flows.

    Path-routed admission increments the multilink count only for
    paths of length != 2, so both runs take the ``fair_shares`` fast
    path -- drain times must match bit for bit.
    """
    assert _drain_times(flows, as_paths=True) == \
        _drain_times(flows, as_paths=False)
