"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite the golden event-stream files under tests/golden/ "
             "from the current run instead of comparing against them",
    )


@pytest.fixture
def regen_golden(request) -> bool:
    return request.config.getoption("--regen-golden")


@pytest.fixture
def sim():
    from repro.sim import Simulator

    return Simulator()


@pytest.fixture
def small_cluster():
    """2 nodes x 2 ranks, 2 proxies per DPU."""
    return Cluster(ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2))


@pytest.fixture
def tiny_cluster():
    """2 nodes x 1 rank, 1 proxy -- the minimal inter-node setup."""
    return Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))


@pytest.fixture
def world(small_cluster):
    return MpiWorld(small_cluster)
