"""Integration tests for the three CommBackend implementations."""

import pytest

from tests.helpers import pattern
from repro.baselines import make_stack
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2)


def _p2p_roundtrip(flavor, size, src=0, dst=3):
    stack = make_stack(flavor, SPEC)
    data = pattern(size, seed=size)

    def program(be):
        comm = be.stack.comm_world
        if be.rank == src:
            addr = be.ctx.space.alloc_like(data)
            req = yield from be.isend(comm, dst, addr, size, tag=6)
            yield from be.wait(req)
        elif be.rank == dst:
            addr = be.ctx.space.alloc(size)
            req = yield from be.irecv(comm, src, addr, size, tag=6)
            yield from be.wait(req)
            assert (be.ctx.space.read(addr, size) == data).all()
        return True

    assert all(stack.run(program))
    return stack


class TestDispatch:
    @pytest.mark.parametrize("flavor", ["intelmpi", "bluesmpi", "proposed"])
    def test_p2p_round_trip(self, flavor):
        _p2p_roundtrip(flavor, 32 * 1024)

    def test_proposed_offloads_inter_node_p2p(self):
        stack = _p2p_roundtrip("proposed", 32 * 1024, src=0, dst=3)
        assert stack.cluster.metrics.get("proxy.basic_pairs") == 1

    def test_proposed_keeps_intra_node_on_shm(self):
        stack = _p2p_roundtrip("proposed", 32 * 1024, src=0, dst=1)
        m = stack.cluster.metrics
        assert m.get("proxy.basic_pairs") == 0
        assert m.get("mpi.shm_sends") == 1

    def test_bluesmpi_p2p_stays_on_host(self):
        """Paper: BluesMPI does not offload point-to-point."""
        stack = _p2p_roundtrip("bluesmpi", 64 * 1024, src=0, dst=3)
        m = stack.cluster.metrics
        assert m.get("proxy.basic_pairs") == 0
        assert m.get("mpi.rndv_sends") == 1

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            make_stack("mvapich", SPEC)


class TestWaitDispatch:
    def test_wait_on_foreign_object_rejected(self):
        stack = make_stack("intelmpi", SPEC)

        def program(be):
            if be.rank == 0:
                with pytest.raises(TypeError):
                    yield from be.wait(object())
            return True
            yield  # pragma: no cover

        stack.run(program, )

    def test_time_in_comm_accumulates(self):
        stack = make_stack("proposed", SPEC)

        def program(be):
            comm = be.stack.comm_world
            size = 16 * 1024
            if be.rank == 0:
                addr = be.ctx.space.alloc(size, fill=1)
                req = yield from be.isend(comm, 3, addr, size, tag=2)
                yield from be.wait(req)
                assert be.time_in_comm > 0
            elif be.rank == 3:
                addr = be.ctx.space.alloc(size)
                req = yield from be.irecv(comm, 0, addr, size, tag=2)
                yield from be.wait(req)
            return True

        assert all(stack.run(program))


class TestCollectivesAcrossBackends:
    @pytest.mark.parametrize("flavor", ["intelmpi", "bluesmpi", "proposed"])
    def test_ialltoall_data(self, flavor):
        stack = make_stack(flavor, SPEC)
        P = SPEC.world_size
        blk = 4096

        def program(be):
            comm = be.stack.comm_world
            sbuf = be.ctx.space.alloc(P * blk, fill=(be.rank % 200) + 1)
            rbuf = be.ctx.space.alloc(P * blk)
            req = yield from be.ialltoall(comm, sbuf, rbuf, blk)
            yield from be.wait(req)
            for j in range(P):
                assert (be.ctx.space.read(rbuf + j * blk, blk) == (j % 200) + 1).all()
            return True

        assert all(stack.run(program))

    @pytest.mark.parametrize("flavor", ["intelmpi", "bluesmpi", "proposed"])
    @pytest.mark.parametrize("root", [0, 2])
    def test_ibcast_data(self, flavor, root):
        stack = make_stack(flavor, SPEC)
        size = 24 * 1024
        data = pattern(size, seed=root)

        def program(be):
            comm = be.stack.comm_world
            if be.rank == root:
                addr = be.ctx.space.alloc_like(data)
            else:
                addr = be.ctx.space.alloc(size)
            req = yield from be.ibcast(comm, root, addr, size)
            yield from be.wait(req)
            assert (be.ctx.space.read(addr, size) == data).all()
            return True

        assert all(stack.run(program))

    def test_barrier_synchronises(self):
        stack = make_stack("proposed", SPEC)
        arrive, leave = {}, {}

        def program(be):
            yield be.ctx.consume(be.rank * 5e-6)
            arrive[be.rank] = be.sim.now
            yield from be.barrier(be.stack.comm_world)
            leave[be.rank] = be.sim.now
            return True

        stack.run(program)
        assert min(leave.values()) >= max(arrive.values())
