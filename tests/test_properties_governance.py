"""Stateful property test: random governance op sequences never leak.

Hypothesis drives random interleavings of alloc / register / offload /
free against one cluster with bounded caches and address recycling, and
checks after every step that no live key grants access to freed memory.
Teardown frees everything still allocated and demands the fully
reclaimed end state: zero live host-owned keys and the allocation
counter back at its baseline -- the resource-governance contract of
docs/RESOURCES.md, under adversarial schedules instead of the scripted
ones in test_resource_governance.py.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from tests.helpers import pattern, run_proc, run_procs
from repro.hw import Cluster, ClusterSpec, MachineParams
from repro.offload import OffloadFramework
from repro.verbs import reg_mr
from repro.verbs.rdma import verbs_state

_SIZES = st.sampled_from([4096, 8192, 16384])


class GovernanceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        params = MachineParams().with_overrides(
            reuse_freed_addresses=True,
            gvmi_cache_capacity=3,
            ib_cache_capacity=3,
        )
        self.cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1,
                                      params=params))
        self.fw = OffloadFramework(self.cl)
        self.keys = verbs_state(self.cl).keys
        self.ctx = self.cl.rank_ctx(0)
        self.peer = self.cl.rank_ctx(1)
        self.baseline = self.ctx.space.allocated_bytes
        self.peer_baseline = self.peer.space.allocated_bytes
        #: live rank-0 buffers as (addr, size)
        self.bufs: list[tuple[int, int]] = []
        self.tag = 0

    # -- rules ---------------------------------------------------------
    @rule(size=_SIZES)
    def alloc(self, size):
        self.bufs.append((self.ctx.space.alloc(size), size))

    @precondition(lambda self: self.bufs)
    @rule(data=st.data())
    def register(self, data):
        """A raw reg_mr outside any cache: the most leak-prone shape."""
        addr, size = data.draw(st.sampled_from(self.bufs))

        def prog(sim):
            return (yield from reg_mr(self.ctx, addr, size))

        run_proc(self.cl, prog(self.cl.sim))

    @precondition(lambda self: self.bufs)
    @rule(data=st.data())
    def offload(self, data):
        """A full send/recv exchange through the bounded caches."""
        addr, size = data.draw(st.sampled_from(self.bufs))
        self.tag += 1
        tag = self.tag
        payload = pattern(size, seed=tag)
        self.ctx.space.write(addr, payload)
        raddr = self.peer.space.alloc(size)

        def sender(sim):
            ep = self.fw.endpoint(0)
            req = yield from ep.send_offload(addr, size, dst=1, tag=tag)
            yield from ep.wait(req)

        def receiver(sim):
            ep = self.fw.endpoint(1)
            req = yield from ep.recv_offload(raddr, size, src=0, tag=tag)
            yield from ep.wait(req)

        run_procs(self.cl, [sender(self.cl.sim), receiver(self.cl.sim)])
        assert (self.peer.space.read(raddr, size) == payload).all()
        self.peer.free(raddr)

    @precondition(lambda self: self.bufs)
    @rule(data=st.data())
    def free(self, data):
        i = data.draw(st.integers(0, len(self.bufs) - 1))
        addr, _ = self.bufs.pop(i)
        self.ctx.free(addr)

    # -- invariants ----------------------------------------------------
    @invariant()
    def no_key_over_freed_memory(self):
        for info in self.keys.live_owned_by(self.ctx):
            assert self.ctx.space.contains(info.addr, info.size), (
                f"live key {info.key:#x} covers freed range "
                f"[{info.addr:#x}, +{info.size})")

    @invariant()
    def peer_has_no_extra_allocations(self):
        assert self.peer.space.allocated_bytes == self.peer_baseline

    def teardown(self):
        for addr, _ in self.bufs:
            self.ctx.free(addr)
        leaked = self.keys.live_owned_by(self.ctx)
        assert not leaked, f"{len(leaked)} key(s) outlived all buffers"
        assert self.ctx.space.allocated_bytes == self.baseline


TestGovernanceStateful = GovernanceMachine.TestCase
TestGovernanceStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)
