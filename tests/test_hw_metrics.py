"""Unit tests for the metrics bag."""

from repro.hw import Metrics


def test_add_and_get():
    m = Metrics()
    m.add("a.b")
    m.add("a.b", 2)
    assert m.get("a.b") == 3
    assert m["a.b"] == 3


def test_missing_key_is_zero():
    assert Metrics().get("nope") == 0.0


def test_contains():
    m = Metrics()
    m.add("x")
    assert "x" in m and "y" not in m


def test_with_prefix_strips_prefix():
    m = Metrics()
    m.add("nic.tx", 5)
    m.add("nic.rx", 7)
    m.add("other.z", 1)
    assert m.with_prefix("nic") == {"tx": 5, "rx": 7}


def test_iteration_is_sorted():
    m = Metrics()
    m.add("b")
    m.add("a")
    assert [k for k, _ in m] == ["a", "b"]


def test_snapshot_and_reset():
    m = Metrics()
    m.add("k", 4)
    snap = m.snapshot()
    m.reset()
    assert snap == {"k": 4} and m.get("k") == 0


def test_report_contains_keys():
    m = Metrics()
    m.add("some.counter", 2)
    assert "some.counter" in m.report()
