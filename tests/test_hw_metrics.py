"""Unit tests for the metrics bag and its histogram layer."""

import numpy as np
import pytest

from repro.hw import Metrics
from repro.obs import Histogram
from repro.obs.hist import percentile


def test_add_and_get():
    m = Metrics()
    m.add("a.b")
    m.add("a.b", 2)
    assert m.get("a.b") == 3
    assert m["a.b"] == 3


def test_missing_key_is_zero():
    assert Metrics().get("nope") == 0.0


def test_contains():
    m = Metrics()
    m.add("x")
    assert "x" in m and "y" not in m


def test_with_prefix_strips_prefix():
    m = Metrics()
    m.add("nic.tx", 5)
    m.add("nic.rx", 7)
    m.add("other.z", 1)
    assert m.with_prefix("nic") == {"tx": 5, "rx": 7}


def test_iteration_is_sorted():
    m = Metrics()
    m.add("b")
    m.add("a")
    assert [k for k, _ in m] == ["a", "b"]


def test_snapshot_and_reset():
    m = Metrics()
    m.add("k", 4)
    snap = m.snapshot()
    m.reset()
    assert snap == {"k": 4} and m.get("k") == 0


def test_report_contains_keys():
    m = Metrics()
    m.add("some.counter", 2)
    assert "some.counter" in m.report()


def test_with_prefix_empty_prefix_returns_everything_unstripped():
    m = Metrics()
    m.add("nic.tx", 5)
    m.add("flat", 1)
    assert m.with_prefix("") == {"nic.tx": 5, "flat": 1}


def test_with_prefix_does_not_match_partial_component():
    m = Metrics()
    m.add("nic.tx", 5)
    m.add("nicolas.cage", 1)
    assert m.with_prefix("nic") == {"tx": 5}


def test_float_accumulation_is_exact_for_representable_values():
    m = Metrics()
    for _ in range(10):
        m.add("t", 0.25)
    assert m.get("t") == 2.5
    m.add("t", -2.5)
    assert m.get("t") == 0.0
    # and tiny increments don't vanish against a large total
    m.add("big", 1e12)
    m.add("big", 0.5)
    assert m.get("big") == 1e12 + 0.5


def test_observe_and_hist():
    m = Metrics()
    for v in (3.0, 1.0, 2.0):
        m.observe("lat", v)
    h = m.hist("lat")
    assert h.count == 3
    assert h.min == 1.0 and h.max == 3.0 and h.mean == 2.0
    assert h.p50 == 2.0
    # unknown key -> an empty histogram, not a KeyError
    assert m.hist("never").count == 0
    assert m.hist("never").summary() == {"count": 0}


def test_snapshot_stays_counters_only_but_full_has_both():
    m = Metrics()
    m.add("c", 2)
    m.observe("lat", 1.5)
    assert m.snapshot() == {"c": 2}
    full = m.snapshot_full()
    assert full["counters"] == {"c": 2}
    assert full["histograms"]["lat"]["count"] == 1
    assert full["histograms"]["lat"]["p99"] == 1.5


def test_merge_adds_counters_and_concatenates_samples():
    a, b = Metrics(), Metrics()
    a.add("x", 1)
    a.observe("lat", 1.0)
    b.add("x", 2)
    b.add("y", 5)
    b.observe("lat", 3.0)
    b.observe("other", 7.0)
    assert a.merge(b) is a
    assert a.get("x") == 3 and a.get("y") == 5
    assert a.hist("lat").count == 2 and a.hist("lat").mean == 2.0
    assert a.hist("other").count == 1
    # the source bag is untouched
    assert b.hist("lat").count == 1 and b.get("x") == 2


def test_reset_clears_histograms_too():
    m = Metrics()
    m.observe("lat", 1.0)
    m.reset()
    assert m.hist("lat").count == 0


def test_report_includes_histogram_lines():
    m = Metrics()
    m.observe("lat", 2e-6)
    assert "p95" in m.report() and "lat" in m.report()


class TestHistogram:
    def test_percentiles_match_numpy_linear(self):
        rng = np.random.default_rng(9)
        samples = rng.uniform(0, 1, size=137)
        h = Histogram(samples)
        for q in (0, 10, 50, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(
                np.percentile(samples, q, method="linear"), rel=1e-12)

    def test_single_sample(self):
        h = Histogram([4.2])
        assert h.p50 == h.p99 == h.min == h.max == 4.2

    def test_empty_rejects_stats(self):
        h = Histogram()
        assert not h and len(h) == 0
        with pytest.raises(ValueError):
            h.p50
        with pytest.raises(ValueError):
            h.mean

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(101)

    def test_observe_after_percentile_resorts(self):
        h = Histogram([5.0, 1.0])
        assert h.p50 == 3.0
        h.observe(0.0)  # must invalidate the sorted view
        assert h.min == 0.0 and h.p50 == 1.0

    def test_merge_returns_self_and_totals(self):
        a, b = Histogram([1.0]), Histogram([3.0, 5.0])
        assert a.merge(b) is a
        assert a.count == 3 and a.total == 9.0

    def test_percentile_function_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50)
