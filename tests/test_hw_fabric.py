"""Unit tests for the fabric cost model and metrics."""

import pytest

from tests.helpers import run_proc
from repro.hw import Cluster, ClusterSpec
from repro.sim import Store


def _measure_transfer(cluster, **kw):
    """Run one transfer; returns (delivered_at, completed_at)."""
    out = {}

    def prog(sim):
        t0 = sim.now
        t = cluster.fabric.transfer(**kw)
        yield t.delivered
        out["delivered"] = sim.now - t0
        yield t.completed
        out["completed"] = sim.now - t0

    run_proc(cluster, prog(cluster.sim))
    return out["delivered"], out["completed"]


class TestTransferTiming:
    def test_inter_node_latency_formula(self, tiny_cluster):
        p = tiny_cluster.params
        size = 4096
        delivered, completed = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=size, initiator="host"
        )
        ser = max(p.host_injection_gap, size / p.wire_bandwidth)
        expect = 2 * ser + p.wire_latency + p.switch_hop_latency
        assert delivered == pytest.approx(expect, rel=1e-9)
        assert completed == pytest.approx(expect + p.ack_latency, rel=1e-9)

    def test_same_node_skips_switch_hop(self, tiny_cluster):
        p = tiny_cluster.params
        delivered, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=0, size=64, initiator="host"
        )
        ser = max(p.host_injection_gap, 64 / p.wire_bandwidth)
        assert delivered == pytest.approx(2 * ser + p.wire_latency, rel=1e-9)

    def test_dpu_memory_caps_bandwidth(self, tiny_cluster):
        p = tiny_cluster.params
        size = 1 << 20
        d_host, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=size, initiator="host"
        )
        d_dpu, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=size, initiator="host",
            src_mem="dpu",
        )
        assert d_dpu > d_host
        ratio = p.host_memory_bandwidth / p.dpu_memory_bandwidth
        assert d_dpu / d_host == pytest.approx(ratio, rel=0.15)

    def test_dpu_initiator_pays_bigger_gap(self, tiny_cluster):
        p = tiny_cluster.params
        d_host, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=1, initiator="host"
        )
        d_dpu, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=1, initiator="dpu"
        )
        assert d_dpu - d_host == pytest.approx(
            2 * (p.dpu_injection_gap - p.host_injection_gap), rel=1e-9
        )

    def test_bw_scale_slows_serialization(self, tiny_cluster):
        size = 1 << 20
        d_full, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=size, initiator="host"
        )
        d_scaled, _ = _measure_transfer(
            tiny_cluster, src_node=0, dst_node=1, size=size, initiator="host",
            bw_scale=0.5,
        )
        assert d_scaled > d_full

    def test_negative_size_rejected(self, tiny_cluster):
        with pytest.raises(ValueError):
            tiny_cluster.fabric.transfer(
                src_node=0, dst_node=1, size=-1, initiator="host"
            )


class TestContention:
    def test_tx_port_serializes_senders(self, small_cluster):
        """Two ranks on node 0 streaming to node 1: total >= serial sum."""
        cl = small_cluster
        p = cl.params
        size = 256 * 1024
        n_msgs = 8

        def sender(sim):
            transfers = [
                cl.fabric.transfer(src_node=0, dst_node=1, size=size, initiator="host")
                for _ in range(n_msgs)
            ]
            yield sim.all_of([t.delivered for t in transfers])
            return sim.now

        t_end = run_proc(cl, sender(cl.sim))
        ser = size / p.wire_bandwidth
        assert t_end >= n_msgs * ser  # the port really serialized them

    def test_incast_does_not_block_unrelated_senders(self):
        """Node0->node1 incast must not slow node2->node3 traffic."""
        cl = Cluster(ClusterSpec(nodes=4, ppn=1))
        size = 512 * 1024

        done = {}

        def blaster(sim):
            ts = [
                cl.fabric.transfer(src_node=0, dst_node=1, size=size, initiator="host")
                for _ in range(16)
            ]
            yield sim.all_of([t.delivered for t in ts])
            done["blast"] = sim.now

        def bystander(sim):
            t = cl.fabric.transfer(src_node=2, dst_node=3, size=size, initiator="host")
            yield t.delivered
            done["side"] = sim.now

        run_proc(cl, _both(cl.sim, blaster, bystander))
        assert done["side"] < done["blast"] / 4

    def test_metrics_count_posts(self, tiny_cluster):
        _measure_transfer(tiny_cluster, src_node=0, dst_node=1, size=100, initiator="host")
        m = tiny_cluster.metrics
        assert m.get("nic.host_posted_msgs") == 1
        assert m.get("nic.host_posted_bytes") == 100


def _both(sim, *progs):
    procs = [sim.process(p(sim)) for p in progs]
    yield sim.all_of(procs)


class TestControl:
    def test_control_lands_in_inbox(self, tiny_cluster):
        cl = tiny_cluster
        inbox = Store(cl.sim)

        def prog(sim):
            ev = cl.fabric.control(
                src_node=0, dst_node=1, initiator="host", inbox=inbox, msg={"hello": 1}
            )
            yield ev
            return sim.now

        t = run_proc(cl, prog(cl.sim))
        assert len(inbox) == 1 and inbox.items[0] == {"hello": 1}
        assert 0 < t < 10e-6

    def test_same_node_control_uses_ctrl_latency(self, tiny_cluster):
        cl = tiny_cluster
        p = cl.params
        inbox = Store(cl.sim)

        def prog(sim):
            yield cl.fabric.control(
                src_node=0, dst_node=0, initiator="host", inbox=inbox, msg="m"
            )
            return sim.now

        t = run_proc(cl, prog(cl.sim))
        ser = max(p.host_injection_gap, p.ctrl_bytes / p.wire_bandwidth)
        assert t == pytest.approx(p.ctrl_latency + 2 * ser, rel=1e-9)
