"""Unit tests for address spaces and page math."""

import numpy as np
import pytest

from repro.hw.memory import PAGE_SIZE, AddressSpace, pages_spanned


class TestPages:
    def test_zero_size_spans_nothing(self):
        assert pages_spanned(0x1000, 0) == 0

    def test_single_byte_spans_one_page(self):
        assert pages_spanned(0x1000, 1) == 1

    def test_exact_page(self):
        assert pages_spanned(0, PAGE_SIZE) == 1

    def test_straddling_boundary(self):
        assert pages_spanned(PAGE_SIZE - 1, 2) == 2

    def test_large_aligned_range(self):
        assert pages_spanned(0, 10 * PAGE_SIZE) == 10


class TestAddressSpace:
    def test_alloc_returns_distinct_addresses(self):
        sp = AddressSpace()
        a = sp.alloc(100)
        b = sp.alloc(100)
        assert a != b and b > a

    def test_alloc_never_reuses_addresses_after_free(self):
        sp = AddressSpace()
        a = sp.alloc(64)
        sp.free(a)
        b = sp.alloc(64)
        assert b != a

    def test_zero_or_negative_alloc_rejected(self):
        sp = AddressSpace()
        with pytest.raises(ValueError):
            sp.alloc(0)
        with pytest.raises(ValueError):
            sp.alloc(-4)

    def test_write_read_roundtrip(self):
        sp = AddressSpace()
        data = np.arange(256, dtype=np.uint8)
        addr = sp.alloc(256)
        sp.write(addr, data)
        assert (sp.read(addr, 256) == data).all()

    def test_alloc_like_copies_bytes(self):
        sp = AddressSpace()
        data = np.arange(32, dtype=np.float64)
        addr = sp.alloc_like(data)
        assert np.allclose(sp.read_as(addr, np.float64, 32), data)

    def test_interior_pointer_view(self):
        sp = AddressSpace()
        addr = sp.alloc(100, fill=7)
        view = sp.view(addr + 10, 20)
        assert (view == 7).all()
        view[:] = 9
        assert (sp.read(addr + 10, 20) == 9).all()
        assert (sp.read(addr, 10) == 7).all()

    def test_view_overrun_rejected(self):
        sp = AddressSpace()
        addr = sp.alloc(100)
        with pytest.raises(ValueError):
            sp.view(addr + 90, 20)

    def test_unknown_address_rejected(self):
        sp = AddressSpace()
        with pytest.raises(KeyError):
            sp.view(0xDEAD, 4)

    def test_free_unknown_rejected(self):
        sp = AddressSpace()
        with pytest.raises(KeyError):
            sp.free(0x1234)

    def test_contains(self):
        sp = AddressSpace()
        addr = sp.alloc(64)
        assert sp.contains(addr, 64)
        assert sp.contains(addr + 32, 32)
        assert not sp.contains(addr + 32, 64)
        assert not sp.contains(addr - 1, 1)

    def test_allocated_bytes_accounting(self):
        sp = AddressSpace()
        a = sp.alloc(100)
        sp.alloc(50)
        assert sp.allocated_bytes == 150
        sp.free(a)
        assert sp.allocated_bytes == 50

    def test_read_is_a_live_readonly_view(self):
        sp = AddressSpace()
        addr = sp.alloc(16, fill=1)
        view = sp.read(addr, 16)
        with pytest.raises(ValueError):
            view[0] = 9  # read-only
        sp.write(addr, np.full(16, 2, np.uint8))
        assert (view == 2).all()  # aliases the live buffer

    def test_read_copy_is_a_snapshot(self):
        sp = AddressSpace()
        addr = sp.alloc(16, fill=1)
        snap = sp.read_copy(addr, 16)
        sp.write(addr, np.full(16, 2, np.uint8))
        assert (snap == 1).all()
        snap[0] = 7  # and it is mutable

    def test_write_overlapping_view_is_memmove(self):
        sp = AddressSpace()
        addr = sp.alloc(8)
        sp.write(addr, np.arange(8, dtype=np.uint8))
        sp.write(addr + 2, sp.read(addr, 6))  # overlapping local copy
        assert (sp.read(addr + 2, 6) == np.arange(6, dtype=np.uint8)).all()

    def test_size_of(self):
        sp = AddressSpace()
        addr = sp.alloc(77)
        assert sp.size_of(addr) == 77

    def test_fill_value(self):
        sp = AddressSpace()
        addr = sp.alloc(10, fill=42)
        assert (sp.read(addr, 10) == 42).all()
