"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import PriorityStore, Resource, SimulationError, Store


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        log = []

        def worker(sim, name):
            req = res.request()
            yield req
            log.append((name, "in", sim.now))
            yield sim.timeout(1.0)
            res.release(req)

        for n in "abcd":
            sim.process(worker(sim, n))
        sim.run()
        starts = [t for _, _, t in log]
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_fifo_admission(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(sim, name):
            req = res.request()
            yield req
            order.append(name)
            yield sim.timeout(1.0)
            res.release(req)

        for n in "xyz":
            sim.process(worker(sim, n))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_release_unqueued_request_rejected(self, sim):
        res = Resource(sim, capacity=1)
        other = Resource(sim, capacity=1)
        req = other.request()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        holder = res.request()  # granted
        waiting = res.request()  # queued
        assert res.queued == 1
        res.release(waiting)  # cancel before grant
        assert res.queued == 0
        res.release(holder)
        assert res.count == 0

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_count_property(self, sim):
        res = Resource(sim, capacity=3)
        reqs = [res.request() for _ in range(2)]
        assert res.count == 2
        for r in reqs:
            res.release(r)
        assert res.count == 0


class TestStore:
    def test_fifo_order(self, sim):
        st = Store(sim)
        got = []

        def getter(sim):
            for _ in range(3):
                got.append((yield st.get()))

        sim.process(getter(sim))
        for x in (1, 2, 3):
            st.put(x)
        sim.run()
        assert got == [1, 2, 3]

    def test_get_blocks_until_put(self, sim):
        st = Store(sim)
        times = []

        def getter(sim):
            yield st.get()
            times.append(sim.now)

        def putter(sim):
            yield sim.timeout(4.0)
            st.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert times == [4.0]

    def test_filtered_get_skips_nonmatching(self, sim):
        st = Store(sim)
        got = []

        def getter(sim):
            got.append((yield st.get(lambda v: v % 2 == 0)))

        sim.process(getter(sim))
        st.put(1)
        st.put(3)
        st.put(4)
        sim.run()
        assert got == [4]
        assert st.items == [1, 3]

    def test_blocked_filter_does_not_block_others(self, sim):
        st = Store(sim)
        got = []

        def picky(sim):
            got.append(("picky", (yield st.get(lambda v: v == "never"))))

        def easy(sim):
            got.append(("easy", (yield st.get())))

        sim.process(picky(sim))
        sim.process(easy(sim))
        st.put("anything")
        sim.run(until=10.0)
        assert got == [("easy", "anything")]

    def test_try_get(self, sim):
        st = Store(sim)
        assert st.try_get() == (False, None)
        st.put("a")
        sim.run()
        assert st.try_get() == (True, "a")

    def test_bounded_capacity_blocks_put(self, sim):
        st = Store(sim, capacity=1)
        accepted = []

        def producer(sim):
            for i in range(3):
                yield st.put(i)
                accepted.append((i, sim.now))

        def consumer(sim):
            for _ in range(3):
                yield sim.timeout(1.0)
                yield st.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert [i for i, _ in accepted] == [0, 1, 2]
        # third put only after a slot freed
        assert accepted[2][1] >= 1.0

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_len(self, sim):
        st = Store(sim)
        st.put("x")
        st.put("y")
        sim.run()
        assert len(st) == 2


class TestPriorityStore:
    def test_smallest_first(self, sim):
        ps = PriorityStore(sim)
        got = []

        def getter(sim):
            for _ in range(3):
                got.append((yield ps.get()))

        for item in [(3, "c"), (1, "a"), (2, "b")]:
            ps.put(item)
        sim.process(getter(sim))
        sim.run()
        assert got == [(1, "a"), (2, "b"), (3, "c")]

    def test_filtered_try_get_preserves_heap(self, sim):
        ps = PriorityStore(sim)
        for item in [(5, "e"), (1, "a"), (3, "c")]:
            ps.put(item)
        sim.run()
        ok, item = ps.try_get(lambda it: it[1] == "c")
        assert ok and item == (3, "c")
        ok, item = ps.try_get()
        assert item == (1, "a")

    def test_late_small_item_wins(self, sim):
        ps = PriorityStore(sim)
        got = []

        def getter(sim):
            yield sim.timeout(2.0)
            got.append((yield ps.get()))

        sim.process(getter(sim))
        ps.put((10, "big"))
        ps.put((1, "small"))
        sim.run()
        assert got == [(1, "small")]
