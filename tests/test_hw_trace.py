"""Tests for the execution tracer and its ASCII timeline."""

import numpy as np
import pytest

from tests.helpers import run_procs
from repro.hw import Cluster, ClusterSpec
from repro.hw.trace import Tracer
from repro.offload import OffloadFramework


def test_spans_record_consume():
    cl = Cluster(ClusterSpec(nodes=1, ppn=1))
    tracer = Tracer.attach(cl)
    ctx = cl.rank_ctx(0)

    def prog(sim):
        yield ctx.consume(5e-6)
        yield sim.timeout(1e-6)  # idle: no span
        yield ctx.consume(2e-6)

    proc = cl.sim.process(prog(cl.sim))
    cl.sim.run(until=proc)
    assert tracer.busy_time("host0") == 7e-6
    assert len(tracer.spans) == 2


def test_arrows_record_transfers():
    cl = Cluster(ClusterSpec(nodes=2, ppn=1))
    tracer = Tracer.attach(cl)

    def prog(sim):
        t = cl.fabric.transfer(src_node=0, dst_node=1, size=1024, initiator="host")
        yield t.delivered

    proc = cl.sim.process(prog(cl.sim))
    cl.sim.run(until=proc)
    assert len(tracer.arrows) == 1
    arrow = tracer.arrows[0]
    assert (arrow.src, arrow.dst, arrow.size) == ("node0", "node1", 1024)
    assert arrow.delivered > arrow.posted


def test_t_min_window_filters_warmup():
    cl = Cluster(ClusterSpec(nodes=1, ppn=1))
    tracer = Tracer.attach(cl)
    ctx = cl.rank_ctx(0)

    def prog(sim):
        yield ctx.consume(5e-6)   # warm-up
        tracer.reset(t_min=sim.now)
        yield ctx.consume(3e-6)   # measured

    proc = cl.sim.process(prog(cl.sim))
    cl.sim.run(until=proc)
    assert tracer.busy_time("host0") == pytest.approx(3e-6)
    assert len(tracer.spans) == 1


def test_render_ascii_shows_lanes_and_arrivals():
    cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
    tracer = Tracer.attach(cl)
    fw = OffloadFramework(cl)
    data = np.arange(4096, dtype=np.uint8)

    def sender(sim):
        ep = fw.endpoint(0)
        addr = ep.ctx.space.alloc_like(data)
        req = yield from ep.send_offload(addr, 4096, dst=1, tag=1)
        yield from ep.wait(req)

    def receiver(sim):
        ep = fw.endpoint(1)
        addr = ep.ctx.space.alloc(4096)
        req = yield from ep.recv_offload(addr, 4096, src=0, tag=1)
        yield from ep.wait(req)

    run_procs(cl, [sender(cl.sim), receiver(cl.sim)])
    text = tracer.render_ascii(width=60)
    assert "host0" in text and "dpu0" in text
    assert "#" in text  # busy time visible
    assert "v" in text  # message arrivals visible


def test_render_empty_trace():
    assert Tracer().render_ascii() == "(empty trace)"


def test_tracing_off_by_default_costs_nothing():
    cl = Cluster(ClusterSpec(nodes=1, ppn=1))
    assert Tracer.of(cl) is None
    ctx = cl.rank_ctx(0)

    def prog(sim):
        yield ctx.consume(1e-6)

    proc = cl.sim.process(prog(cl.sim))
    cl.sim.run(until=proc)  # must simply not crash
