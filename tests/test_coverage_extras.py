"""Remaining small surfaces: render edges, ring collective, misc APIs."""

import pytest

from tests.helpers import pattern
from repro.apps.harness import mean
from repro.baselines import make_stack
from repro.experiments.common import FigureResult, Series
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll


class TestHarnessMean:
    def test_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_plain_average(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class TestFigureRender:
    def test_no_series_renders_header_and_checks(self):
        fig = FigureResult(fig_id="f", title="t")
        fig.check("x", True)
        text = fig.render()
        assert "f" in text and "[PASS] x" in text

    def test_ragged_series_render_nan_pads(self):
        fig = FigureResult(
            fig_id="f", title="t",
            series=[Series("a", ["p", "q"], [1.0, 2.0]),
                    Series("b", ["p", "q"], [3.0])],
        )
        assert "nan" in fig.render()

    def test_notes_rendered(self):
        fig = FigureResult(fig_id="f", title="t", notes="something important")
        assert "something important" in fig.render()


class TestHostMpiRingIbcast:
    def test_backend_method_delivers(self):
        spec = ClusterSpec(nodes=3, ppn=1)
        stack = make_stack("intelmpi", spec)
        data = pattern(4096, seed=21)

        def program(be):
            comm = be.stack.comm_world
            if be.rank == 0:
                addr = be.ctx.space.alloc_like(data)
            else:
                addr = be.ctx.space.alloc(4096)
            req = yield from be.ibcast_ring(comm, 0, addr, 4096)
            yield from be.wait(req)
            assert (be.ctx.space.read(addr, 4096) == data).all()
            return True

        assert all(stack.run(program))

    def test_ring_collective_op_name(self):
        world = MpiWorld(Cluster(ClusterSpec(nodes=3, ppn=1)))

        def program(rt):
            cw = world.comm_world
            addr = rt.ctx.space.alloc(256, fill=1)
            req = yield from coll.ibcast(rt, cw, 0, addr, 256, algorithm="ring")
            yield from rt.wait(req)
            return req.op

        assert set(world.run(program)) == {"ibcast_ring"}


class TestSingleRankDegenerates:
    def test_bcast_alone(self):
        world = MpiWorld(Cluster(ClusterSpec(nodes=1, ppn=1)))

        def program(rt):
            cw = world.comm_world
            addr = rt.ctx.space.alloc(64, fill=5)
            yield from coll.bcast(rt, cw, 0, addr, 64)
            yield from coll.barrier(rt, cw)
            return True

        assert world.run(program) == [True]

    def test_alltoall_alone_is_a_memcpy(self):
        world = MpiWorld(Cluster(ClusterSpec(nodes=1, ppn=1)))

        def program(rt):
            cw = world.comm_world
            sa = rt.ctx.space.alloc(128, fill=9)
            ra = rt.ctx.space.alloc(128)
            yield from coll.alltoall(rt, cw, sa, ra, 128)
            assert (rt.ctx.space.read(ra, 128) == 9).all()
            return True

        assert world.run(program) == [True]


class TestBackendBarrierTiming:
    def test_barrier_time_counts_as_comm(self):
        stack = make_stack("intelmpi", ClusterSpec(nodes=2, ppn=1))

        def program(be):
            yield from be.barrier(be.stack.comm_world)
            return be.time_in_comm

        times = stack.run(program)
        assert all(t > 0 for t in times)


class TestUnknownBcastAlgorithm:
    def test_rejected(self):
        from repro.mpi import MpiError

        world = MpiWorld(Cluster(ClusterSpec(nodes=2, ppn=1)))

        def program(rt):
            addr = rt.ctx.space.alloc(64)
            yield from coll.ibcast(rt, world.comm_world, 0, addr, 64,
                                   algorithm="telepathy")

        with pytest.raises(MpiError, match="unknown broadcast"):
            world.run(program, ranks=[0])
