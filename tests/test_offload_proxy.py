"""Unit tests for proxy internals: counter board, park protocol, queues."""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadError, OffloadFramework
from repro.offload.proxy import PARK, CounterBoard
from repro.sim import Simulator


class TestCounterBoard:
    def test_wait_after_write_is_immediate(self):
        sim = Simulator()
        board = CounterBoard(sim)
        board.write(("k",), 3)
        ev = board.wait(("k",), 2)
        assert ev.triggered  # already satisfied

    def test_wait_before_write_blocks_until_epoch(self):
        sim = Simulator()
        board = CounterBoard(sim)
        woke = []

        def waiter(sim):
            yield board.wait(("k",), 2)
            woke.append(sim.now)

        def writer(sim):
            yield sim.timeout(1.0)
            board.write(("k",), 1)  # not enough
            yield sim.timeout(1.0)
            board.write(("k",), 2)  # satisfies

        sim.process(waiter(sim))
        sim.process(writer(sim))
        sim.run()
        assert woke == [2.0]

    def test_counters_are_monotone(self):
        sim = Simulator()
        board = CounterBoard(sim)
        board.write(("k",), 5)
        board.write(("k",), 3)  # stale write must not regress
        assert board.wait(("k",), 5).triggered

    def test_keys_are_independent(self):
        sim = Simulator()
        board = CounterBoard(sim)
        board.write(("a",), 10)
        assert not board.wait(("b",), 1).triggered

    def test_clear_resets_key(self):
        sim = Simulator()
        board = CounterBoard(sim)
        board.write(("k",), 7)
        board.clear(("k",))
        assert not board.wait(("k",), 1).triggered

    def test_multiple_waiters_same_key(self):
        sim = Simulator()
        board = CounterBoard(sim)
        woke = []

        def waiter(sim, epoch):
            yield board.wait(("k",), epoch)
            woke.append((epoch, sim.now))

        sim.process(waiter(sim, 1))
        sim.process(waiter(sim, 3))

        def writer(sim):
            yield sim.timeout(1.0)
            board.write(("k",), 1)
            yield sim.timeout(1.0)
            board.write(("k",), 3)

        sim.process(writer(sim))
        sim.run()
        assert sorted(woke) == [(1, 1.0), (3, 2.0)]
        assert board.pending_waits == 0

    def test_stale_write_to_unseen_key_initialises(self):
        """Regression: a non-advancing write (epoch 0 -- e.g. a replayed
        duplicate) to a never-seen key used to KeyError on read-back."""
        sim = Simulator()
        board = CounterBoard(sim)
        board.write(("fresh",), 0)  # must not raise
        assert not board.wait(("fresh",), 1).triggered
        board.write(("fresh",), 1)
        assert board.wait(("fresh",), 1).triggered


class TestParkProtocol:
    def test_parked_executor_does_not_block_other_work(self):
        """One proxy serving two host ranks: rank A's pattern waits on a
        counter that only rank B's pattern produces -- Algorithm 1's
        deadlock-avoidance case (single proxy, both sides of the
        dependence)."""
        cl = Cluster(ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=1))
        fw = OffloadFramework(cl)
        size = 2048
        data = pattern(size, seed=8)
        # ranks 0,1 on node 0 share ONE proxy; 0 receives from 2, then
        # 1 sends to 3 -- independent patterns through the same proxy.
        done = {}

        def rank0(sim):
            ep = fw.endpoint(0)
            buf = ep.ctx.space.alloc(size)
            g = ep.group_start()
            ep.group_recv(g, buf, size, src=2, tag=1)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            assert (ep.ctx.space.read(buf, size) == data).all()
            done[0] = sim.now

        def rank1(sim):
            ep = fw.endpoint(1)
            buf = ep.ctx.space.alloc_like(data)
            yield sim.timeout(5e-6)
            g = ep.group_start()
            ep.group_send(g, buf, size, dst=3, tag=2)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            done[1] = sim.now

        def rank2(sim):
            ep = fw.endpoint(2)
            buf = ep.ctx.space.alloc_like(data)
            # delay so rank 0's executor parks on the counter first
            yield sim.timeout(60e-6)
            g = ep.group_start()
            ep.group_send(g, buf, size, dst=0, tag=1)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            done[2] = sim.now

        def rank3(sim):
            ep = fw.endpoint(3)
            buf = ep.ctx.space.alloc(size)
            g = ep.group_start()
            ep.group_recv(g, buf, size, src=1, tag=2)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            done[3] = sim.now

        run_procs(cl, [rank0(cl.sim), rank1(cl.sim), rank2(cl.sim), rank3(cl.sim)])
        fw.assert_quiescent()
        # rank 1's transfer must NOT have waited for rank 0's (which was
        # parked until 60us): it finishes first.
        assert done[1] < done[0]

    def test_park_sentinel_shape(self):
        assert PARK == "park"


class TestProxyDiagnostics:
    def test_unmatched_rts_visible(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)

        def sender(sim):
            ep = fw.endpoint(0)
            addr = ep.ctx.space.alloc(64)
            yield from ep.send_offload(addr, 64, dst=1, tag=9)
            yield sim.timeout(50e-6)

        proc = tiny_cluster.sim.process(sender(tiny_cluster.sim))
        tiny_cluster.sim.run(until=proc)
        engine = fw.proxy_engine_for_rank(0)
        assert engine.queued_rts == 1
        with pytest.raises(OffloadError, match="unmatched RTS"):
            fw.assert_quiescent()

    def test_unknown_inbox_item_raises(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        engine = fw.proxy_engine_for_rank(0)
        engine.ctx.inbox.put(("who_knows", {}))
        with pytest.raises(OffloadError, match="unknown inbox item"):
            tiny_cluster.sim.run()

    def test_extra_handler_dispatch(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)
        engine = fw.proxy_engine_for_rank(0)
        seen = []

        def handler(eng, payload):
            seen.append(payload)
            yield eng.ctx.consume(1e-6)

        engine.extra_handlers["custom"] = handler
        engine.ctx.inbox.put(("custom", {"x": 1}))
        tiny_cluster.sim.run()
        assert seen == [{"x": 1}]
