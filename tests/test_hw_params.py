"""Unit tests for machine parameters and cluster shape."""

import pytest

from repro.hw import ClusterSpec, MachineParams


class TestMachineParams:
    def test_defaults_encode_the_paper_asymmetries(self):
        p = MachineParams.paper_testbed()
        # ARM-posted messages are slower to inject and post.
        assert p.dpu_injection_gap > p.host_injection_gap
        assert p.dpu_post_overhead > p.host_post_overhead
        # DPU DRAM is below the wire rate (staging cannot keep up).
        assert p.dpu_memory_bandwidth < p.wire_bandwidth
        # Cross-registration is costlier than host GVMI registration.
        assert p.xreg_base > p.gvmi_reg_base
        assert p.xreg_per_page > p.gvmi_reg_per_page

    def test_ideal_nic_removes_the_arm_gap(self):
        p = MachineParams.ideal_nic()
        assert p.dpu_injection_gap == p.host_injection_gap
        assert p.dpu_memory_bandwidth == p.host_memory_bandwidth

    def test_with_overrides(self):
        p = MachineParams().with_overrides(wire_bandwidth=1.0)
        assert p.wire_bandwidth == 1.0
        assert MachineParams().wire_bandwidth != 1.0

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineParams().wire_bandwidth = 0


class TestClusterSpec:
    def test_world_size(self):
        assert ClusterSpec(nodes=4, ppn=8).world_size == 32

    def test_block_rank_placement(self):
        spec = ClusterSpec(nodes=3, ppn=4)
        assert spec.node_of_rank(0) == 0
        assert spec.node_of_rank(3) == 0
        assert spec.node_of_rank(4) == 1
        assert spec.node_of_rank(11) == 2
        assert spec.local_rank(5) == 1

    def test_proxy_mapping_is_modulo(self):
        # Paper: proxy_local_rank = host_source_rank % num_proxies_per_dpu
        spec = ClusterSpec(nodes=2, ppn=8, proxies_per_dpu=4)
        assert spec.proxy_of_rank(0) == 0
        assert spec.proxy_of_rank(5) == 1
        assert spec.proxy_of_rank(11) == 3

    def test_rank_out_of_range(self):
        spec = ClusterSpec(nodes=2, ppn=2)
        with pytest.raises(ValueError):
            spec.node_of_rank(4)
        with pytest.raises(ValueError):
            spec.proxy_of_rank(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nodes": 0},
            {"ppn": 0},
            {"proxies_per_dpu": 0},
            {"proxies_per_dpu": 9, "dpu_cores": 8},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)


class TestClusterAssembly:
    def test_structure(self, small_cluster):
        cl = small_cluster
        assert len(cl.nodes) == 2
        assert len(cl.ranks) == 4
        assert len(cl.proxies) == 4
        assert cl.rank_ctx(3).node_id == 1
        assert cl.rank_ctx(3).local_id == 1

    def test_proxy_for_rank_is_on_same_node(self, small_cluster):
        for rank in range(small_cluster.world_size):
            proxy = small_cluster.proxy_for_rank(rank)
            assert proxy.node_id == small_cluster.spec.node_of_rank(rank)
            assert proxy.kind == "dpu"

    def test_same_node(self, small_cluster):
        assert small_cluster.same_node(0, 1)
        assert not small_cluster.same_node(1, 2)

    def test_contexts_have_disjoint_address_spaces(self, small_cluster):
        a = small_cluster.rank_ctx(0).space
        b = small_cluster.rank_ctx(1).space
        addr = a.alloc(10)
        assert not b.contains(addr)
