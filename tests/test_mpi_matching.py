"""Unit tests for MPI envelope matching rules."""

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Envelope, MpiRequest
from repro.mpi.matching import MatchingEngine, UnexpectedMessage


def env(src=0, dst=1, tag=5, comm=0):
    return Envelope(src=src, dst=dst, tag=tag, comm_id=comm)


def recv(peer=0, tag=5, comm=0):
    return MpiRequest(kind="recv", rank=1, peer=peer, tag=tag, comm_id=comm,
                      addr=0, size=0)


class TestEnvelope:
    def test_exact_match(self):
        assert env().matches_recv(0, 5, 0)

    def test_any_source(self):
        assert env(src=3).matches_recv(ANY_SOURCE, 5, 0)

    def test_any_tag(self):
        assert env(tag=9).matches_recv(0, ANY_TAG, 0)

    def test_comm_must_match(self):
        assert not env(comm=1).matches_recv(ANY_SOURCE, ANY_TAG, 0)

    def test_wrong_src(self):
        assert not env(src=2).matches_recv(0, 5, 0)

    def test_wrong_tag(self):
        assert not env(tag=6).matches_recv(0, 5, 0)


class TestMatchingEngine:
    def test_posted_recv_matches_arrival(self):
        m = MatchingEngine()
        r = recv()
        assert m.post_recv(r) is None
        assert m.match_arrival(env()) is r
        assert m.idle()

    def test_fifo_among_equal_receives(self):
        m = MatchingEngine()
        r1, r2 = recv(), recv()
        m.post_recv(r1)
        m.post_recv(r2)
        assert m.match_arrival(env()) is r1
        assert m.match_arrival(env()) is r2

    def test_wildcard_recv_matches_any_source(self):
        m = MatchingEngine()
        r = recv(peer=ANY_SOURCE)
        m.post_recv(r)
        assert m.match_arrival(env(src=42)) is r

    def test_specific_recv_skipped_for_wrong_source(self):
        m = MatchingEngine()
        specific = recv(peer=7)
        wild = recv(peer=ANY_SOURCE)
        m.post_recv(specific)
        m.post_recv(wild)
        assert m.match_arrival(env(src=3)) is wild
        assert m.posted_count == 1

    def test_unexpected_consumed_by_later_recv(self):
        m = MatchingEngine()
        um = UnexpectedMessage(env(), "eager", b"payload", 7, 0.0)
        m.add_unexpected(um)
        got = m.post_recv(recv())
        assert got is um
        assert m.unexpected_count == 0

    def test_unexpected_fifo_order(self):
        m = MatchingEngine()
        u1 = UnexpectedMessage(env(), "eager", b"1", 1, 0.0)
        u2 = UnexpectedMessage(env(), "eager", b"2", 1, 1.0)
        m.add_unexpected(u1)
        m.add_unexpected(u2)
        assert m.post_recv(recv()) is u1
        assert m.post_recv(recv()) is u2

    def test_no_match_queues_recv(self):
        m = MatchingEngine()
        r = recv(tag=9)
        m.add_unexpected(UnexpectedMessage(env(tag=5), "eager", b"", 0, 0.0))
        assert m.post_recv(r) is None
        assert m.posted_count == 1 and m.unexpected_count == 1

    def test_cancel_recv(self):
        m = MatchingEngine()
        r = recv()
        m.post_recv(r)
        assert m.cancel_recv(r)
        assert not m.cancel_recv(r)
        assert m.match_arrival(env()) is None
