"""Grep-style lint: experiment randomness must flow through spawn-keys.

The parallel sweep engine's determinism contract requires every seed
under ``src/repro/experiments/`` to derive from the parent RNG spec via
:mod:`repro.sim.rng` (``RngRegistry`` named streams / ``spawn_seed``
per-point keys) -- never from process-global RNG state, object
identity, or wall clock, all of which silently vary with job count and
completion order.  This test fails the build on new offenders with a
pointer at the exact line.
"""

from __future__ import annotations

import re
from pathlib import Path

EXPERIMENTS_DIR = (
    Path(__file__).resolve().parent.parent / "src" / "repro" / "experiments"
)

#: (pattern, why it is banned under src/repro/experiments/)
FORBIDDEN = [
    (re.compile(r"^\s*(import random\b|from random import)"),
     "stdlib `random` is process-global state; use repro.sim.rng streams"),
    (re.compile(r"\brandom\.(seed|Random)\s*\("),
     "stdlib `random` seeding; use RngRegistry / spawn_seed"),
    (re.compile(r"\b(np|numpy)\.random\.seed\s*\("),
     "legacy numpy global seeding; use RngRegistry named streams"),
    (re.compile(r"\b(np|numpy)\.random\.RandomState\s*\("),
     "legacy numpy RandomState; use RngRegistry named streams"),
    (re.compile(r"\bdefault_rng\s*\(\s*\)"),
     "unseeded default_rng() draws from the OS; derive a spawn-key seed"),
    (re.compile(r"seed\s*=\s*id\s*\("),
     "id() varies per process; derive the seed with spawn_seed(...)"),
    (re.compile(r"(seed\s*=\s*time\.|seed\s*\(\s*time\.)"),
     "wall-clock seeding breaks serial == parallel; use spawn_seed(...)"),
]


def test_no_global_state_seeding_in_experiments():
    assert EXPERIMENTS_DIR.is_dir(), EXPERIMENTS_DIR
    offenders = []
    for path in sorted(EXPERIMENTS_DIR.rglob("*.py")):
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            if "rng-lint: allow" in line:
                continue
            for pattern, why in FORBIDDEN:
                if pattern.search(line):
                    offenders.append(
                        f"{path.relative_to(EXPERIMENTS_DIR.parent.parent)}"
                        f":{lineno}: {line.strip()}\n    -> {why}")
    assert not offenders, (
        "global-state/wall-clock seeding found under src/repro/experiments/ "
        "(route it through repro.sim.rng spawn-keys instead):\n"
        + "\n".join(offenders)
    )


def test_lint_patterns_catch_known_offenders():
    """The lint must actually fire on the idioms it bans."""
    bad_lines = [
        "import random",
        "from random import Random",
        "r = random.Random(id(self))",
        "random.seed(42)",
        "np.random.seed(0)",
        "numpy.random.RandomState(7)",
        "gen = default_rng()",
        "jitter = make(seed=id(cluster))",
        "rng.seed(time.time())",
        "stream = build(seed=time.time_ns())",
    ]
    for line in bad_lines:
        assert any(p.search(line) for p, _ in FORBIDDEN), (
            f"lint misses known-bad idiom: {line!r}")
    good_lines = [
        "gen = registry.stream('compute-jitter')",
        "seed = spawn_seed(root, label, index)",
        "gen = np.random.default_rng(spawn_seed(root, 'faults', i))",
        "child = cluster.rng.spawn('sweep', index)",
    ]
    for line in good_lines:
        assert not any(p.search(line) for p, _ in FORBIDDEN), (
            f"lint false-positives on sanctioned idiom: {line!r}")
