"""Determinism guard: one seed, one fault sequence, one trace.

The acceptance bar for the chaos machinery is reproducibility -- a
seeded FaultPlan scenario run twice must produce byte-identical fault
traces, metrics, and completion times, or chaos bugs become
unreproducible heisenbugs.
"""

from tests.test_faults_recovery import (
    _chaos_cluster,
    _group_exchange,
    _pingpong,
)
from repro.hw import OFFLOAD_CONTROL_KINDS, FaultSpec, ProxyKillPlan
from repro.offload import OffloadFramework


def _run_chaos_pingpong(seed):
    cl, plan = _chaos_cluster(FaultSpec(
        drop_prob=0.05, dup_prob=0.05, delay_prob=0.1,
        error_cqe_prob=0.2, error_initiators=("dpu",),
        control_kinds=OFFLOAD_CONTROL_KINDS), seed=seed)
    fw = OffloadFramework(cl)
    finish = _pingpong(cl, fw, iters=6, size=8192)
    return {
        "trace": plan.trace(),
        "stats": dict(plan.stats),
        "metrics": cl.metrics.snapshot(),
        "finish": tuple(finish),
        "fallback_log": tuple(fw.fallback_log),
    }


def _run_chaos_group(seed):
    cl, plan = _chaos_cluster(
        FaultSpec(drop_prob=0.05, control_kinds=OFFLOAD_CONTROL_KINDS),
        kills=[ProxyKillPlan(proxy_gid=0, at=50e-6, restart_after=60e-6)],
        seed=seed)
    fw = OffloadFramework(cl)
    finish = _group_exchange(cl, fw, size=128 * 1024)
    return {
        "trace": plan.trace(),
        "stats": dict(plan.stats),
        "metrics": cl.metrics.snapshot(),
        "finish": tuple(finish),
    }


class TestSeededReruns:
    def test_pingpong_trace_is_byte_identical(self):
        a, b = _run_chaos_pingpong(23), _run_chaos_pingpong(23)
        assert a["trace"] == b["trace"]
        assert a == b

    def test_group_kill_trace_is_byte_identical(self):
        a, b = _run_chaos_group(31), _run_chaos_group(31)
        assert a["trace"] == b["trace"]
        assert a == b

    def test_different_seed_different_faults(self):
        a, b = _run_chaos_pingpong(23), _run_chaos_pingpong(24)
        assert a["trace"] != b["trace"]

    def test_trace_is_immutable_tuple(self):
        run = _run_chaos_pingpong(23)
        assert isinstance(run["trace"], tuple)
        assert all(isinstance(ev, tuple) and len(ev) == 3
                   for ev in run["trace"])


class TestCleanRunUnaffected:
    def test_clean_runs_identical_with_module_loaded(self):
        """Importing/arming nothing: two plan-free runs stay identical."""
        def clean():
            from repro.hw import Cluster, ClusterSpec

            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
            fw = OffloadFramework(cl)
            finish = _pingpong(cl, fw, iters=3, size=4096)
            return tuple(finish), cl.metrics.snapshot()

        assert clean() == clean()

    def test_inert_plan_changes_nothing(self):
        """An installed all-zero-probability plan must not perturb timing."""
        from repro.hw import Cluster, ClusterSpec, FaultPlan

        def run(with_plan):
            cl = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
            if with_plan:
                cl.install_faults(FaultPlan(FaultSpec(), seed=1))
            fw = OffloadFramework(cl)
            return tuple(_pingpong(cl, fw, iters=3, size=4096))

        assert run(False) == run(True)
