"""Property tests for the parallel sweep scheduler's pure core.

The process pool itself is exercised end-to-end in
``test_parallel_determinism.py``; here Hypothesis drives the two pieces
the determinism claim reduces to:

* :func:`merge_messages` -- arbitrary point lists completing in
  arbitrary permutations (any shard assignment produces *some*
  permutation of completion messages) always merge to the same
  point-ordered result, and malformed completions are rejected; and
* per-point seed derivation -- pure in ``(root, label, index)``, hence
  independent of job count, shard size, and completion order by
  construction.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import (
    PointFailure,
    merge_messages,
    point_seeds,
    sweep_map,
)
from repro.sim.rng import RngRegistry, spawn_seed

import pytest


# ---------------------------------------------------------------------------
# merge_messages
# ---------------------------------------------------------------------------

@given(values=st.lists(st.integers(), max_size=50), data=st.data())
def test_merge_invariant_under_completion_order(values, data):
    """Any completion permutation merges to the point-ordered list."""
    messages = [("ok", i, v) for i, v in enumerate(values)]
    shuffled = data.draw(st.permutations(messages))
    assert merge_messages(len(values), shuffled) == values


@given(
    values=st.lists(st.integers(), min_size=1, max_size=50),
    failed=st.data(),
)
def test_merge_keeps_failures_in_their_slots(values, failed):
    fail_at = failed.draw(st.sets(
        st.integers(min_value=0, max_value=len(values) - 1), min_size=1))
    messages = []
    for i, v in enumerate(values):
        if i in fail_at:
            messages.append(("err", i, PointFailure(
                index=i, point=v, error_type="Boom", message="x")))
        else:
            messages.append(("ok", i, v))
    shuffled = failed.draw(st.permutations(messages))
    merged = merge_messages(len(values), shuffled)
    for i, v in enumerate(values):
        if i in fail_at:
            assert isinstance(merged[i], PointFailure)
            assert merged[i].index == i
        else:
            assert merged[i] == v


@given(values=st.lists(st.integers(), min_size=1, max_size=20), data=st.data())
def test_merge_rejects_duplicate_completions(values, data):
    messages = [("ok", i, v) for i, v in enumerate(values)]
    dup = data.draw(st.sampled_from(messages))
    with pytest.raises(ValueError, match="completed twice"):
        merge_messages(len(values), messages + [dup])


@given(values=st.lists(st.integers(), min_size=1, max_size=20), data=st.data())
def test_merge_rejects_missing_completions(values, data):
    messages = [("ok", i, v) for i, v in enumerate(values)]
    drop = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    partial = [m for m in messages if m[1] != drop]
    with pytest.raises(ValueError, match="never completed"):
        merge_messages(len(values), partial)


def test_merge_rejects_out_of_range_and_unknown_kind():
    with pytest.raises(ValueError, match="out of range"):
        merge_messages(1, [("ok", 5, None)])
    with pytest.raises(ValueError, match="unknown message kind"):
        merge_messages(1, [("wat", 0, None)])


# ---------------------------------------------------------------------------
# per-point seeds
# ---------------------------------------------------------------------------

@given(
    root=st.integers(min_value=0, max_value=2**31 - 1),
    label=st.text(min_size=1, max_size=20),
    n=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=1, max_value=64),
)
def test_point_seeds_are_prefix_stable(root, label, n, k):
    """Seeds depend only on (root, label, index): shrinking or growing
    the sweep -- or sharding it differently -- never reseeds a point."""
    a = point_seeds(root, label, n)
    b = point_seeds(root, label, k)
    m = min(n, k)
    assert a[:m] == b[:m]
    assert len(set(a)) == n  # distinct per point


@given(
    root=st.integers(min_value=0, max_value=2**31 - 1),
    label=st.text(min_size=1, max_size=20),
    parts=st.lists(
        st.one_of(st.integers(), st.text(max_size=8)), max_size=4),
)
def test_spawn_seed_is_pure_and_label_sensitive(root, label, parts):
    assert spawn_seed(root, label, *parts) == spawn_seed(root, label, *parts)
    assert spawn_seed(root, label, *parts) != spawn_seed(root + 1, label, *parts)


@given(root=st.integers(min_value=0, max_value=2**31 - 1),
       key=st.integers(min_value=0, max_value=1000))
def test_registry_spawn_reproducible_streams(root, key):
    """Two independently spawned children with the same key draw the
    same stream -- what makes worker-side RNG identical to serial."""
    a = RngRegistry(root).spawn("sweep", key).stream("jitter")
    b = RngRegistry(root).spawn("sweep", key).stream("jitter")
    assert a.random(4).tolist() == b.random(4).tolist()
    other = RngRegistry(root).spawn("sweep", key + 1).stream("jitter")
    assert a.random(4).tolist() != other.random(4).tolist()


# ---------------------------------------------------------------------------
# scheduler (serial mode is the spec; pool mode is pinned in
# test_parallel_determinism.py against it)
# ---------------------------------------------------------------------------

def _poly(x, y):
    return 3 * x + y


@given(points=st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50),
              st.integers(min_value=-50, max_value=50)),
    max_size=30))
@settings(max_examples=25)
def test_sweep_map_serial_matches_plain_map(points):
    assert sweep_map(_poly, points, jobs=1) == [_poly(*p) for p in points]
