"""Tests for the extended MPI surface: gather/scatter, sendrecv, probe."""

import numpy as np
import pytest

from repro.hw import Cluster, ClusterSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld
from repro.mpi import collectives as coll


@pytest.fixture(params=[(2, 2), (3, 2), (2, 3), (7, 1)])
def gworld(request):
    nodes, ppn = request.param
    return MpiWorld(Cluster(ClusterSpec(nodes=nodes, ppn=ppn)))


class TestGather:
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_blocks_reach_root(self, gworld, root):
        world = gworld
        P = world.size
        blk = 128

        def program(rt):
            cw = world.comm_world
            sa = rt.ctx.space.alloc(blk, fill=(rt.rank % 200) + 1)
            ra = rt.ctx.space.alloc(P * blk) if rt.rank == root else 0
            yield from coll.gather(rt, cw, root, sa, ra, blk)
            if rt.rank == root:
                out = rt.ctx.space.read(ra, P * blk)
                for j in range(P):
                    assert (out[j * blk:(j + 1) * blk] == (j % 200) + 1).all(), j
            return True

        assert all(world.run(program))
        world.assert_quiescent()

    def test_gather_message_count_is_logarithmic(self):
        """Binomial gather: each non-root sends exactly once."""
        world = MpiWorld(Cluster(ClusterSpec(nodes=4, ppn=2)))
        P = world.size
        blk = 64

        def program(rt):
            cw = world.comm_world
            sa = rt.ctx.space.alloc(blk, fill=1)
            ra = rt.ctx.space.alloc(P * blk) if rt.rank == 0 else 0
            yield from coll.gather(rt, cw, 0, sa, ra, blk)
            return True

        world.run(program)
        m = world.cluster.metrics
        total_msgs = (m.get("mpi.eager_sends") + m.get("mpi.rndv_sends")
                      + m.get("mpi.shm_sends"))
        assert total_msgs == P - 1  # one aggregated send per non-root


class TestScatter:
    @pytest.mark.parametrize("root", [0, 2])
    def test_each_rank_gets_its_block(self, gworld, root):
        world = gworld
        P = world.size
        if root >= P:
            pytest.skip("root outside this world")
        blk = 96

        def program(rt):
            cw = world.comm_world
            if rt.rank == root:
                sbuf = np.concatenate(
                    [np.full(blk, (j % 200) + 1, np.uint8) for j in range(P)])
                sa = rt.ctx.space.alloc_like(sbuf)
            else:
                sa = 0
            ra = rt.ctx.space.alloc(blk)
            yield from coll.scatter(rt, cw, root, sa, ra, blk)
            assert (rt.ctx.space.read(ra, blk) == (rt.rank % 200) + 1).all()
            return True

        assert all(world.run(program))
        world.assert_quiescent()

    def test_scatter_then_gather_roundtrip(self, world):
        P = world.size
        blk = 64

        def program(rt):
            cw = world.comm_world
            if rt.rank == 0:
                sbuf = np.arange(P * blk, dtype=np.uint8)
                sa = rt.ctx.space.alloc_like(sbuf)
                ga = rt.ctx.space.alloc(P * blk)
            else:
                sa = ga = 0
            ra = rt.ctx.space.alloc(blk)
            yield from coll.scatter(rt, cw, 0, sa, ra, blk)
            yield from coll.gather(rt, cw, 0, ra, ga, blk)
            if rt.rank == 0:
                assert (rt.ctx.space.read(ga, P * blk)
                        == np.arange(P * blk, dtype=np.uint8)).all()
            return True

        assert all(world.run(program))


class TestSendrecv:
    def test_ring_shift_without_deadlock(self, world):
        """Every rank simultaneously sends right and receives left --
        the classic pattern blocking send/recv would deadlock on."""
        P = world.size
        size = 64 * 1024  # rendezvous: a blocking implementation hangs

        def program(rt):
            cw = world.comm_world
            right = (rt.rank + 1) % P
            left = (rt.rank - 1) % P
            sa = rt.ctx.space.alloc(size, fill=(rt.rank % 200) + 1)
            ra = rt.ctx.space.alloc(size)
            yield from rt.sendrecv(cw, right, sa, size, left, ra, size,
                                   sendtag=3, recvtag=3)
            assert (rt.ctx.space.read(ra, size) == (left % 200) + 1).all()
            return True

        assert all(world.run(program))
        world.assert_quiescent()


class TestProbe:
    def test_iprobe_sees_unexpected_message(self, world):
        out = {}

        def program(rt):
            cw = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(256, fill=7)
                req = yield from rt.isend(cw, 2, addr, 256, tag=11)
                yield from rt.wait(req)
            elif rt.rank == 2:
                yield rt.ctx.consume(50e-6)  # message already arrived
                flag, env = yield from rt.iprobe(cw, src=0, tag=11)
                out["flag"] = flag
                out["src"] = env.src if env else None
                # the message was not consumed: a recv still finds it
                addr = rt.ctx.space.alloc(256)
                req = yield from rt.irecv(cw, 0, addr, 256, tag=11)
                yield from rt.wait(req)
                assert (rt.ctx.space.read(addr, 256) == 7).all()
            return True

        assert all(world.run(program))
        assert out == {"flag": True, "src": 0}

    def test_iprobe_no_message(self, world):
        def program(rt):
            flag, env = yield from rt.iprobe(world.comm_world)
            return flag, env

        results = world.run(program, ranks=[0])
        assert results == [(False, None)]

    def test_iprobe_wildcards(self, world):
        def program(rt):
            cw = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(64, fill=1)
                req = yield from rt.isend(cw, 2, addr, 64, tag=99)
                yield from rt.wait(req)
            elif rt.rank == 2:
                yield rt.ctx.consume(50e-6)
                flag, env = yield from rt.iprobe(cw, src=ANY_SOURCE, tag=ANY_TAG)
                assert flag and env.tag == 99
                addr = rt.ctx.space.alloc(64)
                req = yield from rt.irecv(cw, ANY_SOURCE, addr, 64, tag=ANY_TAG)
                yield from rt.wait(req)
            return True

        assert all(world.run(program))
