"""Host collectives at awkward communicator sizes, against numpy.

The algorithm unit tests elsewhere pin tree shapes and message counts;
here every host collective runs end-to-end on *non-power-of-two* and
*single-rank* communicators -- the sizes where vrank rotation,
incomplete binomial trees, and ring wrap-around actually bite -- and
the resulting payload bytes are checked against the straightforward
numpy rendition of the same collective.

Reductions use integer-valued float64 payloads so the sum is exact in
any association order: "matches numpy" then means *byte-identical*,
not merely close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll

#: (nodes, ppn) per communicator size: 1 rank, and the non-powers-of-two
#: 3, 5, and 6 (6 split across multi-rank nodes so intra-node paths run).
WORLD_SHAPES = {1: (1, 1), 3: (3, 1), 5: (5, 1), 6: (3, 2)}

NON_POW2 = [3, 5, 6]
ALL_SIZES = [1, 3, 5, 6]


def _world(p: int) -> MpiWorld:
    nodes, ppn = WORLD_SHAPES[p]
    return MpiWorld(Cluster(ClusterSpec(nodes=nodes, ppn=ppn)))


def _values(p: int, count: int) -> list[np.ndarray]:
    """Integer-valued float64 contribution of each rank."""
    return [np.arange(count, dtype=np.float64) * (r + 1) + r
            for r in range(p)]


class TestBcast:
    def _check(self, p, algorithm, words):
        world = _world(p)
        root = p // 2
        data = np.arange(words, dtype=np.float64) * 3 + 1
        out = {}

        def prog(rt):
            if rt.rank == root:
                addr = rt.ctx.space.alloc_like(data)
            else:
                addr = rt.ctx.space.alloc(data.nbytes)
            yield from coll.bcast(rt, world.comm_world, root, addr,
                                  data.nbytes, algorithm=algorithm)
            out[rt.rank] = rt.ctx.space.read_as(
                addr, np.float64, words).copy()

        world.run(prog)
        for r in range(p):
            assert out[r].tobytes() == data.tobytes(), f"rank {r}"

    @pytest.mark.parametrize("p", ALL_SIZES)
    @pytest.mark.parametrize("algorithm", ["binomial", "ring"])
    def test_matches_source(self, p, algorithm):
        self._check(p, algorithm, words=512)

    @pytest.mark.parametrize("p", NON_POW2)
    def test_scag_above_threshold(self, p):
        # "binomial" auto-switches to scatter+allgather past
        # SCAG_THRESHOLD when the communicator has more than 2 ranks;
        # non-pow2 sizes exercise its uneven segment bounds.
        words = (coll.SCAG_THRESHOLD + 32 * 1024) // 8
        self._check(p, "binomial", words=words)


class TestBarrier:
    @pytest.mark.parametrize("p", ALL_SIZES)
    def test_completes(self, p):
        world = _world(p)
        done = []

        def prog(rt):
            yield from coll.barrier(rt, world.comm_world)
            done.append(rt.rank)

        world.run(prog)
        assert sorted(done) == list(range(p))


class TestAllgather:
    @pytest.mark.parametrize("p", ALL_SIZES)
    def test_matches_concatenate(self, p):
        world = _world(p)
        blk_words = 64
        blocks = _values(p, blk_words)
        ref = np.concatenate(blocks)
        out = {}

        def prog(rt):
            sa = rt.ctx.space.alloc_like(blocks[rt.rank])
            ra = rt.ctx.space.alloc(p * blk_words * 8)
            yield from coll.allgather(rt, world.comm_world, sa, ra,
                                      blk_words * 8)
            out[rt.rank] = rt.ctx.space.read_as(
                ra, np.float64, p * blk_words).copy()

        world.run(prog)
        for r in range(p):
            assert out[r].tobytes() == ref.tobytes(), f"rank {r}"


class TestReduce:
    @pytest.mark.parametrize("p", ALL_SIZES)
    def test_matches_sum_at_root(self, p):
        world = _world(p)
        count = 96
        vals = _values(p, count)
        ref = np.sum(vals, axis=0)
        root = p - 1
        out = {}

        def prog(rt):
            addr = rt.ctx.space.alloc_like(vals[rt.rank])
            req = yield from coll.ireduce(rt, world.comm_world, root, addr,
                                          count * 8)
            yield from rt.wait(req)
            out[rt.rank] = rt.ctx.space.read_as(
                addr, np.float64, count).copy()

        world.run(prog)
        assert out[root].tobytes() == ref.tobytes()


class TestAllreduce:
    @pytest.mark.parametrize("p", ALL_SIZES)
    def test_matches_sum_everywhere(self, p):
        world = _world(p)
        count = 80
        vals = _values(p, count)
        ref = np.sum(vals, axis=0)
        out = {}

        def prog(rt):
            addr = rt.ctx.space.alloc_like(vals[rt.rank])
            yield from coll.allreduce(rt, world.comm_world, addr, count * 8)
            out[rt.rank] = rt.ctx.space.read_as(
                addr, np.float64, count).copy()

        world.run(prog)
        for r in range(p):
            assert out[r].tobytes() == ref.tobytes(), f"rank {r}"


class TestGatherScatter:
    @pytest.mark.parametrize("p", NON_POW2)
    def test_gather_matches(self, p):
        world = _world(p)
        blk_words = 32
        blocks = _values(p, blk_words)
        ref = np.concatenate(blocks)
        out = {}

        def prog(rt):
            sa = rt.ctx.space.alloc_like(blocks[rt.rank])
            ra = rt.ctx.space.alloc(p * blk_words * 8)
            yield from coll.gather(rt, world.comm_world, 0, sa, ra,
                                   blk_words * 8)
            out[rt.rank] = rt.ctx.space.read_as(
                ra, np.float64, p * blk_words).copy()

        world.run(prog)
        assert out[0].tobytes() == ref.tobytes()

    @pytest.mark.parametrize("p", NON_POW2)
    def test_scatter_matches(self, p):
        world = _world(p)
        blk_words = 32
        blocks = _values(p, blk_words)
        packed = np.concatenate(blocks)
        out = {}

        def prog(rt):
            if rt.rank == 0:
                sa = rt.ctx.space.alloc_like(packed)
            else:
                sa = rt.ctx.space.alloc(p * blk_words * 8)
            ra = rt.ctx.space.alloc(blk_words * 8)
            yield from coll.scatter(rt, world.comm_world, 0, sa, ra,
                                    blk_words * 8)
            out[rt.rank] = rt.ctx.space.read_as(
                ra, np.float64, blk_words).copy()

        world.run(prog)
        for r in range(p):
            assert out[r].tobytes() == blocks[r].tobytes(), f"rank {r}"
