"""Deep tests of group-pattern execution semantics (Fig 10 / Algorithm 1)."""


from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadFramework


def _cluster(nodes=2, ppn=1, proxies=1):
    return Cluster(ClusterSpec(nodes=nodes, ppn=ppn, proxies_per_dpu=proxies))


class TestBarrierSegments:
    def test_multi_barrier_chain(self):
        """A -> B -> A -> B relay: each hop reuses the bytes the previous
        hop delivered, so any barrier violation corrupts the payload."""
        cl = _cluster()
        fw = OffloadFramework(cl)
        size = 4096
        d0 = pattern(size, seed=11)

        def pe0(sim):
            ep = fw.endpoint(0)
            buf = ep.ctx.space.alloc_like(d0)
            back = ep.ctx.space.alloc(size)
            g = ep.group_start()
            ep.group_send(g, buf, size, dst=1, tag=1)      # hop 1
            ep.group_barrier(g)
            ep.group_recv(g, back, size, src=1, tag=2)     # hop 2 (echo)
            ep.group_barrier(g)
            ep.group_send(g, back, size, dst=1, tag=3)     # hop 3
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return True

        def pe1(sim):
            ep = fw.endpoint(1)
            rx = ep.ctx.space.alloc(size)
            final = ep.ctx.space.alloc(size)
            g = ep.group_start()
            ep.group_recv(g, rx, size, src=0, tag=1)
            ep.group_barrier(g)
            ep.group_send(g, rx, size, dst=0, tag=2)       # echo what arrived
            ep.group_barrier(g)
            ep.group_recv(g, final, size, src=0, tag=3)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            assert (ep.ctx.space.read(rx, size) == d0).all()
            assert (ep.ctx.space.read(final, size) == d0).all()
            return True

        assert all(run_procs(cl, [pe0(cl.sim), pe1(cl.sim)]))
        fw.assert_quiescent()

    def test_sends_before_barrier_complete_before_sends_after(self):
        """Ordering: with a barrier between two sends to the same peer,
        the first segment's bytes must land before the second posts --
        observable because the second send overwrites the shared source
        buffer *at call-record time* ... here we check arrival order via
        distinct tags landing in distinct buffers in recorded order."""
        cl = _cluster(nodes=3)
        fw = OffloadFramework(cl)
        size = 2048
        arrivals = {}

        def sender(sim):
            ep = fw.endpoint(0)
            a = ep.ctx.space.alloc(size, fill=1)
            b = ep.ctx.space.alloc(size, fill=2)
            g = ep.group_start()
            ep.group_send(g, a, size, dst=1, tag=1)
            ep.group_barrier(g)
            ep.group_send(g, b, size, dst=2, tag=2)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return True

        def make_receiver(rank, tag):
            def prog(sim):
                ep = fw.endpoint(rank)
                buf = ep.ctx.space.alloc(size)
                g = ep.group_start()
                ep.group_recv(g, buf, size, src=0, tag=tag)
                ep.group_barrier(g)
                ep.group_end(g)
                yield from ep.group_call(g)
                yield from ep.group_wait(g)
                arrivals[rank] = sim.now
                return True

            return prog

        run_procs(cl, [sender(cl.sim),
                       make_receiver(1, 1)(cl.sim),
                       make_receiver(2, 2)(cl.sim)])
        # rank 2's data was gated behind the sender's barrier
        assert arrivals[2] > arrivals[1]

    def test_asymmetric_barrier_counts_unsupported_semantics_documented(self):
        """The paper's Algorithm 1 assumes communicating ranks record the
        same number of barriers.  Matching patterns (equal counts) must
        complete; this test pins the supported contract."""
        cl = _cluster()
        fw = OffloadFramework(cl)
        size = 512

        def pe0(sim):
            ep = fw.endpoint(0)
            buf = ep.ctx.space.alloc(size, fill=4)
            g = ep.group_start()
            ep.group_send(g, buf, size, dst=1, tag=1)
            ep.group_barrier(g)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return True

        def pe1(sim):
            ep = fw.endpoint(1)
            buf = ep.ctx.space.alloc(size)
            g = ep.group_start()
            ep.group_recv(g, buf, size, src=0, tag=1)
            ep.group_barrier(g)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            assert (ep.ctx.space.read(buf, size) == 4).all()
            return True

        assert all(run_procs(cl, [pe0(cl.sim), pe1(cl.sim)]))


class TestStencilLikeGroupPattern:
    def test_2d_neighbour_exchange_recorded_once(self):
        """A 4-rank 2x2 periodic halo exchange as one group pattern per
        rank, repeated with cache hits."""
        cl = Cluster(ClusterSpec(nodes=4, ppn=1, proxies_per_dpu=1))
        fw = OffloadFramework(cl)
        size = 1024
        coords = {r: (r // 2, r % 2) for r in range(4)}
        rank_of = {v: k for k, v in coords.items()}

        def make(rank):
            x, y = coords[rank]
            right = rank_of[((x + 1) % 2, y)]
            left = rank_of[((x - 1) % 2, y)]
            up = rank_of[(x, (y + 1) % 2)]
            down = rank_of[(x, (y - 1) % 2)]

            def prog(sim):
                ep = fw.endpoint(rank)
                sb = {d: ep.ctx.space.alloc(size, fill=rank * 4 + i + 1)
                      for i, d in enumerate("RLUD")}
                rb = {d: ep.ctx.space.alloc(size) for d in "RLUD"}
                g = ep.group_start()
                ep.group_send(g, sb["R"], size, dst=right, tag=10)
                ep.group_send(g, sb["L"], size, dst=left, tag=11)
                ep.group_send(g, sb["U"], size, dst=up, tag=12)
                ep.group_send(g, sb["D"], size, dst=down, tag=13)
                ep.group_recv(g, rb["L"], size, src=left, tag=10)
                ep.group_recv(g, rb["R"], size, src=right, tag=11)
                ep.group_recv(g, rb["D"], size, src=down, tag=12)
                ep.group_recv(g, rb["U"], size, src=up, tag=13)
                ep.group_end(g)
                for _ in range(2):
                    yield from ep.group_call(g)
                    yield from ep.group_wait(g)
                # my left neighbour's "R" buffer fill = left*4 + 1
                assert (ep.ctx.space.read(rb["L"], size) == left * 4 + 1).all()
                assert (ep.ctx.space.read(rb["R"], size) == right * 4 + 2).all()
                assert (ep.ctx.space.read(rb["D"], size) == down * 4 + 3).all()
                assert (ep.ctx.space.read(rb["U"], size) == up * 4 + 4).all()
                return True

            return prog

        assert all(run_procs(cl, [make(r)(cl.sim) for r in range(4)]))
        fw.assert_quiescent()
        assert cl.metrics.get("offload.group_call_cached") == 4  # 2nd iter


class TestEmptyAndDegenerate:
    def test_empty_group_completes(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)

        def prog(sim):
            ep = fw.endpoint(0)
            g = ep.group_start()
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return g.complete

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        tiny_cluster.sim.run(until=proc)
        assert proc.value is True

    def test_barrier_only_group_completes(self, tiny_cluster):
        fw = OffloadFramework(tiny_cluster)

        def prog(sim):
            ep = fw.endpoint(0)
            g = ep.group_start()
            ep.group_barrier(g)
            ep.group_barrier(g)
            ep.group_end(g)
            yield from ep.group_call(g)
            yield from ep.group_wait(g)
            return True

        proc = tiny_cluster.sim.process(prog(tiny_cluster.sim))
        tiny_cluster.sim.run(until=proc)
        assert proc.value
