"""Focused tests for the scatter-allgather broadcast (large-message path)."""

import pytest

from tests.helpers import pattern
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll
from repro.mpi.collectives import SCAG_THRESHOLD


def _bcast_world(nodes, ppn):
    return MpiWorld(Cluster(ClusterSpec(nodes=nodes, ppn=ppn)))


def _run_bcast(world, root, size, seed=13):
    data = pattern(size, seed=seed)
    ops = {}

    def program(rt):
        cw = world.comm_world
        if rt.rank == root:
            addr = rt.ctx.space.alloc_like(data)
        else:
            addr = rt.ctx.space.alloc(size)
        req = yield from coll.ibcast(rt, cw, root, addr, size)
        yield from rt.wait(req)
        ops[rt.rank] = req.op
        assert (rt.ctx.space.read(addr, size) == data).all()
        return True

    assert all(world.run(program))
    world.assert_quiescent()
    return ops


class TestAlgorithmSelection:
    def test_below_threshold_stays_binomial(self):
        world = _bcast_world(2, 2)
        ops = _run_bcast(world, 0, SCAG_THRESHOLD)
        assert set(ops.values()) == {"ibcast"}

    def test_above_threshold_switches_to_scag(self):
        world = _bcast_world(2, 2)
        ops = _run_bcast(world, 0, SCAG_THRESHOLD + 1)
        assert set(ops.values()) == {"ibcast_scag"}

    def test_two_ranks_never_scag(self):
        world = _bcast_world(2, 1)
        ops = _run_bcast(world, 0, SCAG_THRESHOLD * 4)
        assert set(ops.values()) == {"ibcast"}


class TestScagCorrectness:
    @pytest.mark.parametrize("p_shape", [(3, 1), (5, 1), (4, 2), (3, 3)])
    @pytest.mark.parametrize("root", [0, 1])
    def test_various_sizes_and_roots(self, p_shape, root):
        nodes, ppn = p_shape
        world = _bcast_world(nodes, ppn)
        _run_bcast(world, root, 100_003)  # odd size: uneven last segment

    def test_size_not_divisible_by_ranks(self):
        world = _bcast_world(7, 1)
        _run_bcast(world, 3, SCAG_THRESHOLD + 13)

    def test_bandwidth_advantage_over_binomial_for_huge_payload(self):
        """Scag moves ~2 x (p-1)/p x size per rank; the binomial tree's
        root alone sends log2(p) full copies.  At large sizes scag's
        *pure* latency must win."""
        size = 4 << 20
        results = {}
        for alg_threshold in (1 << 62, 0):  # force binomial / force scag
            world = _bcast_world(4, 1)
            orig = coll.SCAG_THRESHOLD
            coll.SCAG_THRESHOLD = alg_threshold
            try:
                t = {}

                def program(rt):
                    cw = world.comm_world
                    addr = rt.ctx.space.alloc(size, fill=1)
                    t0 = rt.sim.now
                    yield from coll.bcast(rt, cw, 0, addr, size)
                    t[rt.rank] = rt.sim.now - t0
                    return True

                world.run(program)
                results[alg_threshold] = max(t.values())
            finally:
                coll.SCAG_THRESHOLD = orig
        assert results[0] < results[1 << 62]


class TestScagRoundStructure:
    def test_round_count_scales_with_ranks(self):
        """The scag schedule has ~2 + (p-1) rounds -- the dependent-round
        structure whose CPU-intervention points hurt host overlap."""
        for p in (3, 5, 8):
            world = _bcast_world(p, 1)
            reqs = {}

            def program(rt):
                cw = world.comm_world
                addr = rt.ctx.space.alloc(SCAG_THRESHOLD * 2, fill=1)
                req = yield from coll.ibcast(rt, cw, 0, addr, SCAG_THRESHOLD * 2)
                reqs[rt.rank] = len(req.rounds)
                yield from rt.wait(req)
                return True

            world.run(program)
            assert all(n == 2 + (p - 1) for n in reqs.values()), (p, reqs)
