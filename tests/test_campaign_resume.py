"""Resumable campaigns: kill/resume determinism, retry, quarantine.

Covers the tentpole acceptance of the resilience work: a campaign
killed mid-run and resumed from its journal produces tables identical
(modulo wall_seconds) to an uninterrupted run; transiently-crashing
points are retried on fresh workers; persistent failures are
quarantined and the campaign exits "partial".

The subprocess tests spawn real interpreters (the ``spawn`` start
method); they are marked slow to keep the default suite fast.
"""

import glob
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import Journal, point_key
from repro.experiments.parallel import PointFailure, sweep_map

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _runall(args, **kw):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runall", *args],
        env=_env(), capture_output=True, text=True, timeout=600, **kw)


def _strip_wall(doc: dict) -> dict:
    doc = json.loads(json.dumps(doc))
    doc.get("config", {}).pop("wall_seconds", None)
    return doc


def _strip_wall_text(table: str) -> str:
    """Tables embed the run's wall clock in the config header; it is
    the one field excluded from determinism comparisons (matching the
    CI convention of ``grep -v wall_seconds`` on the JSON snapshots)."""
    return re.sub(r"wall_seconds=[0-9.]+", "wall_seconds=X", table)


class TestRunallResume:
    def test_resume_skips_journaled_figures_identically(self, tmp_path):
        """In-process resume: pre-journal one figure, run both, and the
        merged records must be indistinguishable from a cold run."""
        from repro.experiments import runall

        cold = runall.run_selected(["fig02_rdma_latency", "fig05_registration"])
        assert all(r["error"] is None for r in cold)

        j = Journal(tmp_path, label="runall")
        # First campaign: crashes (simulated by only running fig02).
        first = runall.run_selected(["fig02_rdma_latency"], journal=j)
        assert first[0]["error"] is None
        assert len(j.keys()) == 1

        # Resumed campaign over the full selection.
        j2 = Journal(tmp_path, label="runall")
        resumed = runall.run_selected(
            ["fig02_rdma_latency", "fig05_registration"], journal=j2)
        assert j2.hits == 1  # fig02 served from the journal
        for a, b in zip(cold, resumed):
            assert a["name"] == b["name"]
            assert _strip_wall(a["fig"].to_dict()) == _strip_wall(
                b["fig"].to_dict())

    def test_journal_key_depends_on_scale(self, tmp_path):
        """A quick-scale record must never serve a paper-scale run."""
        from repro.experiments.runall import _group_key

        assert _group_key(["fig02_rdma_latency"], "quick") != \
            _group_key(["fig02_rdma_latency"], "paper")

    def test_failed_figures_are_not_journaled(self, tmp_path, monkeypatch):
        from repro.experiments import runall

        monkeypatch.setattr(
            runall, "ALL_FIGURES", ["fig99_missing", "fig05_registration"])
        j = Journal(tmp_path, label="runall")
        records = runall.run_selected(journal=j)
        by_name = {r["name"]: r for r in records}
        assert by_name["fig99_missing"]["error"] is not None
        assert by_name["fig05_registration"]["error"] is None
        # Only the successful group went durable.
        assert len(j.keys()) == 1
        assert point_key("figures", None,
                         (("fig05_registration",), "quick")) in j

    @pytest.mark.slow
    def test_sigkill_mid_campaign_then_resume_is_byte_identical(self, tmp_path):
        figs = ["fig02", "fig04", "fig05"]
        ref_dir, res_dir = tmp_path / "ref", tmp_path / "res"
        camp = tmp_path / "camp"

        ref = _runall([*figs, "--jobs", "2", "--out", str(ref_dir)])
        assert ref.returncode == 0, ref.stderr

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runall", *figs,
             "--jobs", "2", "--resume", str(camp)],
            env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 300
            while time.time() < deadline:
                if glob.glob(str(camp / "journal" / "*.json")):
                    break
                time.sleep(0.02)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        # At least one record survived the kill (maybe all, if the
        # campaign finished before the signal landed -- both are valid
        # resume scenarios).
        assert glob.glob(str(camp / "journal" / "*.json"))

        res = _runall([*figs, "--jobs", "2", "--resume", str(camp),
                       "--out", str(res_dir)])
        assert res.returncode == 0, res.stderr
        for fig in figs:
            assert _strip_wall_text((ref_dir / f"{fig}.txt").read_text()) == \
                _strip_wall_text((res_dir / f"{fig}.txt").read_text())
            a = json.loads((ref_dir / f"{fig}.json").read_text())
            b = json.loads((res_dir / f"{fig}.json").read_text())
            assert _strip_wall(a) == _strip_wall(b)


def _flaky_until(attempt_dir, fail_times, x):
    """Crash the process the first ``fail_times`` times it sees ``x``."""
    marker = os.path.join(attempt_dir, f"attempts-{x}")
    with open(marker, "a") as fh:
        fh.write("x\n")
    with open(marker) as fh:
        attempts = len(fh.readlines())
    if attempts <= fail_times:
        os._exit(42)  # hard death: exercises WorkerDied, not an exception
    return x * 10


def _always_raises(x):
    raise OSError(f"synthetic transient failure on {x}")


class TestRetryQuarantine:
    @pytest.mark.slow
    def test_worker_death_is_retried_on_fresh_worker(self, tmp_path):
        out = sweep_map(
            _flaky_until, [(str(tmp_path), 1, 3), (str(tmp_path), 0, 4)],
            jobs=2, on_error="keep", retries=2, retry_backoff=0.01,
            label="flaky")
        assert out == [30, 40]
        # The flaky point really did die once before succeeding.
        with open(tmp_path / "attempts-3") as fh:
            assert len(fh.readlines()) == 2

    def test_exhausted_retries_quarantine_the_point(self):
        out = sweep_map(
            _always_raises, [1], jobs=1, on_error="keep",
            retries=2, retry_backoff=0.0, label="hopeless")
        (failure,) = out
        assert isinstance(failure, PointFailure)
        assert failure.quarantined
        assert failure.attempts == 3  # 1 try + 2 retries
        assert failure.error_type == "OSError"
        d = failure.to_dict()
        assert d["quarantined"] and d["attempts"] == 3

    def test_non_transient_errors_are_not_retried(self):
        calls = []

        def bad(x):
            calls.append(x)
            raise ValueError("wrong answer, retrying will not help")

        out = sweep_map(bad, [1], jobs=1, on_error="keep",
                        retries=5, retry_backoff=0.0, label="typed")
        assert isinstance(out[0], PointFailure)
        assert out[0].attempts == 1
        assert calls == [1]

    def test_custom_transient_set_overrides_default(self):
        attempts = []

        def flaky(x):
            attempts.append(x)
            if len(attempts) < 2:
                raise ValueError("transient by config")
            return x

        out = sweep_map(flaky, [7], jobs=1, on_error="keep", retries=1,
                        retry_backoff=0.0, transient={"ValueError"},
                        label="custom")
        assert out == [7]
        assert len(attempts) == 2
