"""Edge cases of the MPI runtime and world plumbing."""

import pytest

from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiError, MpiWorld
from repro.mpi import collectives as coll


class TestWaitEdges:
    def test_wait_on_already_complete_request(self, world):
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(64)
                req = yield from rt.isend(comm, 2, addr, 64, tag=1)
                yield from rt.wait(req)
                yield from rt.wait(req)  # second wait is a no-op
            elif rt.rank == 2:
                addr = rt.ctx.space.alloc(64)
                req = yield from rt.irecv(comm, 0, addr, 64, tag=1)
                yield from rt.wait(req)
            return True

        assert all(world.run(program))

    def test_waitall_mixed_completion_order(self, world):
        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                a1 = rt.ctx.space.alloc(64)
                a2 = rt.ctx.space.alloc(256 * 1024)
                r1 = yield from rt.isend(comm, 2, a1, 64, tag=1)       # eager
                r2 = yield from rt.isend(comm, 2, a2, 256 * 1024, tag=2)  # rndv
                yield from rt.waitall([r2, r1])  # reverse order
                assert r1.complete and r2.complete
            elif rt.rank == 2:
                a1 = rt.ctx.space.alloc(64)
                a2 = rt.ctx.space.alloc(256 * 1024)
                r1 = yield from rt.irecv(comm, 0, a1, 64, tag=1)
                r2 = yield from rt.irecv(comm, 0, a2, 256 * 1024, tag=2)
                yield from rt.waitall([r1, r2])
            return True

        assert all(world.run(program))

    def test_progress_poke_advances_protocol(self):
        cluster = Cluster(ClusterSpec(nodes=2, ppn=1))
        world = MpiWorld(cluster)
        size = 128 * 1024
        out = {}

        def program(rt):
            comm = world.comm_world
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(size)
                req = yield from rt.isend(comm, 1, addr, size, tag=1)
                yield from rt.wait(req)
            else:
                addr = rt.ctx.space.alloc(size)
                req = yield from rt.irecv(comm, 0, addr, size, tag=1)
                # explicit progress pokes instead of wait
                while not req.complete:
                    yield rt.ctx.consume(2e-6)
                    yield from rt.progress()
                out["done"] = rt.sim.now
            return True

        assert all(world.run(program))
        assert out["done"] > 0


class TestCollectiveEdges:
    def test_collective_completion_needs_calls(self):
        """An Ialltoall posted then ignored must NOT finish while the
        rank computes -- rounds only advance inside MPI calls."""
        cluster = Cluster(ClusterSpec(nodes=2, ppn=1))
        world = MpiWorld(cluster)
        P = 2
        size = 128 * 1024  # rendezvous
        snapshots = {}

        def program(rt):
            comm = world.comm_world
            sa = rt.ctx.space.alloc(P * size, fill=1)
            ra = rt.ctx.space.alloc(P * size)
            req = yield from coll.ialltoall(rt, comm, sa, ra, size)
            yield rt.ctx.consume(500e-6)
            snapshots[rt.rank] = req.complete
            yield from rt.wait(req)
            return True

        assert all(world.run(program))
        assert not any(snapshots.values())

    def test_test_on_collective_request(self, world):
        def program(rt):
            comm = world.comm_world
            P = world.size
            sa = rt.ctx.space.alloc(P * 512, fill=1)
            ra = rt.ctx.space.alloc(P * 512)
            req = yield from coll.ialltoall(rt, comm, sa, ra, 512)
            while not (yield from rt.test(req)):
                yield rt.ctx.consume(1e-6)
            return True

        assert all(world.run(program))

    def test_back_to_back_collectives_on_same_comm(self, world):
        def program(rt):
            comm = world.comm_world
            P = world.size
            sa = rt.ctx.space.alloc(P * 256, fill=2)
            ra = rt.ctx.space.alloc(P * 256)
            r1 = yield from coll.ialltoall(rt, comm, sa, ra, 256)
            r2 = yield from coll.ialltoall(rt, comm, sa, ra, 256)
            yield from rt.wait(r1)
            yield from rt.wait(r2)
            return True

        assert all(world.run(program))
        world.assert_quiescent()


class TestQuiescence:
    def test_detects_unfinished_recv(self, world):
        def program(rt):
            if rt.rank == 0:
                addr = rt.ctx.space.alloc(64)
                yield from rt.irecv(world.comm_world, 2, addr, 64, tag=1)
            return True
            yield  # pragma: no cover

        world.run(program, ranks=[0])
        with pytest.raises(MpiError, match="matching not idle"):
            world.assert_quiescent()

    def test_detects_unfinished_rndv_send(self, world):
        def program(rt):
            addr = rt.ctx.space.alloc(128 * 1024)
            yield from rt.isend(world.comm_world, 2, addr, 128 * 1024, tag=1)
            return True

        world.run(program, ranks=[0])
        world.runtime(2).incoming._items.clear()  # swallow the RTS
        with pytest.raises(MpiError, match="awaiting FIN"):
            world.assert_quiescent()


class TestWorld:
    def test_run_returns_per_rank_values(self, world):
        def program(rt):
            yield rt.ctx.consume(1e-6)
            return rt.rank * 10

        assert world.run(program) == [0, 10, 20, 30]

    def test_run_subset_of_ranks(self, world):
        def program(rt):
            yield rt.ctx.consume(1e-6)
            return rt.rank

        assert world.run(program, ranks=[1, 3]) == [1, 3]

    def test_program_exception_propagates(self, world):
        def program(rt):
            yield rt.ctx.consume(1e-6)
            raise ValueError("app bug")

        with pytest.raises(ValueError, match="app bug"):
            world.run(program, ranks=[0])
