"""Campaign journal: atomic writes, integrity checks, sweep_map wiring.

The journal's contract (docs/RESILIENCE.md): a record is either fully
present and verified, or treated as absent -- truncation, bit rot,
stale schemas and mislabeled files must all degrade to "recompute",
never to wrong results.
"""

import base64
import hashlib
import json
import os

import pytest

from repro.experiments.campaign import (
    EXIT_CLEAN,
    EXIT_FAILED,
    EXIT_PARTIAL,
    JOURNAL_SCHEMA,
    Journal,
    classify_campaign,
    point_key,
)
from repro.experiments.parallel import sweep_map
from repro.util import atomic_write, write_if_changed


class TestAtomicWrite:
    def test_writes_text_and_bytes(self, tmp_path):
        p = tmp_path / "t.txt"
        atomic_write(p, "hello\n")
        assert p.read_text() == "hello\n"
        atomic_write(p, b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"

    def test_creates_parent_dirs(self, tmp_path):
        p = tmp_path / "a" / "b" / "t.txt"
        atomic_write(p, "x")
        assert p.read_text() == "x"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write(tmp_path / "t.txt", "x")
        assert os.listdir(tmp_path) == ["t.txt"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        p = tmp_path / "t.txt"
        atomic_write(p, "old content")
        atomic_write(p, "new")
        assert p.read_text() == "new"

    def test_write_if_changed_skips_identical(self, tmp_path):
        p = tmp_path / "t.txt"
        assert write_if_changed(p, "x") is True
        mtime = p.stat().st_mtime_ns
        assert write_if_changed(p, "x") is False
        assert p.stat().st_mtime_ns == mtime
        assert write_if_changed(p, "y") is True


class TestPointKey:
    def test_stable_and_distinct(self):
        k = point_key("fig15", 3, ("quick", 4096, "group"))
        assert k == point_key("fig15", 3, ("quick", 4096, "group"))
        assert k != point_key("fig15", 4, ("quick", 4096, "group"))
        assert k != point_key("fig14", 3, ("quick", 4096, "group"))
        assert k != point_key("fig15", 3, ("quick", 4096, "simple"))
        assert k != point_key("fig15", 3, ("quick", 4096, "group"), "paper")

    def test_is_a_filename_safe_digest(self):
        k = point_key("x", 0, (1, 2))
        assert len(k) == 64
        assert all(c in "0123456789abcdef" for c in k)


class TestClassification:
    def test_exit_codes(self):
        assert classify_campaign(5, 0, 0) == EXIT_CLEAN
        assert classify_campaign(4, 1, 0) == EXIT_PARTIAL
        assert classify_campaign(4, 0, 1) == EXIT_FAILED
        assert classify_campaign(0, 2, 0) == EXIT_FAILED  # nothing survived
        assert classify_campaign(0, 0, 0) == EXIT_CLEAN


class TestJournalRoundtrip:
    def test_record_lookup_roundtrip(self, tmp_path):
        j = Journal(tmp_path)
        payload = {"series": [1.5, 2.5], "meta": ("a", 3)}
        key = point_key("fig", 0, "p")
        j.record(key, payload)
        assert j.lookup(key) == payload
        assert key in j
        assert j.keys() == [key]
        assert len(j) == 1
        assert j.corrupt == []

    def test_missing_is_a_plain_miss_not_damage(self, tmp_path):
        j = Journal(tmp_path)
        assert j.lookup("0" * 64) is None
        assert j.corrupt == []
        assert j.misses == 1

    def test_records_survive_reopen(self, tmp_path):
        key = point_key("fig", 0, "p")
        Journal(tmp_path).record(key, [1, 2, 3])
        assert Journal(tmp_path).lookup(key) == [1, 2, 3]


class TestJournalCorruption:
    """Every damage mode is detected, reported, and treated as a miss."""

    def _journal_one(self, tmp_path):
        j = Journal(tmp_path)
        key = point_key("fig", 0, "p")
        path = j.record(key, {"v": 42})
        return j, key, path

    def test_truncated_record(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        assert Journal(tmp_path).lookup(key) is None
        j2 = Journal(tmp_path)
        j2.lookup(key)
        assert any("JSON" in reason for _, reason in j2.corrupt)

    def test_payload_bit_rot(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        doc = json.loads(path.read_text())
        blob = bytearray(base64.b64decode(doc["payload"]))
        blob[len(blob) // 2] ^= 0xFF
        doc["payload"] = base64.b64encode(bytes(blob)).decode()
        path.write_text(json.dumps(doc))
        j2 = Journal(tmp_path)
        assert j2.lookup(key) is None
        assert any("hash mismatch" in reason for _, reason in j2.corrupt)

    def test_stale_schema(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        doc = json.loads(path.read_text())
        doc["schema"] = "repro.journal/0"
        path.write_text(json.dumps(doc))
        j2 = Journal(tmp_path)
        assert j2.lookup(key) is None
        assert any("stale schema" in reason for _, reason in j2.corrupt)

    def test_key_mismatch(self, tmp_path):
        """A record renamed to another key's filename must not serve."""
        j, key, path = self._journal_one(tmp_path)
        other = point_key("fig", 1, "q")
        path.rename(path.with_name(f"{other}.json"))
        j2 = Journal(tmp_path)
        assert j2.lookup(other) is None
        assert any("key mismatch" in reason for _, reason in j2.corrupt)

    def test_undecodable_payload(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        doc = json.loads(path.read_text())
        doc["payload"] = "!!! not base64 !!!"
        path.write_text(json.dumps(doc))
        j2 = Journal(tmp_path)
        assert j2.lookup(key) is None
        assert j2.corrupt

    def test_non_object_record(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        path.write_text('["not", "an", "object"]')
        j2 = Journal(tmp_path)
        assert j2.lookup(key) is None
        assert any("not an object" in reason for _, reason in j2.corrupt)

    def test_damaged_record_heals_on_rewrite(self, tmp_path):
        j, key, path = self._journal_one(tmp_path)
        path.write_text("garbage")
        j2 = Journal(tmp_path)
        assert j2.lookup(key) is None
        j2.record(key, {"v": 42})
        assert j2.lookup(key) == {"v": 42}

    def test_keys_skips_damaged_records(self, tmp_path):
        j = Journal(tmp_path)
        good = point_key("fig", 0, "good")
        bad = point_key("fig", 0, "bad")
        j.record(good, 1)
        j.record(bad, 2)
        (j.dir / f"{bad}.json").write_text("garbage")
        assert Journal(tmp_path).keys() == sorted([good])

    def test_schema_constant_is_versioned(self):
        assert JOURNAL_SCHEMA == "repro.journal/1"


def _square(x):
    return x * x


def _square_seeded(x, *, seed):
    return (x * x, seed)


class TestSweepMapJournal:
    def test_serial_sweep_journals_and_skips(self, tmp_path):
        j = Journal(tmp_path, label="sq")
        first = sweep_map(_square, [1, 2, 3], jobs=1, label="sq", journal=j)
        assert first == [1, 4, 9]
        assert len(j.keys()) == 3

        calls = []

        def spy(x):
            calls.append(x)
            return x * x

        j2 = Journal(tmp_path, label="sq")
        again = sweep_map(spy, [1, 2, 3], jobs=1, label="sq", journal=j2)
        assert again == [1, 4, 9]
        assert calls == []  # everything served from the journal
        assert j2.hits == 3

    def test_journal_key_includes_seed_and_point(self, tmp_path):
        j = Journal(tmp_path, label="sq")
        sweep_map(_square_seeded, [2], jobs=1, label="sq",
                  seed_kwarg="seed", journal=j)
        # A different seed root is a different campaign: no hits.
        j2 = Journal(tmp_path, label="sq")
        out = sweep_map(_square_seeded, [2], jobs=1, label="sq",
                        seed_kwarg="seed", seed_root=99, journal=j2)
        assert j2.hits == 0
        assert out[0][0] == 4

    def test_partial_journal_runs_only_missing_points(self, tmp_path):
        j = Journal(tmp_path, label="sq")
        sweep_map(_square, [1, 2], jobs=1, label="sq", journal=j)

        calls = []

        def spy(x):
            calls.append(x)
            return x * x

        j2 = Journal(tmp_path, label="sq")
        out = sweep_map(spy, [1, 2, 5, 6], jobs=1, label="sq", journal=j2)
        assert out == [1, 4, 25, 36]
        assert calls == [5, 6]

    @pytest.mark.slow
    def test_pool_sweep_journals_and_skips(self, tmp_path):
        j = Journal(tmp_path, label="sq")
        first = sweep_map(_square, [1, 2, 3, 4], jobs=2, label="sq", journal=j)
        assert first == [1, 4, 9, 16]
        assert len(j.keys()) == 4
        # Resume in pool mode: all served from journal, bit-identical.
        j2 = Journal(tmp_path, label="sq")
        again = sweep_map(_square, [1, 2, 3, 4], jobs=2, label="sq",
                          journal=j2)
        assert again == first
        assert j2.hits == 4
