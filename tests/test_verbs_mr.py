"""Unit tests for memory registration and key checking."""

import pytest

from tests.helpers import run_proc
from repro.verbs import (
    MemoryRegionHandle,
    ProtectionError,
    dereg_mr,
    reg_mr,
    verbs_state,
)
from repro.verbs.mr import registration_cost


class TestRegMr:
    def test_returns_distinct_keys(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        addr = ctx.space.alloc(4096)

        def prog(sim):
            return (yield from reg_mr(ctx, addr, 4096))

        handle = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert isinstance(handle, MemoryRegionHandle)
        assert handle.lkey != handle.rkey

    def test_costs_simulated_time(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        addr = ctx.space.alloc(1 << 20)

        def prog(sim):
            t0 = sim.now
            yield from reg_mr(ctx, addr, 1 << 20)
            return sim.now - t0

        elapsed = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        assert elapsed == pytest.approx(registration_cost(ctx, addr, 1 << 20))
        assert elapsed > 10e-6  # page pinning dominates at 1 MiB

    def test_dpu_registration_costs_more(self, tiny_cluster):
        host = tiny_cluster.rank_ctx(0)
        dpu = tiny_cluster.proxy_ctx(0, 0)
        ha = host.space.alloc(65536)
        da = dpu.space.alloc(65536)
        assert registration_cost(dpu, da, 65536) > registration_cost(host, ha, 65536)

    def test_unmapped_range_rejected(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)

        def prog(sim):
            yield from reg_mr(ctx, 0xBAD000, 64)

        with pytest.raises(ProtectionError):
            run_proc(tiny_cluster, prog(tiny_cluster.sim))

    def test_dereg_revokes_both_keys(self, tiny_cluster):
        ctx = tiny_cluster.rank_ctx(0)
        addr = ctx.space.alloc(64)

        def prog(sim):
            h = yield from reg_mr(ctx, addr, 64)
            dereg_mr(ctx, h)
            return h

        handle = run_proc(tiny_cluster, prog(tiny_cluster.sim))
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError):
            table.lookup(handle.lkey)
        with pytest.raises(ProtectionError):
            table.lookup(handle.rkey)


class TestKeyTable:
    def _handle(self, cluster, size=4096):
        ctx = cluster.rank_ctx(0)
        addr = ctx.space.alloc(size)

        def prog(sim):
            return (yield from reg_mr(ctx, addr, size))

        return ctx, addr, run_proc(cluster, prog(cluster.sim))

    def test_check_happy_path(self, tiny_cluster):
        ctx, addr, h = self._handle(tiny_cluster)
        table = verbs_state(tiny_cluster).keys
        info = table.check(h.rkey, owner=ctx, addr=addr + 8, size=64, kinds=("rkey",))
        assert info.key == h.rkey

    def test_check_wrong_kind(self, tiny_cluster):
        ctx, addr, h = self._handle(tiny_cluster)
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError, match="expected one of"):
            table.check(h.lkey, owner=ctx, addr=addr, size=8, kinds=("rkey",))

    def test_check_wrong_owner(self, tiny_cluster):
        ctx, addr, h = self._handle(tiny_cluster)
        other = tiny_cluster.rank_ctx(1)
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError, match="belongs to"):
            table.check(h.rkey, owner=other, addr=addr, size=8, kinds=("rkey",))

    def test_check_out_of_range(self, tiny_cluster):
        ctx, addr, h = self._handle(tiny_cluster, size=64)
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError, match="covers"):
            table.check(h.rkey, owner=ctx, addr=addr + 32, size=64, kinds=("rkey",))

    def test_unknown_key(self, tiny_cluster):
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError, match="not registered"):
            table.lookup(0xFFFF)

    def test_revoke_unknown(self, tiny_cluster):
        table = verbs_state(tiny_cluster).keys
        with pytest.raises(ProtectionError):
            table.revoke(0x1)
