"""Integration tests for the OpenSHMEM-style front-end.

These back the paper's "programming model agnostic" claim: the same
proxies, caches and cross-GVMI machinery serve a PGAS API with no
MPI-style matching at all.
"""

import pytest

from tests.helpers import pattern, run_procs
from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadError
from repro.offload.shmem import ShmemWorld


def _world(nodes=2, ppn=1, proxies=1):
    cl = Cluster(ClusterSpec(nodes=nodes, ppn=ppn, proxies_per_dpu=proxies))
    return cl, ShmemWorld(cl)


class TestSymmetricHeap:
    def test_collective_alloc_agrees(self):
        cl, world = _world()
        addrs = {}

        def make(pe):
            def prog(sim):
                ep = world.endpoint(pe)
                addrs[pe] = (yield from ep.symmetric_alloc(4096))
                return True

            return prog

        run_procs(cl, [make(pe)(cl.sim) for pe in range(2)])
        assert addrs[0] == addrs[1]

    def test_diverging_allocation_detected(self):
        cl, world = _world()

        def pe0(sim):
            ep = world.endpoint(0)
            ep.ctx.space.alloc(64)  # sneak in an extra local allocation
            yield from ep.symmetric_alloc(4096)

        def pe1(sim):
            ep = world.endpoint(1)
            yield from ep.symmetric_alloc(4096)

        with pytest.raises(OffloadError, match="diverged"):
            run_procs(cl, [pe0(cl.sim), pe1(cl.sim)])

    def test_non_heap_address_rejected(self):
        cl, world = _world()
        with pytest.raises(OffloadError, match="symmetric heap"):
            world.rkey_of(0, 0xDEAD000)


class TestPutGet:
    def test_put_moves_bytes_one_sided(self):
        cl, world = _world()
        data = pattern(8192, seed=2)
        done = {}

        def pe0(sim):
            ep = world.endpoint(0)
            sym = yield from ep.symmetric_alloc(8192)
            src = ep.ctx.space.alloc_like(data)
            yield from ep.put(sym, src, 8192, pe=1)
            yield from ep.quiet()
            done["put"] = sim.now
            return sym

        def pe1(sim):
            ep = world.endpoint(1)
            sym = yield from ep.symmetric_alloc(8192)
            # PE 1 never calls a receive: the put is truly one-sided.
            yield sim.timeout(200e-6)
            assert (ep.ctx.space.read(sym, 8192) == data).all()
            return sym

        run_procs(cl, [pe0(cl.sim), pe1(cl.sim)])
        assert cl.metrics.get("proxy.shmem_puts") == 1
        assert cl.metrics.get("gvmi.cross_registrations") == 1

    def test_get_pulls_remote_bytes(self):
        cl, world = _world()
        data = pattern(4096, seed=3)

        def pe0(sim):
            ep = world.endpoint(0)
            sym = yield from ep.symmetric_alloc(4096)
            ep.ctx.space.write(sym, data)  # my heap holds the source
            yield sim.timeout(300e-6)
            return True

        def pe1(sim):
            ep = world.endpoint(1)
            sym = yield from ep.symmetric_alloc(4096)
            local = ep.ctx.space.alloc(4096)
            yield sim.timeout(50e-6)  # let PE0 populate
            yield from ep.get(local, sym, 4096, pe=0)
            yield from ep.quiet()
            assert (ep.ctx.space.read(local, 4096) == data).all()
            return True

        assert all(run_procs(cl, [pe0(cl.sim), pe1(cl.sim)]))
        assert cl.metrics.get("proxy.shmem_gets") == 1

    def test_put_cache_amortises_registration(self):
        cl, world = _world()

        def pe0(sim):
            ep = world.endpoint(0)
            sym = yield from ep.symmetric_alloc(1024)
            src = ep.ctx.space.alloc(1024, fill=5)
            for _ in range(4):
                yield from ep.put(sym, src, 1024, pe=1)
                yield from ep.quiet()
            return True

        def pe1(sim):
            ep = world.endpoint(1)
            yield from ep.symmetric_alloc(1024)
            yield sim.timeout(300e-6)
            return True

        run_procs(cl, [pe0(cl.sim), pe1(cl.sim)])
        # 4 puts, 1 host GVMI registration, 1 cross-registration.
        assert cl.metrics.get("gvmi.host_registrations") == 1
        assert cl.metrics.get("gvmi.cross_registrations") == 1
        assert cl.metrics.get("shmem.puts") == 4


class TestSynchronisation:
    def test_wait_until_wakes_on_remote_put(self):
        cl, world = _world()
        times = {}

        def pe0(sim):
            ep = world.endpoint(0)
            flag = yield from ep.symmetric_alloc(1, fill=0)
            src = ep.ctx.space.alloc(1, fill=42)
            yield sim.timeout(100e-6)
            yield from ep.put(flag, src, 1, pe=1)
            yield from ep.quiet()
            times["put_done"] = sim.now
            return True

        def pe1(sim):
            ep = world.endpoint(1)
            flag = yield from ep.symmetric_alloc(1, fill=0)
            yield from ep.wait_until(flag, lambda v: v == 42)
            times["woke"] = sim.now
            return True

        run_procs(cl, [pe0(cl.sim), pe1(cl.sim)])
        assert times["woke"] >= 100e-6
        assert times["woke"] <= times["put_done"]  # wake at data landing

    def test_wait_until_already_satisfied(self):
        cl, world = _world()

        def pe0(sim):
            ep = world.endpoint(0)
            flag = yield from ep.symmetric_alloc(1, fill=9)
            yield from ep.wait_until(flag, lambda v: v == 9)
            return True

        def pe1(sim):
            ep = world.endpoint(1)
            yield from ep.symmetric_alloc(1, fill=9)
            return True

        assert all(run_procs(cl, [pe0(cl.sim), pe1(cl.sim)]))

    def test_barrier_all(self):
        cl, world = _world(nodes=4, ppn=1, proxies=1)
        n = 4
        arrive, leave = {}, {}

        def make(pe):
            def prog(sim):
                ep = world.endpoint(pe)
                yield from ep.barrier_init()
                yield ep.ctx.consume(pe * 20e-6)
                arrive[pe] = sim.now
                yield from ep.barrier_all()
                leave[pe] = sim.now
                return True

            return prog

        run_procs(cl, [make(pe)(cl.sim) for pe in range(n)])
        assert min(leave.values()) >= max(arrive.values())
