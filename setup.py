"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment has setuptools 65 but no `wheel` package, so the
PEP 517 editable path (which needs bdist_wheel) is unavailable. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
