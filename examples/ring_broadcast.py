#!/usr/bin/env python
"""The paper's motivating example (Fig 1 / Listings 1 & 5), side by side.

A ring broadcast -- rank 0's panel forwarded hop by hop -- while every
rank computes.  Three implementations:

1. **Standard MPI** (Listing 1): non-blocking Isend/Irecv with the
   ``while (!complete) {{ do_compute(); MPI_Test(); }}`` loop.  A middle
   rank can only forward once its CPU notices the arrival -> the ring
   stalls on compute boundaries.
2. **Staging offload**: the same pattern recorded with Group primitives
   but executed with the state-of-the-art staging mechanism (every hop
   bounces through DPU DRAM).
3. **Proposed cross-GVMI offload** (Listing 5): the recorded pattern
   executes on the DPU proxies with direct host-to-host data movement.

Run:  python examples/ring_broadcast.py
"""


from repro.experiments.common import SimBarrier
from repro.hw import Cluster, ClusterSpec
from repro.mpi import MpiWorld
from repro.offload import OffloadFramework

RANKS = 4
SIZE = 64 * 1024
COMPUTE = 30e-6
CHUNK = 10e-6


def mpi_ring() -> float:
    cluster = Cluster(ClusterSpec(nodes=RANKS, ppn=1))
    world = MpiWorld(cluster)
    barrier = SimBarrier(cluster.sim, RANKS)
    finish = {}

    def program(rt):
        comm = world.comm_world
        buf = rt.ctx.space.alloc(SIZE, fill=1)
        for it in range(2):  # first iteration warms registration caches
            yield from barrier.arrive()
            t0 = rt.sim.now
            if rt.rank == 0:
                req = yield from rt.isend(comm, 1, buf, SIZE, tag=it)
            else:
                req = yield from rt.irecv(comm, rt.rank - 1, buf, SIZE, tag=it)
            remaining = COMPUTE
            while remaining > 0:  # Listing 1's compute/test loop
                step = min(CHUNK, remaining)
                yield rt.ctx.consume(step)
                remaining -= step
                yield from rt.test(req)
            yield from rt.wait(req)
            if 0 < rt.rank < RANKS - 1:
                fwd = yield from rt.isend(comm, rt.rank + 1, buf, SIZE, tag=it)
                yield from rt.wait(fwd)
            finish[(it, rt.rank)] = rt.sim.now - t0
        return None

    world.run(program)
    return max(v for (it, _r), v in finish.items() if it == 1)


def offload_ring(mode: str) -> float:
    cluster = Cluster(ClusterSpec(nodes=RANKS, ppn=1, proxies_per_dpu=1))
    framework = OffloadFramework(cluster, mode=mode)
    barrier = SimBarrier(cluster.sim, RANKS)
    finish = {}

    def make(rank):
        def prog(sim):
            ep = framework.endpoint(rank)
            buf = ep.ctx.space.alloc(SIZE, fill=1)
            # Listing 5: record the whole dependent pattern up front.
            greq = ep.group_start()
            if rank == 0:
                ep.group_send(greq, buf, SIZE, dst=1, tag=4)
                ep.group_barrier(greq)
            else:
                ep.group_recv(greq, buf, SIZE, src=rank - 1, tag=4)
                ep.group_barrier(greq)  # Local_barrier_Goffload
                if rank + 1 < RANKS:
                    ep.group_send(greq, buf, SIZE, dst=rank + 1, tag=4)
            ep.group_end(greq)
            for it in range(2):
                yield from barrier.arrive()
                t0 = sim.now
                yield from ep.group_call(greq)   # offload the whole graph
                yield ep.ctx.consume(COMPUTE)    # do_compute()
                yield from ep.group_wait(greq)
                finish[(it, rank)] = sim.now - t0
            return None

        return prog

    procs = [cluster.sim.process(make(r)(cluster.sim)) for r in range(RANKS)]
    cluster.sim.run(until=cluster.sim.all_of(procs))
    return max(v for (it, _r), v in finish.items() if it == 1)


def main() -> None:
    print(f"ring broadcast, {RANKS} ranks, {SIZE // 1024} KiB, "
          f"{COMPUTE * 1e6:.0f} us compute per rank\n")
    mpi = mpi_ring()
    staged = offload_ring("staged")
    gvmi = offload_ring("gvmi")
    width = 44
    for label, t in [
        ("standard MPI (Listing 1)", mpi),
        ("staging offload", staged),
        ("proposed cross-GVMI offload (Listing 5)", gvmi),
    ]:
        bar = "#" * int(t / max(mpi, staged, gvmi) * width)
        print(f"{label:42s} {t * 1e6:7.1f} us  {bar}")
    print(
        f"\nthe proposed scheme hides the ring almost entirely "
        f"({gvmi * 1e6:.1f} us vs the {COMPUTE * 1e6:.0f} us compute floor)"
    )


if __name__ == "__main__":
    main()
