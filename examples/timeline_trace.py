#!/usr/bin/env python
"""Render the paper's Fig-1 timelines from an actual simulated run.

Attaches the execution tracer and replays the ring-broadcast-under-
compute scenario on (a) host-progressed MPI and (b) the proposed group
offload, then prints per-process busy lanes (``#`` = core-busy time).
You can literally *see* case 1's forwarding gap (host2 wakes again
*after* its compute to serve the late ring) versus case 3's DPU lanes
carrying the ring while the hosts sit in one solid compute block.

Run:  python examples/timeline_trace.py
"""

from repro.experiments.common import SimBarrier
from repro.hw import Cluster, ClusterSpec
from repro.hw.trace import Tracer
from repro.mpi import MpiWorld
from repro.offload import OffloadFramework

RANKS = 3
SIZE = 64 * 1024
COMPUTE = 25e-6
CHUNK = 8e-6


def traced_mpi() -> str:
    cluster = Cluster(ClusterSpec(nodes=RANKS, ppn=1))
    tracer = Tracer.attach(cluster)
    world = MpiWorld(cluster)
    barrier = SimBarrier(cluster.sim, RANKS)

    def program(rt):
        comm = world.comm_world
        buf = rt.ctx.space.alloc(SIZE, fill=1)
        for it in range(2):
            yield from barrier.arrive()
            if it == 1 and rt.rank == 0:
                tracer.reset(t_min=rt.sim.now)  # trace the warm iteration
            if rt.rank == 0:
                req = yield from rt.isend(comm, 1, buf, SIZE, tag=it)
            else:
                req = yield from rt.irecv(comm, rt.rank - 1, buf, SIZE, tag=it)
            remaining = COMPUTE
            while remaining > 0:
                step = min(CHUNK, remaining)
                yield rt.ctx.consume(step)
                remaining -= step
                yield from rt.test(req)
            yield from rt.wait(req)
            if 0 < rt.rank < RANKS - 1:
                fwd = yield from rt.isend(comm, rt.rank + 1, buf, SIZE, tag=it)
                yield from rt.wait(fwd)
        return None

    world.run(program, ranks=range(RANKS))
    return tracer.render_ascii(width=68, entities=[f"host{r}" for r in range(RANKS)])


def traced_offload() -> str:
    cluster = Cluster(ClusterSpec(nodes=RANKS, ppn=1, proxies_per_dpu=1))
    tracer = Tracer.attach(cluster)
    framework = OffloadFramework(cluster)
    barrier = SimBarrier(cluster.sim, RANKS)

    def make(rank):
        def prog(sim):
            ep = framework.endpoint(rank)
            buf = ep.ctx.space.alloc(SIZE, fill=1)
            greq = ep.group_start()
            if rank == 0:
                ep.group_send(greq, buf, SIZE, dst=1, tag=4)
                ep.group_barrier(greq)
            else:
                ep.group_recv(greq, buf, SIZE, src=rank - 1, tag=4)
                ep.group_barrier(greq)
                if rank + 1 < RANKS:
                    ep.group_send(greq, buf, SIZE, dst=rank + 1, tag=4)
            ep.group_end(greq)
            for it in range(2):
                yield from barrier.arrive()
                if it == 1 and rank == 0:
                    tracer.reset(t_min=sim.now)
                yield from ep.group_call(greq)
                yield ep.ctx.consume(COMPUTE)
                yield from ep.group_wait(greq)
            return None

        return prog

    procs = [cluster.sim.process(make(r)(cluster.sim)) for r in range(RANKS)]
    cluster.sim.run(until=cluster.sim.all_of(procs))
    lanes = [f"host{r}" for r in range(RANKS)] + [f"dpu{r}" for r in range(RANKS)]
    return tracer.render_ascii(width=68, entities=lanes)


def main() -> None:
    print("case 1 -- standard MPI (Listing 1): the forward leaves host1")
    print("only at a test boundary after its compute chunk:\n")
    print(traced_mpi())
    print("\ncase 3 -- proposed group offload (Listing 5): the DPU lanes")
    print("carry the ring while the hosts sit in one solid compute block:\n")
    print(traced_offload())


if __name__ == "__main__":
    main()
