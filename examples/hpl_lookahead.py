#!/usr/bin/env python
"""HPL's look-ahead panel broadcast on the four runtime variants.

First validates the numerics: a real blocked LU factorization whose
panel broadcasts move genuine bytes through each runtime, checked as
``L @ U == A``.  Then runs the HPL cost model (the Fig 17 experiment at
one problem size) comparing:

* IntelMPI-HPL-1ring  -- stock HPL: p2p ring, CPU-driven forwarding
* IntelMPI-Ibcast     -- host non-blocking broadcast (scatter-allgather)
* BluesMPI            -- staged DPU offload
* Proposed            -- group-offloaded ring over cross-GVMI

Run:  python examples/hpl_lookahead.py
"""

from repro.apps.hpl import hpl_run, lu_validate
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=2, ppn=2, proxies_per_dpu=2)
PERF_SPEC = ClusterSpec(nodes=4, ppn=16, proxies_per_dpu=4)


def main() -> None:
    print("numeric validation (distributed blocked LU, n=32, nb=8):")
    for flavor in ("intelmpi", "bluesmpi", "proposed"):
        ok = lu_validate(flavor, SPEC, n=32, nb=8)
        print(f"  {flavor:10s} L @ U == A : {'OK' if ok else 'FAIL'}")

    n = 5056
    print(f"\nperformance model: n={n}, nb=128, "
          f"{PERF_SPEC.world_size} ranks on a 4x16 grid:")
    variants = [
        ("IntelMPI-1ring", "intelmpi", "1ring"),
        ("IntelMPI-Ibcast", "intelmpi", "ibcast"),
        ("BluesMPI", "bluesmpi", "ibcast"),
        ("Proposed", "proposed", "ibcast"),
    ]
    results = {}
    for label, flavor, bc in variants:
        r = hpl_run(flavor, PERF_SPEC, n=n, nb=128, bcast=bc,
                    tests_per_update=3, grid=(4, 16), max_steps=40)
        results[label] = r
    base = results["IntelMPI-1ring"].total
    for label, r in results.items():
        print(
            f"  {label:16s} total {r.total * 1e3:8.3f} ms "
            f"({r.total / base:5.3f}x of 1ring)   comm {r.comm_time * 1e3:7.3f} ms"
        )
    print(
        "\nthe proposed ring runs on the DPUs: no CPU intervention between "
        "hops, so the look-ahead window actually hides the broadcast."
    )


if __name__ == "__main__":
    main()
