#!/usr/bin/env python
"""Quickstart: offload a point-to-point transfer to the DPU.

Builds a two-node simulated cluster (each node: host CPUs + a
BlueField-2-like DPU behind one HCA), starts the offload framework
(``Init_Offload``), and moves real bytes from rank 0 to rank 1 with the
Basic primitives -- while rank 1's CPU is busy computing the whole
time.  The receive completes *during* the compute because the DPU proxy
progresses it; the host only observes the completion counter.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hw import Cluster, ClusterSpec
from repro.offload import OffloadFramework

SIZE = 128 * 1024
COMPUTE = 300e-6  # 300 us of "application work" on the receiver


def main() -> None:
    # 1. A simulated cluster: 2 nodes x 1 rank, 1 DPU worker per node.
    cluster = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))

    # 2. Init_Offload(): launches the proxy processes, assigns ranks,
    #    exchanges GVMI-IDs.
    framework = OffloadFramework(cluster)

    payload = np.arange(SIZE, dtype=np.uint8) % 251

    def sender(sim):
        ep = framework.endpoint(0)
        addr = ep.ctx.space.alloc_like(payload)
        # Send_Offload: GVMI-register the buffer, RTS to my proxy.
        req = yield from ep.send_offload(addr, SIZE, dst=1, tag=7)
        yield from ep.wait(req)
        print(f"[rank 0] send complete at {sim.now * 1e6:8.1f} us")

    def receiver(sim):
        ep = framework.endpoint(1)
        addr = ep.ctx.space.alloc(SIZE)
        # Recv_Offload: IB-register the buffer, RTR to the sender's proxy.
        req = yield from ep.recv_offload(addr, SIZE, src=0, tag=7)
        print(f"[rank 1] recv posted at  {sim.now * 1e6:8.1f} us; computing...")
        yield ep.ctx.consume(COMPUTE)  # no MPI/offload calls in here!
        t0 = sim.now
        yield from ep.wait(req)
        print(
            f"[rank 1] Wait() returned after {(sim.now - t0) * 1e9:.0f} ns "
            f"-- the transfer finished during the compute"
        )
        got = ep.ctx.space.read(addr, SIZE)
        assert (got == payload).all(), "payload corrupted!"
        print(f"[rank 1] payload verified: {SIZE} bytes bit-exact")

    procs = [cluster.sim.process(sender(cluster.sim)),
             cluster.sim.process(receiver(cluster.sim))]
    cluster.sim.run(until=cluster.sim.all_of(procs))

    print("\ncounters:")
    for key in ("gvmi.host_registrations", "gvmi.cross_registrations",
                "proxy.basic_pairs", "proxy.fin_writes", "rdma.write.dpu"):
        print(f"  {key:32s} {cluster.metrics.get(key):.0f}")
    framework.finalize()


if __name__ == "__main__":
    main()
