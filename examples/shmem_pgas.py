#!/usr/bin/env python
"""A second programming model on the same framework: OpenSHMEM-style PGAS.

The paper claims its offload framework is *programming model agnostic*
(Section I-A).  This example backs that up: the exact same DPU proxies,
GVMI caches and cross-GVMI transfers that served MPI-style traffic in
the other examples here drive a partitioned-global-address-space API --
symmetric heap, one-sided put/get, quiet, wait_until -- with **zero
receiver involvement**: PE 1 below never posts a receive; the put lands
in its symmetric heap while it is busy computing, and a
``wait_until`` on a flag variable wakes it the moment the data is there.

Run:  python examples/shmem_pgas.py
"""

import numpy as np

from repro.hw import Cluster, ClusterSpec
from repro.offload.shmem import ShmemWorld

SIZE = 64 * 1024


def main() -> None:
    cluster = Cluster(ClusterSpec(nodes=2, ppn=1, proxies_per_dpu=1))
    world = ShmemWorld(cluster)
    payload = (np.arange(SIZE) % 249).astype(np.uint8)

    def pe0(sim):
        ep = world.endpoint(0)
        dst = yield from ep.symmetric_alloc(SIZE)
        flag = yield from ep.symmetric_alloc(1, fill=0)
        src = ep.ctx.space.alloc_like(payload)
        one = ep.ctx.space.alloc(1, fill=1)
        print(f"[PE 0] putting {SIZE} bytes into PE 1's heap at {sim.now * 1e6:6.1f} us")
        yield from ep.put(dst, src, SIZE, pe=1)       # data
        yield from ep.quiet()
        yield from ep.put(flag, one, 1, pe=1)         # then the flag
        yield from ep.quiet()
        print(f"[PE 0] put + flag complete at          {sim.now * 1e6:6.1f} us")

    def pe1(sim):
        ep = world.endpoint(1)
        dst = yield from ep.symmetric_alloc(SIZE)
        flag = yield from ep.symmetric_alloc(1, fill=0)
        print("[PE 1] computing; no receive posted, ever")
        yield ep.ctx.consume(20e-6)
        yield from ep.wait_until(flag, lambda v: v == 1)
        print(f"[PE 1] wait_until(flag==1) woke at      {sim.now * 1e6:6.1f} us")
        got = ep.ctx.space.read(dst, SIZE)
        assert (got == payload).all()
        print(f"[PE 1] payload verified: {SIZE} bytes bit-exact")

    procs = [cluster.sim.process(pe0(cluster.sim)),
             cluster.sim.process(pe1(cluster.sim))]
    cluster.sim.run(until=cluster.sim.all_of(procs))
    print("\ncounters:")
    for key in ("shmem.puts", "proxy.shmem_puts",
                "gvmi.cross_registrations", "gvmi_cache.host.hit"):
        print(f"  {key:28s} {cluster.metrics.get(key):.0f}")


if __name__ == "__main__":
    main()
