#!/usr/bin/env python
"""Distributed 3-D FFT on the simulated cluster, validated against NumPy.

Runs the pencil-decomposed forward FFT (the P3DFFT pattern: local FFT,
row alltoall-transpose, local FFT, column alltoall-transpose, local
FFT) through all three runtimes -- real bytes move through the
simulated fabric -- and checks every rank's slab against a
single-process ``numpy.fft.fftn``.  Then times the non-blocking
benchmark loop (two in-flight Ialltoalls per stage) on each runtime.

Run:  python examples/fft_transpose.py
"""

from repro.apps.p3dfft import fft3d_validate, p3dfft_phase
from repro.hw import ClusterSpec

SPEC = ClusterSpec(nodes=2, ppn=4, proxies_per_dpu=2)
GRID = (16, 16, 8)


def main() -> None:
    print(f"pencil FFT of a {GRID[0]}x{GRID[1]}x{GRID[2]} grid over "
          f"{SPEC.world_size} ranks ({SPEC.nodes} nodes x {SPEC.ppn} PPN)\n")
    for flavor in ("intelmpi", "bluesmpi", "proposed"):
        ok = fft3d_validate(flavor, SPEC, *GRID)
        print(f"  {flavor:10s} distributed FFT == numpy.fft.fftn : "
              f"{'OK' if ok else 'MISMATCH'}")

    print("\nnon-blocking P3DFFT loop (64x64x256, no warm-up, 4 iterations):")
    results = {}
    for flavor in ("intelmpi", "bluesmpi", "proposed"):
        prof = p3dfft_phase(flavor, SPEC, 64, 64, 256, iters=4)
        results[flavor] = prof
        print(
            f"  {flavor:10s} overall {prof.overall * 1e3:7.3f} ms   "
            f"compute {prof.compute_time * 1e3:7.3f} ms   "
            f"in-MPI {prof.mpi_time * 1e3:7.3f} ms"
        )
    base = results["intelmpi"].overall
    print("\nnormalised to IntelMPI:")
    for flavor, prof in results.items():
        print(f"  {flavor:10s} {prof.overall / base:5.3f}x")
    print(
        "\nBluesMPI pays the staging bounce plus first-call registrations "
        "(no warm-up hides them at the application level, Section VIII-D)."
    )


if __name__ == "__main__":
    main()
