"""Reproduction of the IPDPS 2023 BlueField DPU communication-offload paper.

Kandadi Suresh et al., *A Novel Framework for Efficient Offloading of
Communication Operations to Bluefield SmartNICs* (IPDPS 2023),
reproduced end-to-end on a discrete-event cluster simulator.

Package tour (bottom-up):

* :mod:`repro.sim` -- the deterministic event kernel everything runs on.
* :mod:`repro.hw` -- the simulated machine (hosts, DPUs, HCAs, fabric).
* :mod:`repro.verbs` -- RDMA verbs + the cross-GVMI extension.
* :mod:`repro.mpi` -- a host-progressed MPI-like runtime (the baseline).
* :mod:`repro.offload` -- **the paper's framework**: Basic and Group
  primitives, DPU proxies, GVMI caches, request caches.
* :mod:`repro.baselines` -- IntelMPI-like / BluesMPI-like backends.
* :mod:`repro.apps` -- 3DStencil, P3DFFT, HPL, OMB-style benchmarks.
* :mod:`repro.experiments` -- one module per paper figure.

Start with ``examples/quickstart.py`` or
``python -m repro.experiments.runall``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
