"""A broader OSU-micro-benchmark-style suite over the CommBackend API.

Beyond the two measurements the paper's figures need
(:mod:`repro.apps.omb`), this module provides the rest of the familiar
OMB surface so downstream users can characterise a configuration the
way they would a real cluster:

* ``osu_latency``   -- blocking p2p round trip / 2, size sweep
* ``osu_bw``        -- windowed unidirectional bandwidth, size sweep
* ``osu_ibcast``    -- non-blocking broadcast overlap (OMB NBC method)
* ``osu_iallgather``-- non-blocking allgather overlap (host runtime)

All functions return plain dicts/series ready for tabulation.
"""

from __future__ import annotations

from repro.apps.harness import OverlapResult, mean
from repro.baselines.base import make_stack
from repro.hw.params import ClusterSpec
from repro.mpi import collectives as coll

__all__ = ["osu_latency", "osu_bw", "osu_ibcast", "osu_iallgather"]


def osu_latency(flavor: str, spec: ClusterSpec, sizes: list[int],
                iters: int = 10, warmup: int = 3) -> dict[int, float]:
    """Half round-trip latency per size (rank 0 <-> first rank of node 1)."""
    stack = make_stack(flavor, spec)
    peer_of = {0: spec.ppn, spec.ppn: 0}
    out: dict[int, list[float]] = {s: [] for s in sizes}

    def program(be):
        if be.rank not in peer_of:
            return None
        comm = be.stack.comm_world
        peer = peer_of[be.rank]
        lead = be.rank == 0
        for size in sizes:
            sbuf = be.ctx.space.alloc(size, fill=1)
            rbuf = be.ctx.space.alloc(size)
            for it in range(warmup + iters):
                t0 = be.sim.now
                if lead:
                    sreq = yield from be.isend(comm, peer, sbuf, size, tag=1)
                    yield from be.wait(sreq)
                    rreq = yield from be.irecv(comm, peer, rbuf, size, tag=2)
                    yield from be.wait(rreq)
                    if it >= warmup:
                        out[size].append((be.sim.now - t0) / 2)
                else:
                    rreq = yield from be.irecv(comm, peer, rbuf, size, tag=1)
                    yield from be.wait(rreq)
                    sreq = yield from be.isend(comm, peer, sbuf, size, tag=2)
                    yield from be.wait(sreq)
        return None

    stack.run(program)
    return {s: mean(v) for s, v in out.items()}


def osu_bw(flavor: str, spec: ClusterSpec, sizes: list[int],
           window: int = 32, iters: int = 4, warmup: int = 1) -> dict[int, float]:
    """Unidirectional bandwidth (bytes/s) per size, OMB window method."""
    stack = make_stack(flavor, spec)
    sender, receiver = 0, spec.ppn
    out: dict[int, list[float]] = {s: [] for s in sizes}

    def program(be):
        comm = be.stack.comm_world
        if be.rank == sender:
            for size in sizes:
                sbuf = be.ctx.space.alloc(size, fill=1)
                ack = be.ctx.space.alloc(4)
                for it in range(warmup + iters):
                    t0 = be.sim.now
                    reqs = []
                    for w in range(window):
                        reqs.append((yield from be.isend(
                            comm, receiver, sbuf, size, tag=3)))
                    yield from be.waitall(reqs)
                    areq = yield from be.irecv(comm, receiver, ack, 4, tag=4)
                    yield from be.wait(areq)
                    if it >= warmup:
                        out[size].append(window * size / (be.sim.now - t0))
        elif be.rank == receiver:
            for size in sizes:
                rbuf = be.ctx.space.alloc(size)
                ack = be.ctx.space.alloc(4, fill=1)
                for _it in range(warmup + iters):
                    reqs = []
                    for w in range(window):
                        reqs.append((yield from be.irecv(
                            comm, sender, rbuf, size, tag=3)))
                    yield from be.waitall(reqs)
                    sreq = yield from be.isend(comm, sender, ack, 4, tag=4)
                    yield from be.wait(sreq)
        return None

    stack.run(program)
    return {s: mean(v) for s, v in out.items()}


def osu_ibcast(flavor: str, spec: ClusterSpec, size: int, root: int = 0,
               iters: int = 4, warmup: int = 2) -> OverlapResult:
    """Non-blocking broadcast overlap, OMB NBC methodology."""
    stack = make_stack(flavor, spec)
    pure: list[float] = []
    overall: list[float] = []
    compute_box = [0.0]

    def program(be):
        comm = be.stack.comm_world
        addr = be.ctx.space.alloc(size, fill=1)
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            req = yield from be.ibcast(comm, root, addr, size)
            yield from be.wait(req)
            if it >= warmup and be.rank == 0:
                pure.append(be.sim.now - t0)
        yield from be.barrier(comm)
        if be.rank == 0:
            compute_box[0] = mean(pure)
        yield from be.barrier(comm)
        compute = compute_box[0]
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            req = yield from be.ibcast(comm, root, addr, size)
            yield be.ctx.consume(compute)
            yield from be.wait(req)
            if it >= warmup and be.rank == 0:
                overall.append(be.sim.now - t0)
        return None

    stack.run(program)
    return OverlapResult(pure_comm=mean(pure), overall=mean(overall),
                         compute=compute_box[0])


def osu_iallgather(spec: ClusterSpec, block: int, iters: int = 3,
                   warmup: int = 1) -> OverlapResult:
    """Non-blocking allgather overlap on the host runtime."""
    stack = make_stack("intelmpi", spec)
    P = spec.world_size
    pure: list[float] = []
    overall: list[float] = []
    compute_box = [0.0]

    def program(be):
        comm = be.stack.comm_world
        rt = be.rt
        sa = be.ctx.space.alloc(block, fill=1)
        ra = be.ctx.space.alloc(P * block)
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            req = yield from coll.iallgather(rt, comm, sa, ra, block)
            yield from rt.wait(req)
            if it >= warmup and be.rank == 0:
                pure.append(be.sim.now - t0)
        yield from be.barrier(comm)
        if be.rank == 0:
            compute_box[0] = mean(pure)
        yield from be.barrier(comm)
        compute = compute_box[0]
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            req = yield from coll.iallgather(rt, comm, sa, ra, block)
            yield be.ctx.consume(compute)
            yield from rt.wait(req)
            if it >= warmup and be.rank == 0:
                overall.append(be.sim.now - t0)
        return None

    stack.run(program)
    return OverlapResult(pure_comm=mean(pure), overall=mean(overall),
                         compute=compute_box[0])
