"""The in-house 3DStencil overlap benchmark (paper Section VIII-A).

Each rank owns a sub-brick of an ``N^3`` double-precision grid on a 3-D
process grid and, per iteration, exchanges halo faces with up to six
neighbours using non-blocking point-to-point operations overlapped with
a dummy compute region, then waits on everything.

The paper's observation reproduced here: with Basic-primitive offload
the inter-node exchanges progress on the DPU, but the *intra-node*
transfers still ride shared memory and block the CPU -- which is why
the Proposed scheme's overlap tops out around ~78% instead of 100%
(Fig 12), while IntelMPI's overlap degrades as faces grow into deep
rendezvous territory.

``halo_exchange_validate`` runs a real-data halo exchange and checks
every received face, giving the pattern end-to-end numerical coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.harness import OverlapResult, compute_with_tests, dims_create, mean
from repro.baselines.base import make_stack
from repro.hw.params import ClusterSpec

__all__ = ["StencilGeometry", "stencil_overlap", "halo_exchange_validate"]

#: Canonical face ids: 0:-x 1:+x 2:-y 3:+y 4:-z 5:+z.  The opposite
#: face (the one the neighbour uses toward us) is ``face ^ 1``.
N_FACES = 6


@dataclass(frozen=True)
class StencilGeometry:
    """Problem geometry: global grid N^3 over a (px, py, pz) grid."""

    n: int
    px: int
    py: int
    pz: int

    @staticmethod
    def for_world(n: int, nprocs: int) -> "StencilGeometry":
        px, py, pz = dims_create(nprocs, 3)
        return StencilGeometry(n=n, px=px, py=py, pz=pz)

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.n // self.px, self.n // self.py, self.n // self.pz)

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        x = rank // (self.py * self.pz)
        y = (rank // self.pz) % self.py
        z = rank % self.pz
        return x, y, z

    def rank_of(self, x: int, y: int, z: int) -> int:
        return (x * self.py + y) * self.pz + z

    def neighbours(self, rank: int) -> list[tuple[int, int, int]]:
        """(face_id, neighbour rank, face bytes) for each existing face."""
        x, y, z = self.coords_of(rank)
        lx, ly, lz = self.local_shape
        candidates = [
            (0, x - 1, y, z, ly * lz), (1, x + 1, y, z, ly * lz),
            (2, x, y - 1, z, lx * lz), (3, x, y + 1, z, lx * lz),
            (4, x, y, z - 1, lx * ly), (5, x, y, z + 1, lx * ly),
        ]
        out = []
        for face, nx, ny, nz, cells in candidates:
            if 0 <= nx < self.px and 0 <= ny < self.py and 0 <= nz < self.pz:
                out.append((face, self.rank_of(nx, ny, nz), cells * 8))
        return out

    def compute_seconds(self, flops_per_core: float, flops_per_cell: float = 8.0) -> float:
        lx, ly, lz = self.local_shape
        return lx * ly * lz * flops_per_cell / flops_per_core


def stencil_overlap(
    flavor: str,
    spec: ClusterSpec,
    n: int,
    iters: int = 4,
    warmup: int = 2,
    test_chunk: float = 5e-6,
    compute_scale: float = 1.0,
) -> OverlapResult:
    """One cell of Figs 11/12 for one runtime and one problem size."""
    stack = make_stack(flavor, spec)
    # Timing-only benchmark: nothing reads the halo buffers, so skip
    # moving real bytes (see Cluster.payloads).
    stack.cluster.payloads = False
    geo = StencilGeometry.for_world(n, spec.world_size)
    compute = geo.compute_seconds(spec.params.host_flops_per_core) * compute_scale
    pure_samples: list[float] = []
    overall_samples: list[float] = []

    def exchange(be, comm, sbufs, rbufs, neighbours):
        reqs = []
        for (face, peer, nbytes), rbuf in zip(neighbours, rbufs):
            reqs.append(
                (yield from be.irecv(comm, peer, rbuf, nbytes, tag=40 + (face ^ 1)))
            )
        for (face, peer, nbytes), sbuf in zip(neighbours, sbufs):
            reqs.append((yield from be.isend(comm, peer, sbuf, nbytes, tag=40 + face)))
        return reqs

    def program(be):
        comm = be.stack.comm_world
        neighbours = geo.neighbours(be.rank)
        sbufs = [be.ctx.space.alloc(nb) for _f, _p, nb in neighbours]
        rbufs = [be.ctx.space.alloc(nb) for _f, _p, nb in neighbours]

        # pure-communication phase
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            reqs = yield from exchange(be, comm, sbufs, rbufs, neighbours)
            yield from be.waitall(reqs)
            if it >= warmup and be.rank == 0:
                pure_samples.append(be.sim.now - t0)

        # overlapped phase
        for it in range(warmup + iters):
            yield from be.barrier(comm)
            t0 = be.sim.now
            reqs = yield from exchange(be, comm, sbufs, rbufs, neighbours)
            yield from compute_with_tests(be, reqs, compute, chunk=test_chunk)
            yield from be.waitall(reqs)
            if it >= warmup and be.rank == 0:
                overall_samples.append(be.sim.now - t0)
        return None

    stack.run(program)
    return OverlapResult(
        pure_comm=mean(pure_samples), overall=mean(overall_samples), compute=compute
    )


def halo_exchange_validate(flavor: str, spec: ClusterSpec, n: int = 8) -> bool:
    """Real-data halo exchange: every face must arrive bit-exact.

    Face data is a deterministic function of (owner rank, face id), so a
    receiver knows exactly which bytes its neighbour must have sent to
    the face pointing back at it.
    """
    stack = make_stack(flavor, spec)
    geo = StencilGeometry.for_world(n, spec.world_size)

    def face_pattern(owner: int, face: int, nbytes: int) -> np.ndarray:
        rng = np.random.default_rng(1000 * owner + face)
        return rng.integers(0, 255, size=nbytes, dtype=np.uint8)

    def program(be):
        comm = be.stack.comm_world
        neighbours = geo.neighbours(be.rank)
        sbufs, rbufs = [], []
        for face, _peer, nbytes in neighbours:
            sbufs.append(be.ctx.space.alloc_like(face_pattern(be.rank, face, nbytes)))
            rbufs.append(be.ctx.space.alloc(nbytes))
        reqs = []
        for (face, peer, nbytes), rbuf in zip(neighbours, rbufs):
            reqs.append(
                (yield from be.irecv(comm, peer, rbuf, nbytes, tag=40 + (face ^ 1)))
            )
        for (face, peer, nbytes), sbuf in zip(neighbours, sbufs):
            reqs.append((yield from be.isend(comm, peer, sbuf, nbytes, tag=40 + face)))
        yield from be.waitall(reqs)
        for (face, peer, nbytes), rbuf in zip(neighbours, rbufs):
            got = be.ctx.space.read(rbuf, nbytes)
            want = face_pattern(peer, face ^ 1, nbytes)
            if not (got == want).all():
                raise AssertionError(f"rank {be.rank}: face {face} from {peer} corrupt")
        return True

    return all(stack.run(program))
