"""P3DFFT: pencil-decomposed parallel 3-D FFT (paper Section VIII-D).

Two entry points:

* :func:`fft3d_validate` -- a **real** distributed forward FFT on a
  small grid: pack / alltoall / unpack with genuine bytes through the
  chosen runtime, local ``numpy.fft`` stages, final comparison against
  a single-process ``numpy.fft.fftn``.  This validates the transpose
  communication end to end.
* :func:`p3dfft_phase` -- the performance benchmark reproducing the
  paper's measured structure (Fig 16c): each compute loop posts **two**
  Ialltoalls on *different* buffers, computes, waits for one, computes
  more, waits for the other.  Two back-to-back collectives on fresh
  buffers are exactly what exposed BluesMPI's warm-up pathology at the
  application level.

Decomposition: a ``R x C`` processor grid; rank ``r*C + c``.
x-pencils ``(X, Y/R, Z/C)`` --row-alltoall--> y-pencils ``(X/R, Y, Z/C)``
--column-alltoall--> z-pencils ``(X/R, Y/C, Z)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.harness import compute_with_tests, dims_create
from repro.baselines.base import make_stack
from repro.hw.params import ClusterSpec

__all__ = ["PencilGrid", "fft3d_validate", "p3dfft_phase", "P3dfftProfile"]


@dataclass(frozen=True)
class PencilGrid:
    """Processor grid and problem geometry."""

    x: int
    y: int
    z: int
    rows: int  # R
    cols: int  # C

    @staticmethod
    def for_world(x: int, y: int, z: int, nprocs: int) -> "PencilGrid":
        r, c = dims_create(nprocs, 2)
        return PencilGrid(x=x, y=y, z=z, rows=r, cols=c)

    def check(self) -> None:
        if self.x % self.rows or self.y % self.rows:
            raise ValueError("X and Y must divide by the row count")
        if self.y % self.cols or self.z % self.cols:
            raise ValueError("Y and Z must divide by the column count")

    def coords(self, rank: int) -> tuple[int, int]:
        return rank // self.cols, rank % self.cols

    def rank_of(self, r: int, c: int) -> int:
        return r * self.cols + c

    # -- communication volumes (per rank, bytes, complex128) ----------------
    @property
    def row_block_bytes(self) -> int:
        """Per-peer block in the x->y transpose (alltoall over R ranks)."""
        return (self.x // self.rows) * (self.y // self.rows) * (self.z // self.cols) * 16

    @property
    def col_block_bytes(self) -> int:
        """Per-peer block in the y->z transpose (alltoall over C ranks)."""
        return (self.x // self.rows) * (self.y // self.cols) * (self.z // self.cols) * 16

    # -- compute model -------------------------------------------------------
    #: Fraction of peak FLOP/s a strided 1-D FFT sustains (memory-bound;
    #: ~10-20% of peak on Broadwell-class cores).
    FFT_EFFICIENCY = 0.15

    def fft_seconds(self, axis_len: int, n_pencils: int, flops_per_core: float) -> float:
        """Time for ``n_pencils`` complex 1-D FFTs of ``axis_len``."""
        flops = n_pencils * 5.0 * axis_len * max(1.0, math.log2(axis_len))
        return flops / (flops_per_core * self.FFT_EFFICIENCY)


# ---------------------------------------------------------------------------
# validation: a real distributed forward FFT
# ---------------------------------------------------------------------------

def fft3d_validate(flavor: str, spec: ClusterSpec, x: int = 8, y: int = 8, z: int = 8,
                   seed: int = 7) -> bool:
    """Distributed forward FFT == ``numpy.fft.fftn`` (small grids)."""
    grid = PencilGrid.for_world(x, y, z, spec.world_size)
    grid.check()
    stack = make_stack(flavor, spec)

    rng = np.random.default_rng(seed)
    full = (rng.standard_normal((x, y, z)) + 1j * rng.standard_normal((x, y, z))).astype(
        np.complex128
    )
    reference = np.fft.fftn(full)
    R, C = grid.rows, grid.cols

    def program(be):
        comm_world = be.stack.comm_world
        r, c = grid.coords(be.rank)
        # Row communicator: same c, varying r.  Column: same r, varying c.
        colors_row = [grid.coords(w)[1] for w in range(spec.world_size)]
        colors_col = [grid.coords(w)[0] for w in range(spec.world_size)]
        row_comm = comm_world.split(colors_row)[c]
        col_comm = comm_world.split(colors_col)[r]

        # x-pencil: (X, Y/R, Z/C)
        local = full[:, r * (y // R):(r + 1) * (y // R), c * (z // C):(c + 1) * (z // C)].copy()
        local = np.fft.fft(local, axis=0)

        # --- transpose 1: x-pencils -> y-pencils over row_comm (size R) ---
        xs = x // R
        blk1 = grid.row_block_bytes
        sbuf = be.ctx.space.alloc(R * blk1)
        rbuf = be.ctx.space.alloc(R * blk1)
        for rp in range(R):
            block = np.ascontiguousarray(local[rp * xs:(rp + 1) * xs, :, :])
            be.ctx.space.write(sbuf + rp * blk1, block.view(np.uint8).reshape(-1))
        req = yield from be.ialltoall(row_comm, sbuf, rbuf, blk1)
        yield from be.wait(req)
        ypencil = np.empty((xs, y, z // C), dtype=np.complex128)
        for rp in range(R):
            raw = be.ctx.space.read(rbuf + rp * blk1, blk1)
            block = raw.view(np.complex128).reshape(xs, y // R, z // C)
            ypencil[:, rp * (y // R):(rp + 1) * (y // R), :] = block
        ypencil = np.fft.fft(ypencil, axis=1)

        # --- transpose 2: y-pencils -> z-pencils over col_comm (size C) ---
        yc = y // C
        blk2 = grid.col_block_bytes
        sbuf2 = be.ctx.space.alloc(C * blk2)
        rbuf2 = be.ctx.space.alloc(C * blk2)
        for cp in range(C):
            block = np.ascontiguousarray(ypencil[:, cp * yc:(cp + 1) * yc, :])
            be.ctx.space.write(sbuf2 + cp * blk2, block.view(np.uint8).reshape(-1))
        req = yield from be.ialltoall(col_comm, sbuf2, rbuf2, blk2)
        yield from be.wait(req)
        zpencil = np.empty((xs, yc, z), dtype=np.complex128)
        for cp in range(C):
            raw = be.ctx.space.read(rbuf2 + cp * blk2, blk2)
            block = raw.view(np.complex128).reshape(xs, yc, z // C)
            zpencil[:, :, cp * (z // C):(cp + 1) * (z // C)] = block
        zpencil = np.fft.fft(zpencil, axis=2)

        want = reference[r * xs:(r + 1) * xs, c * yc:(c + 1) * yc, :]
        if not np.allclose(zpencil, want, atol=1e-9):
            raise AssertionError(f"rank {be.rank}: FFT mismatch")
        return True

    return all(stack.run(program))


# ---------------------------------------------------------------------------
# benchmark: the paper's measured loop structure
# ---------------------------------------------------------------------------

@dataclass
class P3dfftProfile:
    """Per-run timing for Fig 16: overall plus compute/MPI split (16c)."""

    overall: float
    compute_time: float
    mpi_time: float
    iters: int

    @property
    def per_iter(self) -> float:
        return self.overall / max(1, self.iters)


def p3dfft_phase(
    flavor: str,
    spec: ClusterSpec,
    x: int,
    y: int,
    z: int,
    iters: int = 3,
    test_chunk: float | None = None,
) -> P3dfftProfile:
    """Forward-transform phases with two in-flight Ialltoalls each.

    No warm-up iterations -- deliberately, as in the application-level
    runs of the paper (Section VIII-D explains why this matters).
    Returns aggregate timing from rank 0's perspective.
    """
    grid = PencilGrid.for_world(x, y, z, spec.world_size)
    grid.check()
    stack = make_stack(flavor, spec)
    # Timing-only benchmark (fft3d_validate covers the data path):
    # nothing reads the transpose buffers, so skip moving real bytes.
    stack.cluster.payloads = False
    R, C = grid.rows, grid.cols
    p = spec.params
    result: dict[str, float] = {}

    def program(be):
        comm_world = be.stack.comm_world
        r, c = grid.coords(be.rank)
        colors_row = [grid.coords(w)[1] for w in range(spec.world_size)]
        colors_col = [grid.coords(w)[0] for w in range(spec.world_size)]
        row_comm = comm_world.split(colors_row)[c]
        col_comm = comm_world.split(colors_col)[r]

        blk1, blk2 = grid.row_block_bytes, grid.col_block_bytes
        # Two independent buffer pairs per transpose -- the "two
        # MPI_Ialltoall calls with different buffers" of Fig 16c.
        bufs1 = [(be.ctx.space.alloc(R * blk1), be.ctx.space.alloc(R * blk1))
                 for _ in range(2)]
        bufs2 = [(be.ctx.space.alloc(C * blk2), be.ctx.space.alloc(C * blk2))
                 for _ in range(2)]

        xs, yr, zc = x // R, y // R, z // C
        fft_x = grid.fft_seconds(x, (yr * zc) // 2, p.host_flops_per_core)
        fft_y = grid.fft_seconds(y, (xs * zc) // 2, p.host_flops_per_core)
        fft_z = grid.fft_seconds(z, (xs * (y // C)) // 2, p.host_flops_per_core)

        compute_acc = [0.0]

        def compute(duration, reqs):
            t0 = be.sim.now
            yield from compute_with_tests(be, reqs, duration, chunk=test_chunk)
            compute_acc[0] += duration
            _ = t0

        t_start = be.sim.now
        for _it in range(iters):
            # Stage 1: FFT along X (split in two halves), row transposes.
            ra = yield from be.ialltoall(row_comm, *bufs1[0], blk1)
            rb = yield from be.ialltoall(row_comm, *bufs1[1], blk1)
            yield from compute(fft_x, [ra, rb])
            yield from be.wait(ra)
            yield from compute(fft_x, [rb])
            yield from be.wait(rb)
            # Stage 2: FFT along Y, column transposes.
            ca = yield from be.ialltoall(col_comm, *bufs2[0], blk2)
            cb = yield from be.ialltoall(col_comm, *bufs2[1], blk2)
            yield from compute(fft_y, [ca, cb])
            yield from be.wait(ca)
            yield from compute(fft_y, [cb])
            yield from be.wait(cb)
            # Stage 3: FFT along Z (no further transpose in the forward pass).
            yield from compute(fft_z * 2, [])
        overall = be.sim.now - t_start
        if be.rank == 0:
            result["overall"] = overall
            result["compute"] = compute_acc[0]
            result["comm"] = be.time_in_comm
        return overall

    stack.run(program)
    return P3dfftProfile(
        overall=result["overall"],
        compute_time=result["compute"],
        mpi_time=result["comm"],
        iters=iters,
    )
