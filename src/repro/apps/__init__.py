"""Applications and micro-benchmarks from the paper's evaluation.

* :mod:`repro.apps.omb` -- OSU-micro-benchmark-style measurements:
  non-blocking pingpong (Fig 4) and the non-blocking-collective overlap
  methodology (Figs 13/14).
* :mod:`repro.apps.stencil3d` -- the in-house 3DStencil overlap
  benchmark (Figs 11/12): up to 6-neighbour halo exchange overlapped
  with dummy compute.
* :mod:`repro.apps.p3dfft` -- pencil-decomposed 3-D FFT with two
  in-flight Ialltoalls per phase (Fig 16), numerically validated
  against ``numpy.fft`` at small scale.
* :mod:`repro.apps.hpl` -- HPL-like LU driver with look-ahead panel
  broadcast (Fig 17): 1-ring over p2p vs Ibcast over each runtime.

Every app is written against :class:`repro.baselines.base.CommBackend`,
so one source drives all three runtimes.
"""

from repro.apps.harness import (
    OverlapResult,
    compute_with_tests,
    dims_create,
    mean,
)

__all__ = ["OverlapResult", "compute_with_tests", "dims_create", "mean"]
