"""HPL-like LU factorization driver (paper Section VIII-D, Fig 17).

HPL's communication hot spot is the **panel broadcast**: after a block
column is factored, it is forwarded along the process row while the
ranks overlap the trailing-matrix update (the "look-ahead").  Stock HPL
implements this as a *1-ring* pipeline over point-to-point operations
-- precisely Listing 1 of the paper: every hop needs the CPU to notice
the arrival before it can forward, so the pipeline stalls whenever
ranks are inside the update GEMM.

Entry points:

* :func:`lu_validate` -- a **real** right-looking blocked LU (no
  pivoting, diagonally dominant matrix) on a 1-D block-cyclic column
  distribution, with panel broadcasts moving genuine bytes through the
  chosen runtime; the reassembled ``L @ U`` must equal ``A``.
* :func:`hpl_run` -- the performance model on a ``P x Q`` grid:
  per step, panel factorization (compute), panel broadcast along the
  process row (1-ring over p2p, or Ibcast over any runtime), trailing
  update (compute) overlapped with the broadcast.

Problem sizing mirrors the paper: ``n_for_memory_fraction`` converts
"x% of system memory" into a matrix order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.harness import compute_with_tests, dims_create
from repro.baselines.base import make_stack
from repro.hw.params import ClusterSpec

__all__ = ["lu_validate", "hpl_run", "HplResult", "n_for_memory_fraction"]


def n_for_memory_fraction(fraction: float, node_mem_bytes: float, nodes: int,
                          scale: float = 1.0) -> int:
    """Matrix order occupying ``fraction`` of total cluster memory.

    ``scale`` shrinks the problem for simulation (the *shape* of Fig 17
    depends on ratios, not absolute sizes); the returned order is
    rounded to a multiple of 64.
    """
    total = fraction * node_mem_bytes * nodes * scale
    n = int(math.sqrt(total / 8.0))
    return max(64, (n // 64) * 64)


# ---------------------------------------------------------------------------
# numeric validation
# ---------------------------------------------------------------------------

def lu_validate(flavor: str, spec: ClusterSpec, n: int = 32, nb: int = 8,
                seed: int = 3) -> bool:
    """Distributed blocked LU (1-D block-cyclic columns) == numpy.

    Panels are broadcast with real payloads through the runtime's
    ``ibcast``; at the end the factors are reassembled and ``L @ U``
    compared against the original matrix.
    """
    if n % nb:
        raise ValueError("n must be a multiple of nb")
    stack = make_stack(flavor, spec)
    P = spec.world_size
    nblocks = n // nb

    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n)) + n * np.eye(n)  # diagonally dominant
    finals: dict[int, dict[int, np.ndarray]] = {}

    def program(be):
        comm = be.stack.comm_world
        my_blocks = [j for j in range(nblocks) if j % P == be.rank]
        local = {j: a0[:, j * nb:(j + 1) * nb].copy() for j in my_blocks}
        panel_addr = be.ctx.space.alloc(n * nb * 8)

        for k in range(nblocks):
            owner = k % P
            k0, k1 = k * nb, (k + 1) * nb
            rows = n - k0
            if be.rank == owner:
                # Unblocked LU of the panel (columns k0:k1, rows k0:n).
                panel = local[k][k0:, :]  # (rows, nb) view
                for j in range(nb):
                    piv = panel[j, j]
                    panel[j + 1:, j] /= piv
                    panel[j + 1:, j + 1:] -= np.outer(panel[j + 1:, j], panel[j, j + 1:])
                be.ctx.space.write(panel_addr, np.ascontiguousarray(panel))
            req = yield from be.ibcast(comm, owner, panel_addr, rows * nb * 8)
            yield from be.wait(req)
            panel = be.ctx.space.read(panel_addr, rows * nb * 8).view(np.float64)
            panel = panel.reshape(rows, nb)
            l11 = np.tril(panel[:nb, :], -1) + np.eye(nb)
            l21 = panel[nb:, :]
            # Update my trailing columns.
            for j in my_blocks:
                if j <= k:
                    continue
                block = local[j]
                u12 = np.linalg.solve(l11, block[k0:k1, :])
                block[k0:k1, :] = u12
                block[k1:, :] -= l21 @ u12
        finals[be.rank] = local
        return True

    ok = all(stack.run(program))

    # Reassemble and verify L @ U == A.
    full = np.zeros((n, n))
    for rank_blocks in finals.values():
        for j, block in rank_blocks.items():
            full[:, j * nb:(j + 1) * nb] = block
    lower = np.tril(full, -1) + np.eye(n)
    upper = np.triu(full)
    if not np.allclose(lower @ upper, a0, atol=1e-8 * n):
        raise AssertionError("LU factors do not reproduce A")
    return ok


# ---------------------------------------------------------------------------
# performance model
# ---------------------------------------------------------------------------

@dataclass
class HplResult:
    """One HPL run: total wall time and its decomposition (rank 0)."""

    total: float
    n: int
    nb: int
    steps: int
    comm_time: float
    compute_time: float


def hpl_run(
    flavor: str,
    spec: ClusterSpec,
    n: int,
    nb: int = 128,
    bcast: str = "ibcast",
    tests_per_update: int = 8,
    max_steps: int | None = None,
    grid: tuple[int, int] | None = None,
) -> HplResult:
    """LU cost model on a P x Q grid with look-ahead panel broadcast.

    Per step *k* (look-ahead depth 1, as in stock HPL):

    1. the column owning panel *k+1* applies the urgent slice of the
       update to its own panel and factors it (critical path);
    2. panel *k+1* is broadcast along the process rows;
    3. everyone computes the trailing update of step *k*, probing the
       broadcast between GEMM blocks (``tests_per_update`` probes --
       HPL tests at this coarse, per-block granularity, which is
       exactly why the 1-ring pipeline stalls: a middle rank forwards
       the panel only when a probe notices it arrived);
    4. wait for the broadcast (look-ahead window closed).

    ``bcast``:
      * ``"1ring"`` -- stock HPL's p2p ring with CPU-driven forwarding
        (Listing 1 / IntelMPI-HPL-1ring);
      * ``"ibcast"`` -- the runtime's non-blocking broadcast (IntelMPI
        binomial, BluesMPI staged offload, Proposed group-offload ring).

    ``max_steps`` truncates the factorization (per-step cost decays, so
    a prefix dominates; keeps simulation cost bounded at large n/nb).
    """
    if bcast not in ("1ring", "ibcast"):
        raise ValueError(f"unknown bcast variant {bcast!r}")
    stack = make_stack(flavor, spec)
    # Timing-only cost model (lu_validate covers the data path):
    # nothing reads the panel bytes, so skip moving them.
    stack.cluster.payloads = False
    if grid is not None:
        grid_p, grid_q = grid
        if grid_p * grid_q != spec.world_size:
            raise ValueError(f"grid {grid} does not tile {spec.world_size} ranks")
    else:
        # HPL practice: P <= Q (a flatter grid keeps the row broadcast long).
        grid_p, grid_q = sorted(dims_create(spec.world_size, 2))
    steps = n // nb
    if max_steps is not None:
        steps = min(steps, max_steps)
    flops = spec.params.host_flops_per_core
    out: dict[str, float] = {}

    def program(be):
        comm_world = be.stack.comm_world
        my_p = be.rank // grid_q
        my_q = be.rank % grid_q
        # Process-row communicator: same p, all q (panel travels along it).
        colors = [w // grid_q for w in range(spec.world_size)]
        row_comm = comm_world.split(colors)[my_p]

        max_panel = (n // grid_p + nb) * nb * 8
        panel_addr = be.ctx.space.alloc(max(64, max_panel))
        t_start = be.sim.now
        compute_acc = 0.0

        for k in range(steps):
            rows_rem = n - k * nb
            owner_q = (k + 1) % grid_q  # owner of the *next* panel
            # --- look-ahead: urgent update + factorization of panel k+1 ---
            if my_q == owner_q:
                urgent = 2.0 * rows_rem * nb * nb / (flops * grid_p)
                fact = rows_rem * nb * nb / (flops * grid_p)
                yield be.ctx.consume(urgent + fact)
                compute_acc += urgent + fact
            # --- panel broadcast along the process row ---
            panel_bytes = max(64, (rows_rem // grid_p) * nb * 8)
            if bcast == "1ring":
                reqs = yield from _ring_bcast_p2p(be, row_comm, owner_q,
                                                  panel_addr, panel_bytes)
            else:
                req = yield from be.ibcast(row_comm, owner_q, panel_addr, panel_bytes)
                reqs = [req]
            # --- trailing update of step k, overlapped with the bcast ---
            cols_rem = n - (k + 1) * nb
            update = 2.0 * cols_rem * rows_rem * nb / (flops * grid_p * grid_q)
            chunk = max(1e-6, update / max(1, tests_per_update))
            yield from compute_with_tests(be, reqs, update, chunk=chunk)
            compute_acc += update
            yield from be.waitall(reqs)
        total = be.sim.now - t_start
        if be.rank == 0:
            out["total"] = total
            out["comm"] = be.time_in_comm
            out["compute"] = compute_acc
        return total

    stack.run(program)
    return HplResult(
        total=out["total"], n=n, nb=nb, steps=steps,
        comm_time=out["comm"], compute_time=out["compute"],
    )


def _ring_bcast_p2p(be, comm, root: int, addr: int, size: int):
    """Stock HPL's 1-ring forward over plain point-to-point.

    Returns the request list this rank must still wait on.  A middle
    rank has a data dependency: it cannot post its forward send until
    its receive completes -- handled by the caller's test-driven compute
    loop via a :class:`_RingForwardState` shim that mimics a request.
    """
    me = comm.rank_of(be.rank)
    p = comm.size
    if p == 1:
        return []
    right = (me + 1) % p
    left = (me - 1) % p
    last = (root - 1) % p
    if me == root:
        req = yield from be.isend(comm, right, addr, size, tag=53)
        return [req]
    recv = yield from be.irecv(comm, left, addr, size, tag=53)
    if me == last:
        return [recv]
    return [_RingForward(be, comm, recv, right, addr, size)]


class _RingForward:
    """Request shim: receive, then forward -- Listing 1's shape.

    ``complete`` only turns true after the receive has finished *and*
    the forward send has been posted and completed; the forward can only
    be posted from inside a ``test``/``wait`` (CPU intervention), which
    is exactly the delay the paper's Fig 1 case (1) illustrates.
    """

    def __init__(self, be, comm, recv_req, right, addr, size):
        self.be = be
        self.comm = comm
        self.recv_req = recv_req
        self.right = right
        self.addr = addr
        self.size = size
        self.send_req = None

    @property
    def complete(self) -> bool:
        return bool(
            self.recv_req.complete and self.send_req is not None and self.send_req.complete
        )

    def advance(self):
        """Called from test/wait: post the forward once the recv landed."""
        if self.recv_req.complete and self.send_req is None:
            self.send_req = yield from self.be._isend(
                self.comm, self.right, self.addr, self.size, tag=53
            )

    def blocking_events(self) -> list:
        """Events a waiter may sleep on (offload-style requests only;
        host-MPI requests complete via the runtime's incoming queue)."""
        events = []
        for req in (self.recv_req, self.send_req):
            if req is not None and not req.complete:
                ev = getattr(req, "event", None)
                if ev is not None:
                    events.append(ev)
        return events
