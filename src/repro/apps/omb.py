"""OSU-micro-benchmark-style measurements.

``pingpong_latency`` reproduces the motivation benchmark of Fig 4
(non-blocking sends/receives + waitall, host runtime vs the
staging-based offload) and also runs the proposed GVMI path for the
framework-vs-staging comparison.

``ialltoall_overlap`` reproduces the OMB non-blocking-collective
methodology used for Figs 13/14: measure pure communication time,
size a dummy compute region to it, then measure the overall time of
(post collective, compute, wait) and derive the overlap percentage.
"""

from __future__ import annotations

from repro.apps.harness import OverlapResult, compute_with_tests, mean
from repro.baselines.base import make_stack
from repro.hw.params import ClusterSpec

__all__ = ["pingpong_latency", "ialltoall_overlap", "run_ialltoall_series"]


def pingpong_latency(
    flavor: str,
    spec: ClusterSpec,
    size: int,
    iters: int = 20,
    warmup: int = 4,
) -> float:
    """Average one-iteration latency of a concurrent two-way exchange.

    Ranks 0 and ``ppn`` (first rank of node 1) each post an isend and an
    irecv of ``size`` bytes and wait for both -- the "non-blocking
    pingpong (concurrent two-way isend/irecvs)" of Fig 4.  Returns
    seconds per iteration.
    """
    stack = make_stack(flavor, spec)
    # Timing-only benchmark: nothing reads the buffers, so skip moving
    # real bytes (see Cluster.payloads).
    stack.cluster.payloads = False
    peer_of = {0: spec.ppn, spec.ppn: 0}
    samples: list[float] = []

    def program(be):
        if be.rank not in peer_of:
            return None
        comm = be.stack.comm_world
        peer = peer_of[be.rank]
        sbuf = be.ctx.space.alloc(size)
        rbuf = be.ctx.space.alloc(size)
        for it in range(warmup + iters):
            t0 = be.sim.now
            rreq = yield from be.irecv(comm, peer, rbuf, size, tag=5)
            sreq = yield from be.isend(comm, peer, sbuf, size, tag=5)
            yield from be.waitall([sreq, rreq])
            if it >= warmup and be.rank == 0:
                samples.append(be.sim.now - t0)
        return None

    stack.run(program)
    return mean(samples)


def ialltoall_overlap(
    flavor: str,
    spec: ClusterSpec,
    block: int,
    iters: int = 5,
    warmup: int = 2,
    use_warmup: bool = True,
    test_chunk: float = 5e-6,
) -> OverlapResult:
    """One cell of Figs 13/14: Ialltoall + compute on one runtime.

    ``block`` is the per-peer message size.  ``use_warmup=False``
    reproduces the paper's no-warm-up application observation (the
    BluesMPI first-iteration pathology, Section VIII-D).
    """
    stack = make_stack(flavor, spec)
    # Timing-only benchmark: nothing reads the buffers, so skip moving
    # real bytes (see Cluster.payloads).
    stack.cluster.payloads = False
    P = spec.world_size
    pure_samples: list[float] = []
    overall_samples: list[float] = []
    compute_box = [0.0]

    def program(be):
        comm = be.stack.comm_world
        sbuf = be.ctx.space.alloc(P * block)
        rbuf = be.ctx.space.alloc(P * block)
        n_warm = warmup if use_warmup else 0

        # Phase 1: pure communication time.
        for it in range(n_warm + iters):
            t0 = be.sim.now
            req = yield from be.ialltoall(comm, sbuf, rbuf, block)
            yield from be.wait(req)
            if it >= n_warm and be.rank == 0:
                pure_samples.append(be.sim.now - t0)
        yield from be.barrier(comm)

        # Phase 2: overlapped. Compute region sized to the pure time
        # (the OMB methodology).
        if be.rank == 0:
            compute_box[0] = mean(pure_samples)
        yield from be.barrier(comm)
        compute = compute_box[0]
        for it in range(n_warm + iters):
            t0 = be.sim.now
            req = yield from be.ialltoall(comm, sbuf, rbuf, block)
            yield from compute_with_tests(be, req, compute, chunk=test_chunk)
            yield from be.wait(req)
            yield from be.barrier(comm)
            if it >= n_warm and be.rank == 0:
                overall_samples.append(be.sim.now - t0)
        return None

    stack.run(program)
    return OverlapResult(
        pure_comm=mean(pure_samples),
        overall=mean(overall_samples),
        compute=compute_box[0],
    )


def run_ialltoall_series(
    flavors: list[str],
    spec: ClusterSpec,
    blocks: list[int],
    **kw,
) -> dict[str, list[OverlapResult]]:
    """Sweep of :func:`ialltoall_overlap` across runtimes and sizes."""
    return {
        flavor: [ialltoall_overlap(flavor, spec, b, **kw) for b in blocks]
        for flavor in flavors
    }
