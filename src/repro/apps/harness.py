"""Shared measurement utilities for the application benchmarks."""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["mean", "dims_create", "compute_with_tests", "OverlapResult"]


def mean(xs) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def dims_create(nprocs: int, ndims: int) -> list[int]:
    """Balanced factorisation of ``nprocs`` into ``ndims`` factors
    (similar in spirit to ``MPI_Dims_create``); descending order."""
    dims = [1] * ndims
    n = nprocs
    f = 2
    factors: list[int] = []
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return sorted(dims, reverse=True)


def compute_with_tests(be, reqs, total: float, chunk: float | None = 5e-6):
    """Model an application compute region of ``total`` seconds that
    pokes the library between chunks (the Listing-1 pattern).

    A host-progressed MPI advances its protocol only inside those
    ``test`` calls; the offloaded runtimes complete independently and
    the tests are nearly free.  ``chunk=None`` models the pure OMB
    overlap methodology -- one uninterrupted compute block with no
    intermediate library calls at all.  A generator; returns the number
    of test calls made.
    """
    if not isinstance(reqs, (list, tuple)):
        reqs = [reqs]
    if chunk is None:
        if total > 0:
            yield be.ctx.consume(total)
        return 0
    remaining = total
    tests = 0
    while remaining > 0:
        step = min(chunk, remaining)
        yield be.ctx.consume(step)
        remaining -= step
        if remaining > 0:
            pending = [r for r in reqs if not r.complete]
            if pending:
                yield from be.test(pending[0])
                tests += 1
    return tests


@dataclass
class OverlapResult:
    """One cell of an OMB-style overlap measurement (per size/config)."""

    #: Average pure-communication time (post + immediate wait), seconds.
    pure_comm: float
    #: Average overall time of (post, compute, wait), seconds.
    overall: float
    #: The modelled compute duration used, seconds.
    compute: float

    @property
    def overlap_pct(self) -> float:
        """OMB non-blocking-collective overlap definition."""
        if self.pure_comm <= 0:
            return 0.0
        return max(0.0, min(100.0, 100.0 * (1.0 - (self.overall - self.compute) / self.pure_comm)))
