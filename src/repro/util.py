"""Small shared utilities: crash-safe file writes.

Every durable artifact the repo produces -- ``results/*.json`` tables,
golden-trace regenerations, benchmark snapshots, and the campaign
journal records -- goes through :func:`atomic_write`: the bytes land in
a per-process temp file, are fsynced, and are renamed over the target
in one atomic step.  A reader (or a resumed campaign) therefore never
observes a half-written file, no matter where a SIGKILL / OOM / power
cut lands, and concurrent pytest-xdist workers can never interleave
partial contents.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

__all__ = ["atomic_write", "write_if_changed"]

#: Per-process counter so two atomic writes to the same target from one
#: process (e.g. a retried journal record) never share a temp name.
_TMP_IDS = itertools.count()


def atomic_write(path: str | Path, data: str | bytes, fsync: bool = True) -> Path:
    """Write ``data`` to ``path`` via tmp + fsync + atomic rename.

    ``data`` may be text (encoded UTF-8) or bytes.  With ``fsync=True``
    (the default) the file contents are flushed to stable storage before
    the rename, and the containing directory entry is fsynced after it
    -- the write-ahead discipline journal records rely on.  Crashing at
    any point leaves either the old file or the new file, never a mix;
    stray ``.*.tmp`` files from a crashed writer are inert.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        # Make the rename itself durable (POSIX: fsync the directory).
        try:
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return path
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - not supported everywhere
            pass
        finally:
            os.close(dir_fd)
    return path


def write_if_changed(path: str | Path, text: str, fsync: bool = False) -> bool:
    """Atomically write ``text`` only when the current content differs.

    Keeps unchanged regenerations (benchmark snapshots, golden traces)
    from dirtying mtimes -- spurious diffs in build tooling.  Returns
    True when the file was (re)written.
    """
    path = Path(path)
    try:
        if path.read_text() == text:
            return False
    except OSError:
        pass
    atomic_write(path, text, fsync=fsync)
    return True
