"""Per-process address spaces and byte-accurate buffers.

Every simulated process (host rank or DPU proxy) owns an
:class:`AddressSpace`: a bump allocator handing out integer virtual
addresses backed by NumPy byte arrays.  Transfers can optionally carry
real bytes, which is how the applications (stencil halo exchange, FFT
transpose, LU panels) are validated numerically.

Addresses are plain integers so they can serve directly as the
registration-cache keys the paper describes (`(address, size)` within a
per-rank array slot).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "PAGE_SIZE",
    "pages_spanned",
    "AddressSpace",
    "OutOfMemoryError",
    "reset_peak_stats",
    "peak_stats",
    "record_peak",
]

#: Virtual-memory page size assumed by the registration cost model.
PAGE_SIZE = 4096

#: Peak resident bytes observed per process kind since the last
#: :func:`reset_peak_stats` (experiments record this per figure).
_PEAK_RESIDENT: dict[str, int] = {"host": 0, "dpu": 0}


def reset_peak_stats() -> None:
    """Zero the module-wide peak-resident-bytes tracker."""
    _PEAK_RESIDENT["host"] = 0
    _PEAK_RESIDENT["dpu"] = 0


def peak_stats() -> dict[str, int]:
    """Peak resident bytes per process kind since the last reset."""
    return dict(_PEAK_RESIDENT)


def record_peak(stats: dict[str, int]) -> None:
    """Fold another process's ``peak_stats()`` into this one's tracker.

    The parallel sweep engine runs points in worker processes, each with
    its own module-wide watermark; merging the per-point maxima keeps
    ``peak_stats()`` in the parent identical to what a serial in-process
    run would have observed (the watermark is a per-space maximum, so
    max-merge is exact).
    """
    for kind, value in stats.items():
        if kind in _PEAK_RESIDENT and value > _PEAK_RESIDENT[kind]:
            _PEAK_RESIDENT[kind] = value


class OutOfMemoryError(MemoryError):
    """An allocation would exceed the address space's byte budget.

    Carries enough context for graceful degradation decisions (the
    proxy falls back to the host path when DPU DRAM is exhausted).
    """

    def __init__(self, owner: str, requested: int, resident: int, budget: int):
        self.owner = owner
        self.requested = requested
        self.resident = resident
        self.budget = budget
        super().__init__(
            f"{owner}: allocation of {requested} bytes exceeds budget "
            f"({resident}/{budget} bytes resident)"
        )


_UINT8 = np.dtype(np.uint8)


def _as_raw_bytes(data: np.ndarray) -> np.ndarray:
    """``data`` as a flat, contiguous uint8 array -- without copying when
    it already is one (the dominant data-plane case: views handed out by
    :meth:`AddressSpace.read`)."""
    if (
        type(data) is np.ndarray
        and data.dtype == _UINT8
        and data.ndim == 1
        and data.flags.c_contiguous
    ):
        return data
    return np.ascontiguousarray(data).view(_UINT8).reshape(-1)


def pages_spanned(addr: int, size: int) -> int:
    """Number of pages the byte range [addr, addr+size) touches."""
    if size <= 0:
        return 0
    first = addr // PAGE_SIZE
    last = (addr + size - 1) // PAGE_SIZE
    return last - first + 1


class AddressSpace:
    """A bump-allocated virtual address space with NumPy-backed buffers.

    ``alloc`` returns an integer address; ``read``/``write`` move real
    bytes.  Freeing is supported but by default the allocator never
    reuses addresses -- exactly what a registration cache wants (a given
    ``(addr, size)`` always refers to the same logical buffer for the
    lifetime of the run).  With ``reuse=True`` freed blocks are recycled
    LIFO per size class, so free + same-size alloc hands back the *same*
    address -- the buffer-reuse pattern that makes stale-mkey
    invalidation observable.

    With ``budget`` set, ``alloc`` raises :class:`OutOfMemoryError`
    once resident bytes would exceed it.  ``epoch`` is bumped on every
    ``free``; registrations stamp the epoch they were minted under so
    stale keys are detectable after the range is recycled.
    """

    #: Allocations are aligned to this many bytes (page-aligned keeps the
    #: page math honest).
    ALIGN = 64

    def __init__(
        self,
        owner: str = "?",
        kind: Optional[str] = None,
        budget: Optional[int] = None,
        reuse: bool = False,
    ):
        self.owner = owner
        #: "host" / "dpu" (feeds the peak-resident tracker); None for
        #: standalone spaces built in unit tests.
        self.kind = kind
        #: Byte budget; None = unbounded.
        self.budget = budget
        self.reuse = reuse
        self._next = PAGE_SIZE  # never hand out address 0
        self._buffers: dict[int, np.ndarray] = {}
        self._sizes: dict[int, int] = {}
        #: Freed blocks by aligned step size, popped LIFO when
        #: ``reuse`` is on.
        self._free_blocks: dict[int, list[int]] = {}
        #: Total bytes currently allocated (diagnostics).
        self.allocated_bytes = 0
        #: High-water mark of ``allocated_bytes``.
        self.peak_bytes = 0
        #: Bumped on every ``free``: registrations minted before the
        #: bump are suspect once their range is recycled.
        self.epoch = 0

    def alloc(self, size: int, fill: Optional[int] = None) -> int:
        """Allocate ``size`` bytes, returning the base address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.budget is not None and self.allocated_bytes + size > self.budget:
            raise OutOfMemoryError(
                self.owner, size, self.allocated_bytes, self.budget
            )
        step = (size + self.ALIGN - 1) // self.ALIGN * self.ALIGN
        bucket = self._free_blocks.get(step)
        if self.reuse and bucket:
            addr = bucket.pop()
        else:
            addr = self._next
            self._next += step
        if fill is not None:
            buf = np.zeros(size, dtype=np.uint8)
            buf[:] = fill
        else:
            # Lazy backing: the array is materialised (zero-filled) on
            # first access (see _materialize).  Timing-only runs allocate
            # thousands of buffers nobody ever reads or writes.
            buf = None
        self._buffers[addr] = buf
        self._sizes[addr] = size
        self.allocated_bytes += size
        if self.allocated_bytes > self.peak_bytes:
            self.peak_bytes = self.allocated_bytes
            if self.kind in _PEAK_RESIDENT:
                if self.peak_bytes > _PEAK_RESIDENT[self.kind]:
                    _PEAK_RESIDENT[self.kind] = self.peak_bytes
        return addr

    def alloc_like(self, array: np.ndarray) -> int:
        """Allocate a buffer holding a copy of ``array``'s bytes."""
        raw = _as_raw_bytes(array)
        addr = self.alloc(raw.nbytes)
        self._materialize(addr)[:] = raw
        return addr

    def free(self, addr: int) -> None:
        if addr not in self._buffers:
            raise KeyError(f"{self.owner}: free of unknown address {addr:#x}")
        size = self._sizes[addr]
        self.allocated_bytes -= size
        del self._buffers[addr]
        del self._sizes[addr]
        self.epoch += 1
        if self.reuse:
            step = (size + self.ALIGN - 1) // self.ALIGN * self.ALIGN
            self._free_blocks.setdefault(step, []).append(addr)

    def size_of(self, addr: int) -> int:
        return self._sizes[addr]

    def contains(self, addr: int, size: int = 1) -> bool:
        """True if [addr, addr+size) falls inside one allocation."""
        base = self._find_base(addr)
        if base is None:
            return False
        return addr - base + size <= self._sizes[base]

    def _find_base(self, addr: int) -> Optional[int]:
        if addr in self._buffers:
            return addr
        # Interior pointer: scan (allocations are few per process).
        for base, size in self._sizes.items():
            if base <= addr < base + size:
                return base
        return None

    def _materialize(self, base: int) -> np.ndarray:
        """The backing array for ``base``, creating it on first access."""
        buf = self._buffers[base]
        if buf is None:
            buf = self._buffers[base] = np.zeros(self._sizes[base], dtype=np.uint8)
        return buf

    def view(self, addr: int, size: int) -> np.ndarray:
        """A mutable uint8 view of [addr, addr+size)."""
        base = self._find_base(addr)
        if base is None:
            raise KeyError(f"{self.owner}: no buffer covering address {addr:#x}")
        off = addr - base
        if off + size > self._sizes[base]:
            raise ValueError(
                f"{self.owner}: range [{addr:#x}, +{size}) overruns allocation "
                f"of {self._sizes[base]} bytes at {base:#x}"
            )
        return self._materialize(base)[off : off + size]

    def write(self, addr: int, data: np.ndarray) -> None:
        """Copy ``data``'s bytes into [addr, addr+len).

        Safe against overlap: when ``data`` is a view of this same
        buffer range (``read`` returns zero-copy views), the source is
        snapshotted first, so ``write(dst, read(src, n))`` behaves like
        ``memmove`` even for overlapping local copies.
        """
        raw = _as_raw_bytes(data)
        dst = self.view(addr, raw.nbytes)
        if np.may_share_memory(dst, raw):
            raw = raw.copy()
        dst[:] = raw

    def read(self, addr: int, size: int) -> np.ndarray:
        """A read-only, zero-copy view of [addr, addr+size).

        The view aliases the live buffer: it observes later writes to
        the range.  Callers that need snapshot semantics (e.g. an eager
        send capturing bytes while the app may overwrite the buffer)
        must use :meth:`read_copy` (see docs/PERFORMANCE.md for the
        aliasing rules).
        """
        v = self.view(addr, size)
        v.flags.writeable = False
        return v

    def read_copy(self, addr: int, size: int) -> np.ndarray:
        """A mutable *copy* of [addr, addr+size) (snapshot semantics)."""
        return self.view(addr, size).copy()

    def read_as(self, addr: int, dtype, count: int) -> np.ndarray:
        """A read-only, zero-copy ``dtype`` view of ``count`` items."""
        nbytes = np.dtype(dtype).itemsize * count
        v = self.view(addr, nbytes).view(dtype)
        v.flags.writeable = False
        return v
