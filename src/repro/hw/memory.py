"""Per-process address spaces and byte-accurate buffers.

Every simulated process (host rank or DPU proxy) owns an
:class:`AddressSpace`: a bump allocator handing out integer virtual
addresses backed by NumPy byte arrays.  Transfers can optionally carry
real bytes, which is how the applications (stencil halo exchange, FFT
transpose, LU panels) are validated numerically.

Addresses are plain integers so they can serve directly as the
registration-cache keys the paper describes (`(address, size)` within a
per-rank array slot).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "PAGE_SIZE",
    "pages_spanned",
    "AddressSpace",
    "OutOfMemoryError",
    "reset_peak_stats",
    "peak_stats",
]

#: Virtual-memory page size assumed by the registration cost model.
PAGE_SIZE = 4096

#: Peak resident bytes observed per process kind since the last
#: :func:`reset_peak_stats` (experiments record this per figure).
_PEAK_RESIDENT: dict[str, int] = {"host": 0, "dpu": 0}


def reset_peak_stats() -> None:
    """Zero the module-wide peak-resident-bytes tracker."""
    _PEAK_RESIDENT["host"] = 0
    _PEAK_RESIDENT["dpu"] = 0


def peak_stats() -> dict[str, int]:
    """Peak resident bytes per process kind since the last reset."""
    return dict(_PEAK_RESIDENT)


class OutOfMemoryError(MemoryError):
    """An allocation would exceed the address space's byte budget.

    Carries enough context for graceful degradation decisions (the
    proxy falls back to the host path when DPU DRAM is exhausted).
    """

    def __init__(self, owner: str, requested: int, resident: int, budget: int):
        self.owner = owner
        self.requested = requested
        self.resident = resident
        self.budget = budget
        super().__init__(
            f"{owner}: allocation of {requested} bytes exceeds budget "
            f"({resident}/{budget} bytes resident)"
        )


def pages_spanned(addr: int, size: int) -> int:
    """Number of pages the byte range [addr, addr+size) touches."""
    if size <= 0:
        return 0
    first = addr // PAGE_SIZE
    last = (addr + size - 1) // PAGE_SIZE
    return last - first + 1


class AddressSpace:
    """A bump-allocated virtual address space with NumPy-backed buffers.

    ``alloc`` returns an integer address; ``read``/``write`` move real
    bytes.  Freeing is supported but by default the allocator never
    reuses addresses -- exactly what a registration cache wants (a given
    ``(addr, size)`` always refers to the same logical buffer for the
    lifetime of the run).  With ``reuse=True`` freed blocks are recycled
    LIFO per size class, so free + same-size alloc hands back the *same*
    address -- the buffer-reuse pattern that makes stale-mkey
    invalidation observable.

    With ``budget`` set, ``alloc`` raises :class:`OutOfMemoryError`
    once resident bytes would exceed it.  ``epoch`` is bumped on every
    ``free``; registrations stamp the epoch they were minted under so
    stale keys are detectable after the range is recycled.
    """

    #: Allocations are aligned to this many bytes (page-aligned keeps the
    #: page math honest).
    ALIGN = 64

    def __init__(
        self,
        owner: str = "?",
        kind: Optional[str] = None,
        budget: Optional[int] = None,
        reuse: bool = False,
    ):
        self.owner = owner
        #: "host" / "dpu" (feeds the peak-resident tracker); None for
        #: standalone spaces built in unit tests.
        self.kind = kind
        #: Byte budget; None = unbounded.
        self.budget = budget
        self.reuse = reuse
        self._next = PAGE_SIZE  # never hand out address 0
        self._buffers: dict[int, np.ndarray] = {}
        self._sizes: dict[int, int] = {}
        #: Freed blocks by aligned step size, popped LIFO when
        #: ``reuse`` is on.
        self._free_blocks: dict[int, list[int]] = {}
        #: Total bytes currently allocated (diagnostics).
        self.allocated_bytes = 0
        #: High-water mark of ``allocated_bytes``.
        self.peak_bytes = 0
        #: Bumped on every ``free``: registrations minted before the
        #: bump are suspect once their range is recycled.
        self.epoch = 0

    def alloc(self, size: int, fill: Optional[int] = None) -> int:
        """Allocate ``size`` bytes, returning the base address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self.budget is not None and self.allocated_bytes + size > self.budget:
            raise OutOfMemoryError(
                self.owner, size, self.allocated_bytes, self.budget
            )
        step = (size + self.ALIGN - 1) // self.ALIGN * self.ALIGN
        bucket = self._free_blocks.get(step)
        if self.reuse and bucket:
            addr = bucket.pop()
        else:
            addr = self._next
            self._next += step
        buf = np.zeros(size, dtype=np.uint8)
        if fill is not None:
            buf[:] = fill
        self._buffers[addr] = buf
        self._sizes[addr] = size
        self.allocated_bytes += size
        if self.allocated_bytes > self.peak_bytes:
            self.peak_bytes = self.allocated_bytes
            if self.kind in _PEAK_RESIDENT:
                if self.peak_bytes > _PEAK_RESIDENT[self.kind]:
                    _PEAK_RESIDENT[self.kind] = self.peak_bytes
        return addr

    def alloc_like(self, array: np.ndarray) -> int:
        """Allocate a buffer holding a copy of ``array``'s bytes."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        addr = self.alloc(raw.nbytes)
        self._buffers[addr][:] = raw
        return addr

    def free(self, addr: int) -> None:
        if addr not in self._buffers:
            raise KeyError(f"{self.owner}: free of unknown address {addr:#x}")
        size = self._sizes[addr]
        self.allocated_bytes -= size
        del self._buffers[addr]
        del self._sizes[addr]
        self.epoch += 1
        if self.reuse:
            step = (size + self.ALIGN - 1) // self.ALIGN * self.ALIGN
            self._free_blocks.setdefault(step, []).append(addr)

    def size_of(self, addr: int) -> int:
        return self._sizes[addr]

    def contains(self, addr: int, size: int = 1) -> bool:
        """True if [addr, addr+size) falls inside one allocation."""
        base = self._find_base(addr)
        if base is None:
            return False
        return addr - base + size <= self._sizes[base]

    def _find_base(self, addr: int) -> Optional[int]:
        if addr in self._buffers:
            return addr
        # Interior pointer: scan (allocations are few per process).
        for base, size in self._sizes.items():
            if base <= addr < base + size:
                return base
        return None

    def view(self, addr: int, size: int) -> np.ndarray:
        """A mutable uint8 view of [addr, addr+size)."""
        base = self._find_base(addr)
        if base is None:
            raise KeyError(f"{self.owner}: no buffer covering address {addr:#x}")
        off = addr - base
        if off + size > self._sizes[base]:
            raise ValueError(
                f"{self.owner}: range [{addr:#x}, +{size}) overruns allocation "
                f"of {self._sizes[base]} bytes at {base:#x}"
            )
        return self._buffers[base][off : off + size]

    def write(self, addr: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self.view(addr, raw.nbytes)[:] = raw

    def read(self, addr: int, size: int) -> np.ndarray:
        """A *copy* of [addr, addr+size)."""
        return self.view(addr, size).copy()

    def read_as(self, addr: int, dtype, count: int) -> np.ndarray:
        nbytes = np.dtype(dtype).itemsize * count
        return self.view(addr, nbytes).copy().view(dtype)
