"""Nodes and the software processes that run on them."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.memory import AddressSpace
from repro.hw.nic import Hca
from repro.sim import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import Cluster

__all__ = ["ProcessContext", "Node"]


class ProcessContext:
    """One simulated OS process: a host MPI rank or a DPU proxy/worker.

    Owns an address space (its virtual memory) and an inbox
    :class:`~repro.sim.resources.Store` into which the fabric deposits
    control messages.  All per-process protocol state (MPI runtime,
    offload endpoint, proxy engine) hangs off the context via the
    attributes the respective layers install.
    """

    def __init__(
        self,
        cluster: "Cluster",
        kind: str,
        node_id: int,
        global_id: int,
        local_id: int,
    ):
        if kind not in ("host", "dpu"):
            raise ValueError(f"unknown process kind {kind!r}")
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.kind = kind
        self.node_id = node_id
        #: Host ranks: the MPI rank.  Proxies: a global proxy index.
        self.global_id = global_id
        #: Index within this node (local rank / local proxy index).
        self.local_id = local_id
        # Address space and inbox are built on first touch: neither
        # constructor has simulator side effects, and at thousand-rank
        # scale most of a figure's resident bytes would otherwise be
        # spent on contexts the program never exercises.
        self._space: AddressSpace | None = None
        self._inbox: Store | None = None
        #: Callbacks ``(addr, size)`` invoked by :meth:`free` after the
        #: range is released and covering keys are revoked -- caches
        #: register here to drop entries over freed memory.
        self.free_listeners: list = []
        # Busy-time bookkeeping (diagnostics; incremented by
        # :meth:`consume`).  Slim clusters share one numpy array across
        # all contexts (8 bytes/process); eager clusters keep a plain
        # float so the consume hot path stays a single attribute add.
        slot = cluster._busy_slot(kind, global_id)
        if slot is None:
            self._busy_arr, self._busy_slot = None, 0
            self._busy_local = 0.0
        else:
            self._busy_arr, self._busy_slot = cluster._busy_times, slot

    @property
    def space(self) -> AddressSpace:
        """This process's virtual memory (materialized on first use)."""
        sp = self._space
        if sp is None:
            params = self.cluster.params
            budget = (
                params.host_mem_budget
                if self.kind == "host"
                else params.dpu_mem_budget
            )
            sp = self._space = AddressSpace(
                owner=f"{self.kind}{self.global_id}@n{self.node_id}",
                kind=self.kind,
                budget=budget,
                reuse=params.reuse_freed_addresses,
            )
        return sp

    @property
    def inbox(self) -> Store:
        """Control-message inbox (materialized on first use)."""
        ib = self._inbox
        if ib is None:
            ib = self._inbox = Store(self.sim)
        return ib

    @property
    def busy_time(self) -> float:
        arr = self._busy_arr
        return self._busy_local if arr is None else float(arr[self._busy_slot])

    @busy_time.setter
    def busy_time(self, value: float) -> None:
        if self._busy_arr is None:
            self._busy_local = value
        else:
            self._busy_arr[self._busy_slot] = value

    # -- convenience ------------------------------------------------------
    @property
    def node(self) -> "Node":
        return self.cluster.nodes[self.node_id]

    @property
    def hca(self) -> Hca:
        return self.node.hca

    @property
    def mem_kind(self) -> str:
        """Which DRAM this process's buffers live in."""
        return self.kind

    def consume(self, seconds: float):
        """Occupy this process's core for ``seconds`` (a timeout event)."""
        if self._busy_arr is None:
            self._busy_local += seconds
        else:
            self._busy_arr[self._busy_slot] += seconds
        tracer = self.cluster.tracer
        if tracer is not None and seconds > 0:
            tracer.record_span(self.trace_name, self.sim.now, self.sim.now + seconds)
        return self.sim.timeout(seconds)

    def free(self, addr: int) -> list:
        """Free ``addr`` and run the invalidation protocol.

        Revokes every registered key covering the range (so later use of
        a cached key raises ``ProtectionError`` instead of silently
        addressing recycled memory), bumps the space's registration
        epoch, and notifies ``free_listeners`` so caches drop their
        entries.  Returns the revoked :class:`~repro.verbs.mr.KeyInfo`
        records.  Plain call (no simulated time).
        """
        size = self.space.size_of(addr)
        self.space.free(addr)
        revoked = []
        state = getattr(self.cluster, "_verbs", None)
        if state is not None:
            revoked = state.keys.revoke_covering(self, addr, size)
        metrics = self.cluster.metrics
        metrics.add("mem.frees")
        if revoked:
            metrics.add("verbs.revoked_keys", len(revoked))
        bus = self.cluster.bus
        if bus is not None:
            bus.emit(
                "mem", "free", self.trace_name,
                addr=addr, size=size, epoch=self.space.epoch,
            )
            for info in revoked:
                bus.emit(
                    "reg", "revoke", self.trace_name,
                    key=info.key, kind=info.kind, size=info.size,
                )
        for listener in list(self.free_listeners):
            listener(addr, size)
        return revoked

    @property
    def trace_name(self) -> str:
        return f"{self.kind}{self.global_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind}{self.global_id} node={self.node_id}>"


class Node:
    """One cluster node: host CPUs + BlueField DPU behind a shared HCA."""

    def __init__(self, cluster: "Cluster", node_id: int):
        self.cluster = cluster
        self.node_id = node_id
        self.hca = Hca(cluster.sim, node_id, cluster.params, cluster.metrics)
        #: Host rank contexts living on this node (filled by Cluster;
        #: left empty by slim clusters, whose contexts materialize
        #: lazily -- the accessors below go through the cluster either
        #: way and return the same objects).
        self.host_procs: list[ProcessContext] = []
        #: DPU proxy contexts (filled by Cluster; empty when slim).
        self.dpu_procs: list[ProcessContext] = []

    def host_proc(self, local_rank: int) -> ProcessContext:
        return self.cluster.ranks[self.node_id * self.cluster.spec.ppn + local_rank]

    def dpu_proc(self, local_idx: int) -> ProcessContext:
        return self.cluster.proxies[
            self.node_id * self.cluster.spec.proxies_per_dpu + local_idx
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.node_id}: {len(self.host_procs)} host ranks, "
            f"{len(self.dpu_procs)} proxies>"
        )
