"""Machine and cluster parameters.

All times are in **seconds**, all sizes in **bytes**, all bandwidths in
**bytes/second**.  The defaults model the paper's testbed: Broadwell
Xeon hosts, ConnectX-6-class HDR InfiniBand (~25 GB/s per port), and a
BlueField-2 SmartNIC whose 8 Cortex-A72 ARM cores run at roughly a
third of the host's single-core speed and whose on-card DRAM delivers
noticeably less bandwidth than the host's.

Calibration targets (paper Section II):

* Fig 2  -- RDMA-write *latency* host<->host vs host<->DPU nearly equal
  (the DPU adds a sub-microsecond ARM processing cost).
* Fig 3  -- host<->host small/medium-message *bandwidth* ~2x host<->DPU
  (ARM injection gap dominates small messages; DPU DRAM bandwidth caps
  large ones below the wire rate).
* Fig 4  -- staging through DPU DRAM roughly doubles pingpong latency.
* Fig 5  -- host GVMI registration cheaper than the DPU's
  cross-registration; both grow with the number of pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["MachineParams", "ClusterSpec"]


@dataclass(frozen=True)
class MachineParams:
    """LogGP-style cost constants for one homogeneous cluster."""

    # ----- fabric ------------------------------------------------------
    #: Peak per-port wire bandwidth (HDR InfiniBand, ~200 Gb/s).
    wire_bandwidth: float = 24.0e9
    #: Base one-way fabric latency, NIC-to-NIC, excluding serialization.
    wire_latency: float = 0.85e-6
    #: Extra latency per switch hop (single-switch topology => 1 hop).
    switch_hop_latency: float = 0.12e-6
    #: Hardware ACK / completion return latency.
    ack_latency: float = 0.55e-6

    # ----- host endpoint ----------------------------------------------
    #: CPU time to build a WQE and ring the doorbell.
    host_post_overhead: float = 0.15e-6
    #: Per-message NIC engine occupancy for host-posted messages
    #: (inverse of the host's small-message injection rate).
    host_injection_gap: float = 0.080e-6
    #: Rate at which the NIC can DMA to/from pinned *host* memory.
    host_memory_bandwidth: float = 24.0e9
    #: Cost of the host CPU handling one inbound control message.
    host_handler_cost: float = 0.10e-6

    # ----- DPU endpoint (BlueField-2 ARM subsystem) ---------------------
    #: ARM time to build a WQE and ring the doorbell (slower cores).
    dpu_post_overhead: float = 0.55e-6
    #: Per-message NIC engine occupancy for ARM-posted messages.  ~2.5x
    #: the host gap -> host-host streams see ~2x the message rate of
    #: DPU-involved streams at small sizes (Fig 3).
    dpu_injection_gap: float = 0.200e-6
    #: Rate for DMA to/from the BlueField's on-card DRAM (single-channel
    #: DDR4; distinctly below the wire rate, so staged transfers cannot
    #: reach host-host bandwidth even for large messages).
    dpu_memory_bandwidth: float = 13.0e9
    #: ARM time to handle one inbound control message (parse + queue ops).
    dpu_handler_cost: float = 0.35e-6
    #: ARM time for one send/recv queue matching step (Fig 8).
    dpu_match_cost: float = 0.12e-6

    # ----- host <-> local DPU control path ------------------------------
    #: One-way latency of a small control message between a host process
    #: and a proxy on the local DPU (loopback RDMA through the HCA; the
    #: paper notes this is close to host-host latency).
    ctrl_latency: float = 1.05e-6
    #: Serialized bytes of one RTS/RTR/FIN-style control message.
    ctrl_bytes: int = 64
    #: Serialized bytes of one Group_op entry inside a
    #: Group_Offload_packet.
    group_op_bytes: int = 48

    # ----- intra-node (shared-memory) path ------------------------------
    shm_latency: float = 0.30e-6
    shm_bandwidth: float = 16.0e9
    #: Per-message CPU cost of a shared-memory transfer (both sides are
    #: CPU copies, so intra-node traffic is never offloaded -- the paper
    #: makes the same observation for its 3DStencil overlap ceiling).
    shm_cpu_cost: float = 0.25e-6

    # ----- memory registration ------------------------------------------
    #: ibv_reg_mr on the host: base cost + per-4KiB-page pinning cost
    #: (~45 us/MiB -- page pinning dominates large registrations, which
    #: is why registration caches matter; Section II-C).
    host_reg_base: float = 1.60e-6
    host_reg_per_page: float = 0.180e-6
    #: ibv_reg_mr driven by the DPU's ARM cores (registering DPU DRAM,
    #: e.g. staging buffers): same machinery at ARM speed.
    dpu_reg_base: float = 3.20e-6
    dpu_reg_per_page: float = 0.240e-6
    #: Host-side GVMI registration (mkey): same machinery as ibv_reg_mr
    #: plus a GVMI context lookup.
    gvmi_reg_base: float = 1.90e-6
    gvmi_reg_per_page: float = 0.200e-6
    #: DPU-side cross-registration (mkey2): a device command issued from
    #: the slow ARM cores; costlier base, and it still walks the page
    #: list (Fig 5 shows it growing with size).
    xreg_base: float = 4.20e-6
    xreg_per_page: float = 0.280e-6
    #: Registration-cache lookup costs (array index + BST descent are
    #: cheap but not free; the DPU's is ARM-speed).
    host_cache_lookup: float = 0.040e-6
    dpu_cache_lookup: float = 0.110e-6
    #: Effective-bandwidth factor for data moved under an mkey2 (the
    #: cross-GVMI translation adds an indirection in the NIC's MTT
    #: walk).  Invisible for latency-bound transfers; erodes the
    #: framework's edge for very large ones -- the effect the paper
    #: blames for HPL's shrinking margin at 50-75% memory.
    gvmi_bw_factor: float = 0.93

    # ----- MPI runtime ---------------------------------------------------
    #: Library bookkeeping per MPI call (request alloc, queue checks).
    mpi_call_overhead: float = 0.10e-6
    #: Messages at or below this size go eager (copied through
    #: preregistered bounce buffers); above it, rendezvous.
    eager_threshold: int = 16 * 1024
    #: CPU copy bandwidth for eager copy-in/copy-out.
    copy_bandwidth: float = 11.0e9

    # ----- resource governance (docs/RESOURCES.md) -----------------------
    # All default to None / False = unbounded, byte-identical to the
    # pre-governance behaviour.  Budgets are bytes; capacities are entry
    # counts.
    #: Byte budget of each host rank's address space (None = unbounded).
    host_mem_budget: Optional[int] = None
    #: Byte budget of each DPU proxy's address space.  BlueField DRAM is
    #: the scarce resource the paper's caches exist to conserve.
    dpu_mem_budget: Optional[int] = None
    #: Opt-in: freed blocks are recycled LIFO per size class, so a
    #: free + same-size alloc returns the *same* address -- the
    #: buffer-reuse pattern that exercises stale-mkey invalidation.
    #: Off by default: the bump allocator's never-reuse property is what
    #: keeps registration-cache keys unambiguous in clean runs.
    reuse_freed_addresses: bool = False
    #: Max entries in each host IB registration cache (LRU evicts with a
    #: real dereg_mr, reclaiming KeyTable entries).
    ib_cache_capacity: Optional[int] = None
    #: Max entries in each GVMI registration cache (host mkey cache and
    #: DPU mkey2 cache; LRU eviction revokes the evicted key).
    gvmi_cache_capacity: Optional[int] = None
    #: Max prepared plans in each host-side group request cache.
    group_cache_capacity: Optional[int] = None
    #: Max plans in each proxy's DPU plan cache.  Eviction recovery runs
    #: through the plan_nack path, so a bounded plan cache requires
    #: resilient mode (see docs/RESOURCES.md).
    plan_cache_capacity: Optional[int] = None
    #: Admission window: max incomplete offload requests per endpoint;
    #: further posts block (in simulated time) until one completes.
    max_outstanding_offloads: Optional[int] = None
    #: Max incomplete one-sided SHMEM ops per PE before put/get blocks.
    shmem_queue_depth: Optional[int] = None
    #: Completion-queue depth for QueuePairs: more than this many
    #: unpolled completions overflows the CQ (fatal, as on hardware).
    cq_depth: Optional[int] = None

    # ----- thousand-rank scale-out (docs/PERFORMANCE.md "Scaling") -------
    # All default to None / False = byte-identical to the pre-scale-out
    # behaviour: one proxy wakeup per message, one doorbell per counter.
    #: Max inbox items a proxy drains per wakeup.  ``None`` (default)
    #: keeps the one-message-per-wakeup loop; a positive value switches
    #: the proxy to batched drain -- everything already queued (up to
    #: this many items) is handled under a *single* ARM handler charge,
    #: so proxy event count scales with batches, not messages.  Each
    #: drain emits one ``queue.drain`` event carrying the batch size.
    proxy_batch_drain: Optional[int] = None
    #: Batch the per-destination counter doorbells a group barrier
    #: flushes: one ARM doorbell (``dpu_post_overhead``) arms the whole
    #: WQE chain instead of one per destination.  Off by default.
    counter_doorbell_batch: bool = False

    # ----- compute -------------------------------------------------------
    #: Host double-precision throughput per core (Broadwell ~ 2.4 GHz
    #: AVX2 FMA: ~16 flop/cycle sustained fraction).
    host_flops_per_core: float = 22.0e9
    #: Relative jitter applied to modelled compute chunks (lognormal-ish).
    compute_jitter: float = 0.0

    def with_overrides(self, **kw) -> "MachineParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **kw)

    @staticmethod
    def paper_testbed() -> "MachineParams":
        """The calibrated BlueField-2 / ConnectX-6 / Broadwell preset."""
        return MachineParams()

    @staticmethod
    def ideal_nic() -> "MachineParams":
        """A DPU with host-speed cores (ablation: isolates the ARM gap)."""
        p = MachineParams()
        return p.with_overrides(
            dpu_post_overhead=p.host_post_overhead,
            dpu_injection_gap=p.host_injection_gap,
            dpu_memory_bandwidth=p.host_memory_bandwidth,
            dpu_handler_cost=p.host_handler_cost,
            dpu_cache_lookup=p.host_cache_lookup,
            xreg_base=p.gvmi_reg_base,
            xreg_per_page=p.gvmi_reg_per_page,
        )

    @staticmethod
    def bluefield3() -> "MachineParams":
        """A BlueField-3 / NDR-400 projection (the paper's future work).

        16 Cortex-A78 cores at roughly twice the A72's effective speed,
        DDR5 on-card memory, and an NDR InfiniBand port.  The host side
        is sped up proportionally less (the same Broadwell hosts would
        not drive NDR; assume a modest CPU refresh), so the *relative*
        host-vs-DPU asymmetries narrow -- which is the interesting
        question the paper defers.
        """
        p = MachineParams()
        return p.with_overrides(
            wire_bandwidth=48.0e9,
            wire_latency=0.70e-6,
            host_memory_bandwidth=48.0e9,
            copy_bandwidth=18.0e9,
            dpu_post_overhead=0.30e-6,
            dpu_injection_gap=0.110e-6,
            dpu_memory_bandwidth=34.0e9,
            dpu_handler_cost=0.18e-6,
            dpu_cache_lookup=0.060e-6,
            xreg_base=2.60e-6,
            xreg_per_page=0.150e-6,
            dpu_reg_base=2.00e-6,
            dpu_reg_per_page=0.130e-6,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a simulated cluster."""

    #: Number of nodes (the paper's testbed has 32; its runs use 4-16).
    nodes: int = 2
    #: Host MPI processes per node (paper: 32).
    ppn: int = 2
    #: Worker/proxy processes launched on each DPU by Init_Offload().
    proxies_per_dpu: int = 4
    #: ARM cores on each DPU (BlueField-2: 8).
    dpu_cores: int = 8
    #: Host cores per node (paper: dual-socket 16-core => 32).
    host_cores: int = 32
    #: Root seed for all random streams.
    seed: int = 0
    #: Nodes per leaf switch.  0 (default) = the paper's single-switch
    #: topology; a positive value builds a two-level leaf/spine fabric
    #: where cross-leaf traffic pays two extra switch hops and, in
    #: fluid mode, contends on an explicit leaf/spine link graph
    #: (see ``repro.hw.topology``).
    nodes_per_switch: int = 0
    #: Equal-cost leaf<->spine uplinks per leaf (= number of spine
    #: switches).  Only meaningful with ``nodes_per_switch > 0``; the
    #: default single uplink makes every cross-leaf flow share one
    #: spine path.
    spine_count: int = 1
    #: Capacity of each leaf<->spine link, in units of one node port's
    #: capacity.  ``nodes_per_switch / (spine_count * uplink_capacity)``
    #: is the tree's oversubscription ratio; the default 1.0 matches
    #: one host port per uplink.
    uplink_capacity: float = 1.0
    #: How cross-leaf flows pick among the ``spine_count`` equal-cost
    #: uplinks: ``"ecmp"`` (deterministic per-pair hash, the default),
    #: ``"random"`` (seeded per-flow choice) or ``"least"`` (per-flow
    #: least-loaded).  See ``repro.hw.topology.PATH_SELECTORS``.
    path_selector: str = "ecmp"
    #: Fluid-flow hybrid mode (docs/PERFORMANCE.md): ``True`` routes
    #: bulk transfers above :attr:`fluid_threshold` into the rate-shared
    #: :class:`~repro.sim.flows.FlowEngine`; ``False`` forces the exact
    #: event engine.  ``None`` (default) inherits the ambient mode set
    #: by ``repro.hw.fluid.set_default_fluid`` / ``runall --fluid`` --
    #: which keeps every committed figure config byte-identical while
    #: letting a whole campaign flip engines with one switch.
    fluid: Optional[bool] = None
    #: Byte threshold above which data transfers become flows in fluid
    #: mode.  ``None`` inherits the ambient default (256 KiB -- see
    #: ``repro.hw.fluid.DEFAULT_FLUID_THRESHOLD`` for the tuning
    #: rationale).
    fluid_threshold: Optional[int] = None
    #: Chunk-granularity event pricing: a positive value segments every
    #: data transfer larger than this many bytes into chunk-sized
    #: store-and-forward events that arbitrate per chunk for the tx/rx
    #: ports (the fidelity mode the fluid engine is benchmarked
    #: against in BENCH_engine).  ``None``/0 (default) keeps the
    #: message-level FSM -- and every committed table -- bit-identical.
    #: Ignored for transfers riding the FlowEngine in fluid mode.
    chunk_bytes: Optional[int] = None
    #: Slim per-rank state for thousand-rank clusters: rank/proxy
    #: ProcessContexts, MPI runtimes, offload endpoints, and proxy
    #: engines materialize lazily on first use instead of eagerly at
    #: construction, and per-rank busy-time bookkeeping moves into one
    #: shared numpy array.  ``False`` (default) keeps eager
    #: construction -- and every committed table and golden trace --
    #: bit-identical.  Simulated timings are unchanged either way (see
    #: tests/test_scale_slim.py); only resident bytes/rank drop.
    slim: bool = False
    params: MachineParams = field(default_factory=MachineParams)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.ppn < 1:
            raise ValueError("need at least one process per node")
        if self.proxies_per_dpu < 1:
            raise ValueError("need at least one proxy per DPU")
        if self.proxies_per_dpu > self.dpu_cores:
            raise ValueError("more proxies than DPU cores")
        if self.spine_count < 1:
            raise ValueError("need at least one spine uplink")
        if self.uplink_capacity <= 0.0:
            raise ValueError("uplink_capacity must be positive")
        if self.path_selector not in ("ecmp", "random", "least"):
            raise ValueError(
                f"unknown path_selector {self.path_selector!r}; "
                f"expected 'ecmp', 'random' or 'least'"
            )
        if self.fluid_threshold is not None and self.fluid_threshold < 1:
            raise ValueError("fluid_threshold must be at least one byte")
        if self.chunk_bytes is not None and self.chunk_bytes < 0:
            raise ValueError("chunk_bytes must be non-negative")

    @property
    def world_size(self) -> int:
        """Total number of host ranks."""
        return self.nodes * self.ppn

    def node_of_rank(self, rank: int) -> int:
        """Block rank placement: ranks [n*ppn, (n+1)*ppn) live on node n."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.ppn

    def proxy_of_rank(self, rank: int) -> int:
        """Paper Section VII-A: proxy_local_rank = host_rank % num_proxies.

        Returns the proxy's *local* index on the rank's own node.
        """
        self._check_rank(rank)
        return rank % self.proxies_per_dpu

    def leaf_of_node(self, node_id: int) -> int:
        """Which leaf switch a node hangs off (0 for single-switch)."""
        if self.nodes_per_switch <= 0:
            return 0
        return node_id // self.nodes_per_switch

    def switch_hops(self, src_node: int, dst_node: int) -> int:
        """Switch hops between two distinct nodes."""
        if src_node == dst_node:
            return 0
        if self.leaf_of_node(src_node) == self.leaf_of_node(dst_node):
            return 1
        return 3  # leaf -> spine -> leaf

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")
