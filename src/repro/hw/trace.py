"""Execution tracing: per-process busy spans + message arrows.

Opt-in: attach a :class:`Tracer` to a cluster *before* running and the
hardware layer records

* a **span** every time a process consumes core time
  (:meth:`ProcessContext.consume`), and
* an **arrow** for every fabric transfer (post -> delivery).

``render_ascii`` turns the trace into the kind of per-process timeline
the paper sketches in Fig 1 -- handy for eyeballing where a pattern
stalls::

    host0 |####·····##······|
    dpu0  |···##·####·······|
    host1 |·········####····|

Usage::

    tracer = Tracer.attach(cluster)
    ...run...
    print(tracer.render_ascii(width=72))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Span", "Arrow", "Tracer"]


@dataclass(frozen=True)
class Span:
    """A half-open interval of core occupancy on one process."""

    entity: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Arrow:
    """One message flight through the fabric."""

    src: str
    dst: str
    size: int
    kind: str
    posted: float
    delivered: float


@dataclass
class Tracer:
    """Recorder attached to a cluster (see :meth:`attach`)."""

    spans: list[Span] = field(default_factory=list)
    arrows: list[Arrow] = field(default_factory=list)
    #: Ignore events before this time (e.g. warm-up iterations).
    t_min: float = 0.0

    # -- wiring -----------------------------------------------------------
    @staticmethod
    def attach(cluster) -> "Tracer":
        """Create a tracer and hook it onto ``cluster`` (and its fabric)."""
        tracer = Tracer()
        cluster.tracer = tracer
        cluster.fabric.tracer = tracer
        return tracer

    @staticmethod
    def of(cluster) -> Optional["Tracer"]:
        return getattr(cluster, "tracer", None)

    # -- recording ----------------------------------------------------------
    def record_span(self, entity: str, start: float, end: float) -> None:
        if end > start and end >= self.t_min:
            self.spans.append(Span(entity, max(start, self.t_min), end))

    def record_arrow(self, src: str, dst: str, size: int, kind: str,
                     posted: float, delivered: float) -> None:
        if delivered >= self.t_min:
            self.arrows.append(Arrow(src, dst, size, kind, posted, delivered))

    def reset(self, t_min: Optional[float] = None) -> None:
        """Clear recordings; optionally start a fresh window at ``t_min``."""
        self.spans.clear()
        self.arrows.clear()
        if t_min is not None:
            self.t_min = t_min

    # -- queries ------------------------------------------------------------
    @property
    def entities(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.entity)
        for a in self.arrows:
            seen.setdefault(a.src)
            seen.setdefault(a.dst)
        return list(seen)

    def busy_time(self, entity: str) -> float:
        return sum(s.duration for s in self.spans if s.entity == entity)

    def window(self) -> tuple[float, float]:
        times = [s.start for s in self.spans] + [s.end for s in self.spans]
        times += [a.posted for a in self.arrows] + [a.delivered for a in self.arrows]
        if not times:
            return (0.0, 0.0)
        return (min(times), max(times))

    # -- rendering ------------------------------------------------------------
    def render_ascii(self, width: int = 72, entities: Optional[list[str]] = None) -> str:
        """Per-entity busy lanes over the traced window.

        ``#`` marks core-busy time, ``.`` idle; one extra line per lane
        marks message deliveries into that entity with ``v``.
        """
        t0, t1 = self.window()
        if t1 <= t0:
            return "(empty trace)"
        scale = width / (t1 - t0)
        names = entities if entities is not None else self.entities
        label_w = max((len(n) for n in names), default=4) + 1
        lines = [
            f"{'':{label_w}s} {t0 * 1e6:.1f}us{'':{max(0, width - 16)}s}{t1 * 1e6:.1f}us"
        ]
        for name in names:
            lane = ["."] * width
            for s in self.spans:
                if s.entity != name:
                    continue
                a = int((s.start - t0) * scale)
                b = max(a + 1, int((s.end - t0) * scale))
                for i in range(a, min(b, width)):
                    lane[i] = "#"
            marks = [" "] * width
            for arrow in self.arrows:
                if arrow.dst == name:
                    i = min(width - 1, int((arrow.delivered - t0) * scale))
                    marks[i] = "v"
            lines.append(f"{name:{label_w}s}|{''.join(lane)}|")
            if any(m != " " for m in marks):
                lines.append(f"{'':{label_w}s}|{''.join(marks)}|")
        return "\n".join(lines)
