"""Message-level InfiniBand-like fabric.

A single-switch topology (the paper's 32-node testbed hangs off one HDR
switch): every inter-node message pays the wire latency plus one switch
hop; host<->DPU traffic on the *same* node loops back through the HCA
and pays the wire latency only (the paper notes local host-DPU
transfers cost the same as remote ones).

Contention is modelled with two unit resources per node -- a tx and an
rx port -- each held for the message's serialization window in a
store-and-forward discipline: serialize out of the source (tx), fly the
wire, serialize into the destination (rx), deliver.  Dense patterns
(alltoall incast) therefore queue exactly where the real fabric queues,
and -- crucially -- a sender blocked by a busy receiver never parks its
own tx port (no artificial head-of-line blocking; real NICs interleave
packets of concurrent flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.hw.nic import Hca
from repro.hw.params import MachineParams
from repro.sim import Event, Simulator

__all__ = ["Delivery", "Transfer", "Fabric"]


@dataclass
class Delivery:
    """What arrives at the destination when a message lands."""

    src_node: int
    dst_node: int
    size: int
    kind: str = "data"
    #: Arbitrary sender-supplied metadata (protocol headers).
    meta: Any = None
    #: Simulated arrival time (stamped by the fabric).
    time: float = field(default=0.0)
    #: CQE status: "ok", or "error" when fault injection forced an error
    #: completion (no bytes moved; the initiator must re-post).
    status: str = "ok"


@dataclass
class Transfer:
    """Handle returned by :meth:`Fabric.transfer`."""

    delivered: Event
    completed: Event
    size: int


class Fabric:
    def __init__(self, sim: Simulator, hcas: list[Hca], params: MachineParams,
                 spec=None):
        self.sim = sim
        self.hcas = hcas
        self.params = params
        #: Optional ClusterSpec for topology-aware hop counts (a
        #: two-level leaf/spine fabric when spec.nodes_per_switch > 0).
        self.spec = spec
        #: Optional :class:`~repro.hw.faults.FaultPlan`; None keeps every
        #: message on the original fault-free path.
        self.fault_plan = None
        #: Optional :class:`~repro.obs.events.EventBus`; set by
        #: ``EventBus.attach``.  None keeps all paths emission-free.
        self.bus = None
        # Per-fabric ids tagging bus events so posts/deliveries/
        # completions of one message correlate (deterministic: assigned
        # in post order).
        self._xfer_seq = 0
        self._ctrl_seq = 0

    def one_way_latency(self, src_node: int, dst_node: int) -> float:
        if src_node == dst_node:
            return self.params.wire_latency
        hops = 1 if self.spec is None else self.spec.switch_hops(src_node, dst_node)
        return self.params.wire_latency + hops * self.params.switch_hop_latency

    def transfer(
        self,
        *,
        src_node: int,
        dst_node: int,
        size: int,
        initiator: str,
        src_mem: str = "host",
        dst_mem: str = "host",
        on_deliver: Optional[Callable[[Delivery], None]] = None,
        meta: Any = None,
        kind: str = "data",
        bw_scale: float = 1.0,
    ) -> Transfer:
        """Start a one-sided data movement; post overhead is the caller's.

        Returns immediately with a handle whose ``delivered`` event fires
        when the last byte lands at the destination and whose
        ``completed`` event fires when the initiator would see the CQE
        (delivery + hardware ack).
        """
        if size < 0:
            raise ValueError("negative message size")
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        completed = self.sim.event()
        src_hca.count_post(initiator, size)
        t_posted = self.sim.now
        xid = self._xfer_seq
        self._xfer_seq += 1
        bus = self.bus
        if bus is not None:
            bus.emit("xfer", "post", f"node{src_node}", xid=xid, kind=kind,
                     size=size, initiator=initiator, dst=dst_node)

        plan = self.fault_plan
        status, extra_delay = "ok", 0.0
        if plan is not None:
            status, extra_delay = plan.transfer_fate(kind, initiator, src_node, dst_node)

        def _run():
            serialization = src_hca.serialization_time(
                size, initiator, src_mem, dst_mem
            ) / max(1e-9, bw_scale)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(self.one_way_latency(src_node, dst_node) + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            dv = Delivery(
                src_node=src_node,
                dst_node=dst_node,
                size=size,
                kind=kind,
                meta=meta,
                time=self.sim.now,
                status=status,
            )
            # An error CQE moves no bytes: skip the payload callback.
            if on_deliver is not None and status == "ok":
                on_deliver(dv)
            tracer = getattr(self, "tracer", None)
            if tracer is not None:
                tracer.record_arrow(
                    f"node{src_node}", f"node{dst_node}", size, kind,
                    t_posted, self.sim.now,
                )
            if bus is not None:
                bus.emit("xfer", "deliver", f"node{dst_node}", xid=xid,
                         status=status)
            src_hca.metrics.observe(
                f"fabric.xfer_latency.{kind}", self.sim.now - t_posted
            )
            delivered.succeed(dv)
            yield self.sim.timeout(self.params.ack_latency)
            if bus is not None:
                bus.emit("xfer", "complete", f"node{src_node}", xid=xid,
                         status=status)
            completed.succeed(dv)

        self.sim.process(_run())
        return Transfer(delivered=delivered, completed=completed, size=size)

    def control(
        self,
        *,
        src_node: int,
        dst_node: int,
        initiator: str,
        inbox,
        msg: Any,
        size: Optional[int] = None,
        src_mem: str = "host",
        dst_mem: str = "host",
        kind: str = "ctrl",
    ) -> Event:
        """Send a small control message into ``inbox`` (a Store).

        Control messages ride the same engines as data (they *are* small
        RDMA sends) but skip the completion plumbing; the returned event
        fires at delivery.  Same-node host<->DPU control costs
        ``ctrl_latency`` one way, matching the paper's observation that
        the loopback path is latency-comparable to the wire.

        ``kind`` names the protocol message ("rts", "fin", "counter",
        ...) for tracing and for :class:`~repro.hw.faults.FaultPlan`
        targeting.  A dropped or corrupted-and-discarded message never
        reaches ``inbox`` and the returned event never fires (senders
        treat control traffic as fire-and-forget; recovery is the
        receiver's retransmit/timeout protocol).
        """
        nbytes = self.params.ctrl_bytes if size is None else size
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        src_hca.count_post(initiator, nbytes)
        src_hca.metrics.add("fabric.control_msgs")
        cid = self._ctrl_seq
        self._ctrl_seq += 1
        t_posted = self.sim.now
        bus = self.bus
        if bus is not None:
            bus.emit("ctrl", "post", f"node{src_node}", cid=cid, kind=kind,
                     size=nbytes, initiator=initiator, dst=dst_node)
        latency = (
            self.params.ctrl_latency
            if src_node == dst_node
            else self.one_way_latency(src_node, dst_node)
        )
        plan = self.fault_plan
        action, extra_delay = "deliver", 0.0
        if plan is not None:
            action, extra_delay = plan.control_fate(kind, src_node, dst_node)

        def _run():
            serialization = src_hca.serialization_time(nbytes, initiator, src_mem, dst_mem)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(latency + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                # Control messages are gap-bound; their rx dwell is the
                # same single-packet window.
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            if action in ("drop", "corrupt"):
                # Lost in flight (drop) or discarded by the receiver's
                # ICRC check (corrupt): it never reaches the inbox.
                src_hca.metrics.add(f"fabric.faults.{action}")
                if bus is not None:
                    bus.emit("ctrl", "drop", f"node{dst_node}", cid=cid,
                             kind=kind, action=action)
                return
            inbox.put(msg)
            if action == "dup":
                src_hca.metrics.add("fabric.faults.dup")
                inbox.put(msg)
            if bus is not None:
                bus.emit("ctrl", "deliver", f"node{dst_node}", cid=cid,
                         kind=kind)
            src_hca.metrics.observe("fabric.ctrl_latency", self.sim.now - t_posted)
            delivered.succeed(msg)

        self.sim.process(_run())
        return delivered
