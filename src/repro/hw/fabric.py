"""Message-level InfiniBand-like fabric.

A single-switch topology (the paper's 32-node testbed hangs off one HDR
switch): every inter-node message pays the wire latency plus one switch
hop; host<->DPU traffic on the *same* node loops back through the HCA
and pays the wire latency only (the paper notes local host-DPU
transfers cost the same as remote ones).

Contention is modelled with two unit resources per node -- a tx and an
rx port -- each held for the message's serialization window in a
store-and-forward discipline: serialize out of the source (tx), fly the
wire, serialize into the destination (rx), deliver.  Dense patterns
(alltoall incast) therefore queue exactly where the real fabric queues,
and -- crucially -- a sender blocked by a busy receiver never parks its
own tx port (no artificial head-of-line blocking; real NICs interleave
packets of concurrent flows).

Two execution strategies walk that schedule (see docs/PERFORMANCE.md):

* the **fast path** (no FaultPlan, no EventBus, no Tracer) drives the
  store-and-forward chain as a flat callback state machine -- no
  generator, no Process wrapper, no end-of-process event;
* the **slow path** is the original generator process, which is where
  fault actions, bus emissions and trace arrows hook in.  Attaching
  observability or fault injection switches every message to it.

Both paths schedule the *same* events at the *same* moments (the fast
path only removes the no-op process-termination event), so simulated
timing -- including heap tie-breaks under incast contention -- is
bit-identical between them.  That invariant is what keeps figure tables
byte-stable whether or not the run is observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.hw.nic import Hca
from repro.hw.params import MachineParams
from repro.sim import Event, Simulator

__all__ = ["Delivery", "Transfer", "Fabric"]


@dataclass
class Delivery:
    """What arrives at the destination when a message lands."""

    src_node: int
    dst_node: int
    size: int
    kind: str = "data"
    #: Arbitrary sender-supplied metadata (protocol headers).
    meta: Any = None
    #: Simulated arrival time (stamped by the fabric).
    time: float = field(default=0.0)
    #: CQE status: "ok", or "error" when fault injection forced an error
    #: completion (no bytes moved; the initiator must re-post).
    status: str = "ok"


@dataclass
class Transfer:
    """Handle returned by :meth:`Fabric.transfer`."""

    delivered: Event
    completed: Event
    size: int
    #: Set by ``rdma_read(lazy_payload=True)``: ``(space, addr)`` where
    #: the bytes actually live, for a follow-on forwarding write.
    payload_src: Any = None


class _TransferRun:
    """One fault-free transfer driven as a flat callback chain.

    Mirrors the slow path's generator statement by statement: every
    event is created at exactly the same moment the generator would
    create it, so heap ``(time, seq)`` ordering -- and therefore all
    contention tie-breaking under incast -- is bit-identical.  What it
    drops is the per-message overhead: the generator frame, the Process
    wrapper and its resume loop, and the process-termination event that
    nothing ever waits on.
    """

    __slots__ = (
        "fabric", "sim", "src_hca", "dst_hca", "serialization", "latency",
        "size", "kind", "meta", "src_node", "dst_node", "on_deliver",
        "t_posted", "delivered", "completed", "_req", "_dv",
    )

    def __init__(self, fabric, src_hca, dst_hca, serialization, latency, size,
                 kind, meta, src_node, dst_node, on_deliver, t_posted,
                 delivered, completed):
        self.fabric = fabric
        sim = self.sim = fabric.sim
        self.src_hca = src_hca
        self.dst_hca = dst_hca
        self.serialization = serialization
        self.latency = latency
        self.size = size
        self.kind = kind
        self.meta = meta
        self.src_node = src_node
        self.dst_node = dst_node
        self.on_deliver = on_deliver
        self.t_posted = t_posted
        self.delivered = delivered
        self.completed = completed
        # Same kick-off shape as Process.__init__: an init event at the
        # current instant, so the tx request happens at the init pop.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._start)
        sim._schedule(init)

    def _start(self, _ev):
        req = self._req = self.src_hca.tx.request()
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._tx_done)

    def _tx_done(self, _ev):
        self.src_hca.tx.release(self._req)
        self.sim.timeout(self.latency).callbacks.append(self._arrived)

    def _arrived(self, _ev):
        req = self._req = self.dst_hca.rx.request()
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._deliver)

    def _deliver(self, _ev):
        sim = self.sim
        self.dst_hca.rx.release(self._req)
        dv = self._dv = Delivery(
            src_node=self.src_node, dst_node=self.dst_node, size=self.size,
            kind=self.kind, meta=self.meta, time=sim.now, status="ok",
        )
        if self.on_deliver is not None:
            self.on_deliver(dv)
        self.src_hca.metrics.observe(
            "fabric.xfer_latency." + self.kind, sim.now - self.t_posted
        )
        self.delivered.succeed(dv)
        sim.timeout(self.fabric.params.ack_latency).callbacks.append(self._acked)

    def _acked(self, _ev):
        self.completed.succeed(self._dv)


class _ControlRun:
    """One fault-free control message as a flat callback chain.

    Same event-for-event mirroring of the slow path as
    :class:`_TransferRun` (control has no fault actions, tracing or
    completion plumbing to carry).
    """

    __slots__ = (
        "sim", "src_hca", "dst_hca", "serialization", "latency",
        "inbox", "msg", "t_posted", "delivered", "_req",
    )

    def __init__(self, fabric, src_hca, dst_hca, serialization, latency,
                 inbox, msg, t_posted, delivered):
        sim = self.sim = fabric.sim
        self.src_hca = src_hca
        self.dst_hca = dst_hca
        self.serialization = serialization
        self.latency = latency
        self.inbox = inbox
        self.msg = msg
        self.t_posted = t_posted
        self.delivered = delivered
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._start)
        sim._schedule(init)

    def _start(self, _ev):
        req = self._req = self.src_hca.tx.request()
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._tx_done)

    def _tx_done(self, _ev):
        self.src_hca.tx.release(self._req)
        self.sim.timeout(self.latency).callbacks.append(self._arrived)

    def _arrived(self, _ev):
        req = self._req = self.dst_hca.rx.request()
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._deliver)

    def _deliver(self, _ev):
        self.dst_hca.rx.release(self._req)
        self.inbox.put(self.msg)
        self.src_hca.metrics.observe(
            "fabric.ctrl_latency", self.sim.now - self.t_posted
        )
        self.delivered.succeed(self.msg)


class Fabric:
    def __init__(self, sim: Simulator, hcas: list[Hca], params: MachineParams,
                 spec=None):
        self.sim = sim
        self.hcas = hcas
        self.params = params
        #: Optional ClusterSpec for topology-aware hop counts (a
        #: two-level leaf/spine fabric when spec.nodes_per_switch > 0).
        self.spec = spec
        #: Optional :class:`~repro.hw.faults.FaultPlan`; None keeps every
        #: message on the original fault-free path.
        self.fault_plan = None
        #: Optional :class:`~repro.obs.events.EventBus`; set by
        #: ``EventBus.attach``.  None keeps all paths emission-free.
        self.bus = None
        #: Optional :class:`~repro.hw.trace.Tracer`; set by
        #: ``Tracer.attach``.
        self.tracer = None
        # Per-fabric ids tagging bus events so posts/deliveries/
        # completions of one message correlate (deterministic: assigned
        # in post order).
        self._xfer_seq = 0
        self._ctrl_seq = 0
        # (src, dst) -> one-way latency; the topology is static, so the
        # hop count never needs recomputing per message.
        self._lat_cache: dict[tuple[int, int], float] = {}

    def one_way_latency(self, src_node: int, dst_node: int) -> float:
        lat = self._lat_cache.get((src_node, dst_node))
        if lat is None:
            if src_node == dst_node:
                lat = self.params.wire_latency
            else:
                hops = 1 if self.spec is None else self.spec.switch_hops(src_node, dst_node)
                lat = self.params.wire_latency + hops * self.params.switch_hop_latency
            self._lat_cache[(src_node, dst_node)] = lat
        return lat

    def transfer(
        self,
        *,
        src_node: int,
        dst_node: int,
        size: int,
        initiator: str,
        src_mem: str = "host",
        dst_mem: str = "host",
        on_deliver: Optional[Callable[[Delivery], None]] = None,
        meta: Any = None,
        kind: str = "data",
        bw_scale: float = 1.0,
    ) -> Transfer:
        """Start a one-sided data movement; post overhead is the caller's.

        Returns immediately with a handle whose ``delivered`` event fires
        when the last byte lands at the destination and whose
        ``completed`` event fires when the initiator would see the CQE
        (delivery + hardware ack).
        """
        if size < 0:
            raise ValueError("negative message size")
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        completed = self.sim.event()
        src_hca.count_post(initiator, size)
        t_posted = self.sim.now
        xid = self._xfer_seq
        self._xfer_seq += 1
        bus = self.bus
        if bus is not None:
            bus.emit("xfer", "post", f"node{src_node}", xid=xid, kind=kind,
                     size=size, initiator=initiator, dst=dst_node)

        plan = self.fault_plan
        status, extra_delay = "ok", 0.0
        if plan is not None:
            status, extra_delay = plan.transfer_fate(kind, initiator, src_node, dst_node)

        if plan is None and bus is None and self.tracer is None:
            _TransferRun(
                self, src_hca, dst_hca,
                src_hca.serialization_time(size, initiator, src_mem, dst_mem)
                / max(1e-9, bw_scale),
                self.one_way_latency(src_node, dst_node),
                size, kind, meta, src_node, dst_node, on_deliver, t_posted,
                delivered, completed,
            )
            return Transfer(delivered=delivered, completed=completed, size=size)

        def _run():
            serialization = src_hca.serialization_time(
                size, initiator, src_mem, dst_mem
            ) / max(1e-9, bw_scale)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(self.one_way_latency(src_node, dst_node) + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            dv = Delivery(
                src_node=src_node,
                dst_node=dst_node,
                size=size,
                kind=kind,
                meta=meta,
                time=self.sim.now,
                status=status,
            )
            # An error CQE moves no bytes: skip the payload callback.
            if on_deliver is not None and status == "ok":
                on_deliver(dv)
            if self.tracer is not None:
                self.tracer.record_arrow(
                    f"node{src_node}", f"node{dst_node}", size, kind,
                    t_posted, self.sim.now,
                )
            if bus is not None:
                bus.emit("xfer", "deliver", f"node{dst_node}", xid=xid,
                         status=status)
            src_hca.metrics.observe(
                f"fabric.xfer_latency.{kind}", self.sim.now - t_posted
            )
            delivered.succeed(dv)
            yield self.sim.timeout(self.params.ack_latency)
            if bus is not None:
                bus.emit("xfer", "complete", f"node{src_node}", xid=xid,
                         status=status)
            completed.succeed(dv)

        self.sim.process(_run())
        return Transfer(delivered=delivered, completed=completed, size=size)

    def control(
        self,
        *,
        src_node: int,
        dst_node: int,
        initiator: str,
        inbox,
        msg: Any,
        size: Optional[int] = None,
        src_mem: str = "host",
        dst_mem: str = "host",
        kind: str = "ctrl",
    ) -> Event:
        """Send a small control message into ``inbox`` (a Store).

        Control messages ride the same engines as data (they *are* small
        RDMA sends) but skip the completion plumbing; the returned event
        fires at delivery.  Same-node host<->DPU control costs
        ``ctrl_latency`` one way, matching the paper's observation that
        the loopback path is latency-comparable to the wire.

        ``kind`` names the protocol message ("rts", "fin", "counter",
        ...) for tracing and for :class:`~repro.hw.faults.FaultPlan`
        targeting.  A dropped or corrupted-and-discarded message never
        reaches ``inbox`` and the returned event never fires (senders
        treat control traffic as fire-and-forget; recovery is the
        receiver's retransmit/timeout protocol).
        """
        nbytes = self.params.ctrl_bytes if size is None else size
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        src_hca.count_post(initiator, nbytes)
        src_hca.metrics.add("fabric.control_msgs")
        cid = self._ctrl_seq
        self._ctrl_seq += 1
        t_posted = self.sim.now
        bus = self.bus
        if bus is not None:
            bus.emit("ctrl", "post", f"node{src_node}", cid=cid, kind=kind,
                     size=nbytes, initiator=initiator, dst=dst_node)
        latency = (
            self.params.ctrl_latency
            if src_node == dst_node
            else self.one_way_latency(src_node, dst_node)
        )
        plan = self.fault_plan
        action, extra_delay = "deliver", 0.0
        if plan is not None:
            action, extra_delay = plan.control_fate(kind, src_node, dst_node)

        if plan is None and bus is None:
            _ControlRun(
                self, src_hca, dst_hca,
                src_hca.serialization_time(nbytes, initiator, src_mem, dst_mem),
                latency, inbox, msg, t_posted, delivered,
            )
            return delivered

        def _run():
            serialization = src_hca.serialization_time(nbytes, initiator, src_mem, dst_mem)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(latency + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                # Control messages are gap-bound; their rx dwell is the
                # same single-packet window.
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            if action in ("drop", "corrupt"):
                # Lost in flight (drop) or discarded by the receiver's
                # ICRC check (corrupt): it never reaches the inbox.
                src_hca.metrics.add(f"fabric.faults.{action}")
                if bus is not None:
                    bus.emit("ctrl", "drop", f"node{dst_node}", cid=cid,
                             kind=kind, action=action)
                return
            inbox.put(msg)
            if action == "dup":
                src_hca.metrics.add("fabric.faults.dup")
                inbox.put(msg)
            if bus is not None:
                bus.emit("ctrl", "deliver", f"node{dst_node}", cid=cid,
                         kind=kind)
            src_hca.metrics.observe("fabric.ctrl_latency", self.sim.now - t_posted)
            delivered.succeed(msg)

        self.sim.process(_run())
        return delivered
