"""Message-level InfiniBand-like fabric.

A single-switch topology (the paper's 32-node testbed hangs off one HDR
switch): every inter-node message pays the wire latency plus one switch
hop; host<->DPU traffic on the *same* node loops back through the HCA
and pays the wire latency only (the paper notes local host-DPU
transfers cost the same as remote ones).

Contention is modelled with two unit resources per node -- a tx and an
rx port -- each held for the message's serialization window in a
store-and-forward discipline: serialize out of the source (tx), fly the
wire, serialize into the destination (rx), deliver.  Dense patterns
(alltoall incast) therefore queue exactly where the real fabric queues,
and -- crucially -- a sender blocked by a busy receiver never parks its
own tx port (no artificial head-of-line blocking; real NICs interleave
packets of concurrent flows).

Two execution strategies walk that schedule (see docs/PERFORMANCE.md):

* the **fast path** (no FaultPlan, no EventBus, no Tracer) drives the
  store-and-forward chain as a flat callback state machine -- no
  generator, no Process wrapper, no end-of-process event;
* the **slow path** is the original generator process, which is where
  fault actions, bus emissions and trace arrows hook in.  Attaching
  observability or fault injection switches every message to it.

Both paths schedule the *same* events at the *same* moments (the fast
path only removes the no-op process-termination event), so simulated
timing -- including heap tie-breaks under incast contention -- is
bit-identical between them.  That invariant is what keeps figure tables
byte-stable whether or not the run is observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.hw.nic import Hca
from repro.hw.params import MachineParams
from repro.sim import Event, Simulator

__all__ = ["Delivery", "Transfer", "Fabric"]


@dataclass
class Delivery:
    """What arrives at the destination when a message lands."""

    src_node: int
    dst_node: int
    size: int
    kind: str = "data"
    #: Arbitrary sender-supplied metadata (protocol headers).
    meta: Any = None
    #: Simulated arrival time (stamped by the fabric).
    time: float = field(default=0.0)
    #: CQE status: "ok", or "error" when fault injection forced an error
    #: completion (no bytes moved; the initiator must re-post).
    status: str = "ok"
    #: Which engine carried the bytes: "event" (exact store-and-forward
    #: chunk FSM) or "flow" (fluid hybrid mode).  Lets consumers -- the
    #: offload proxy's CQE accounting, the differential harness -- tell
    #: flow-completed CQEs apart without changing any timing.
    via: str = "event"
    #: Link keys the bytes crossed, in order (fluid mode with a
    #: fat-tree topology attached: ``(("tx", s), ("up", l, k),
    #: ("down", k, l'), ("rx", d))``).  ``None`` on the event path and
    #: on endpoint-only fluid runs.
    path: Any = None


@dataclass
class Transfer:
    """Handle returned by :meth:`Fabric.transfer`."""

    delivered: Event
    completed: Event
    size: int
    #: Set by ``rdma_read(lazy_payload=True)``: ``(space, addr)`` where
    #: the bytes actually live, for a follow-on forwarding write.
    payload_src: Any = None


class _TransferRun:
    """One fault-free transfer driven as a flat callback chain.

    Mirrors the slow path's generator statement by statement: every
    event is created at exactly the same moment the generator would
    create it, so heap ``(time, seq)`` ordering -- and therefore all
    contention tie-breaking under incast -- is bit-identical.  What it
    drops is the per-message overhead: the generator frame, the Process
    wrapper and its resume loop, and the process-termination event that
    nothing ever waits on.
    """

    __slots__ = (
        "fabric", "sim", "src_hca", "dst_hca", "serialization", "latency",
        "size", "kind", "meta", "src_node", "dst_node", "on_deliver",
        "t_posted", "delivered", "completed", "_req", "_dv",
    )

    def __init__(self, fabric, src_hca, dst_hca, serialization, latency, size,
                 kind, meta, src_node, dst_node, on_deliver, t_posted,
                 delivered, completed):
        self.fabric = fabric
        sim = self.sim = fabric.sim
        self.src_hca = src_hca
        self.dst_hca = dst_hca
        self.serialization = serialization
        self.latency = latency
        self.size = size
        self.kind = kind
        self.meta = meta
        self.src_node = src_node
        self.dst_node = dst_node
        self.on_deliver = on_deliver
        self.t_posted = t_posted
        self.delivered = delivered
        self.completed = completed
        # Same kick-off shape as Process.__init__: an init event at the
        # current instant, so the tx request happens at the init pop.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._start)
        sim._schedule(init)

    def _start(self, _ev):
        req = self._req = self.src_hca.tx.request()
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._tx_done)

    def _tx_done(self, _ev):
        self.src_hca.tx.release(self._req)
        self.sim.timeout(self.latency).callbacks.append(self._arrived)

    def _arrived(self, _ev):
        req = self._req = self.dst_hca.rx.request()
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._deliver)

    def _deliver(self, _ev):
        sim = self.sim
        self.dst_hca.rx.release(self._req)
        dv = self._dv = Delivery(
            src_node=self.src_node, dst_node=self.dst_node, size=self.size,
            kind=self.kind, meta=self.meta, time=sim.now, status="ok",
        )
        if self.on_deliver is not None:
            self.on_deliver(dv)
        self.src_hca.metrics.observe(
            "fabric.xfer_latency." + self.kind, sim.now - self.t_posted
        )
        self.delivered.succeed(dv)
        sim.timeout(self.fabric.params.ack_latency).callbacks.append(self._acked)

    def _acked(self, _ev):
        self.completed.succeed(self._dv)


class _ChunkedTransferRun:
    """One fault-free transfer priced at chunk granularity.

    The message is segmented into ``chunk_bytes`` pieces that pipeline
    store-and-forward: each chunk arbitrates for the tx port,
    serializes, crosses the wire, and re-serializes at the rx port as
    its own discrete event chain, so concurrent bulk transfers
    interleave chunk by chunk instead of message by message.  This is
    the fidelity mode the fluid engine's coarse flow steps are
    benchmarked against (``bench_flow_throughput`` -> BENCH_engine):
    an n-chunk transfer costs O(n) heap events here versus O(1) on the
    FlowEngine.  Opt-in via ``ClusterSpec.chunk_bytes``; off by
    default, keeping the message-level FSM -- and every committed
    figure table and golden trace -- bit-identical.
    """

    __slots__ = (
        "fabric", "sim", "src_hca", "dst_hca", "chunk_ser", "last_ser",
        "latency", "size", "kind", "meta", "src_node", "dst_node",
        "on_deliver", "t_posted", "xid", "delivered", "completed",
        "n_chunks", "_tx_i", "_rx_i", "_rx_done", "_tx_req", "_dv",
    )

    def __init__(self, fabric, src_hca, dst_hca, chunk_ser, last_ser,
                 n_chunks, latency, size, kind, meta, src_node, dst_node,
                 on_deliver, t_posted, xid, delivered, completed):
        self.fabric = fabric
        sim = self.sim = fabric.sim
        self.src_hca = src_hca
        self.dst_hca = dst_hca
        self.chunk_ser = chunk_ser
        self.last_ser = last_ser
        self.n_chunks = n_chunks
        self.latency = latency
        self.size = size
        self.kind = kind
        self.meta = meta
        self.src_node = src_node
        self.dst_node = dst_node
        self.on_deliver = on_deliver
        self.t_posted = t_posted
        self.xid = xid
        self.delivered = delivered
        self.completed = completed
        self._tx_i = 0
        self._rx_i = 0
        self._rx_done = 0
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._start)
        sim._schedule(init)

    def _start(self, _ev):
        req = self._tx_req = self.src_hca.tx.request()
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _ev):
        self._tx_i += 1
        ser = self.last_ser if self._tx_i == self.n_chunks else self.chunk_ser
        self.sim.timeout(ser).callbacks.append(self._tx_chunk_done)

    def _tx_chunk_done(self, _ev):
        self.src_hca.tx.release(self._tx_req)
        self.sim.timeout(self.latency).callbacks.append(self._arrived)
        if self._tx_i < self.n_chunks:
            self._start(None)

    def _arrived(self, _ev):
        req = self.dst_hca.rx.request()
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, req):
        # Chunks of one message reach the rx port in order (the tx port
        # serializes them in order and the wire latency is constant), so
        # a grant counter suffices to spot the short final chunk.
        self._rx_i += 1
        ser = self.last_ser if self._rx_i == self.n_chunks else self.chunk_ser
        t = self.sim.timeout(ser)
        t.callbacks.append(lambda _ev, req=req: self._rx_chunk_done(req))

    def _rx_chunk_done(self, req):
        self.dst_hca.rx.release(req)
        self._rx_done += 1
        if self._rx_done == self.n_chunks:
            self._deliver()

    def _deliver(self):
        sim = self.sim
        fabric = self.fabric
        dv = self._dv = Delivery(
            src_node=self.src_node, dst_node=self.dst_node, size=self.size,
            kind=self.kind, meta=self.meta, time=sim.now, status="ok",
        )
        if self.on_deliver is not None:
            self.on_deliver(dv)
        if fabric.tracer is not None:
            fabric.tracer.record_arrow(
                f"node{self.src_node}", f"node{self.dst_node}", self.size,
                self.kind, self.t_posted, sim.now,
            )
        if fabric.bus is not None:
            fabric.bus.emit("xfer", "deliver", f"node{self.dst_node}",
                            xid=self.xid, status="ok")
        self.src_hca.metrics.observe(
            "fabric.xfer_latency." + self.kind, sim.now - self.t_posted
        )
        self.delivered.succeed(dv)
        sim.timeout(fabric.params.ack_latency).callbacks.append(self._acked)

    def _acked(self, _ev):
        if self.fabric.bus is not None:
            self.fabric.bus.emit("xfer", "complete", f"node{self.src_node}",
                                 xid=self.xid, status="ok")
        self.completed.succeed(self._dv)


class _ControlRun:
    """One fault-free control message as a flat callback chain.

    Same event-for-event mirroring of the slow path as
    :class:`_TransferRun` (control has no fault actions, tracing or
    completion plumbing to carry).
    """

    __slots__ = (
        "sim", "src_hca", "dst_hca", "serialization", "latency",
        "inbox", "msg", "t_posted", "delivered", "_req",
    )

    def __init__(self, fabric, src_hca, dst_hca, serialization, latency,
                 inbox, msg, t_posted, delivered):
        sim = self.sim = fabric.sim
        self.src_hca = src_hca
        self.dst_hca = dst_hca
        self.serialization = serialization
        self.latency = latency
        self.inbox = inbox
        self.msg = msg
        self.t_posted = t_posted
        self.delivered = delivered
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._start)
        sim._schedule(init)

    def _start(self, _ev):
        req = self._req = self.src_hca.tx.request()
        req.callbacks.append(self._tx_granted)

    def _tx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._tx_done)

    def _tx_done(self, _ev):
        self.src_hca.tx.release(self._req)
        self.sim.timeout(self.latency).callbacks.append(self._arrived)

    def _arrived(self, _ev):
        req = self._req = self.dst_hca.rx.request()
        req.callbacks.append(self._rx_granted)

    def _rx_granted(self, _ev):
        self.sim.timeout(self.serialization).callbacks.append(self._deliver)

    def _deliver(self, _ev):
        self.dst_hca.rx.release(self._req)
        self.inbox.put(self.msg)
        self.src_hca.metrics.observe(
            "fabric.ctrl_latency", self.sim.now - self.t_posted
        )
        self.delivered.succeed(self.msg)


class _FlowState:
    """Protocol tail of one fluid transfer (what the FlowEngine doesn't know).

    The engine only shares port time; the fabric keeps the message's
    identity, its unshared tail (wire latency + rx re-serialization),
    and the delivery/CQE events to fire.
    """

    __slots__ = (
        "src_hca", "src_node", "dst_node", "size", "kind", "meta",
        "on_deliver", "t_posted", "xid", "delivered", "completed",
        "latency", "tail", "fid", "status", "extra_delay", "attempt",
        "drop_remaining", "owner", "path",
    )

    def __init__(self, src_hca, src_node, dst_node, size, kind, meta,
                 on_deliver, t_posted, xid, delivered, completed,
                 latency, tail):
        self.src_hca = src_hca
        self.src_node = src_node
        self.dst_node = dst_node
        self.size = size
        self.kind = kind
        self.meta = meta
        self.on_deliver = on_deliver
        self.t_posted = t_posted
        self.xid = xid
        self.delivered = delivered
        self.completed = completed
        self.latency = latency
        self.tail = tail
        self.fid = -1
        #: CQE status decided at post time (fault injection); "error"
        #: completes the op without moving bytes, like the event path.
        self.status = "ok"
        #: Extra in-flight delay (fault injection) appended to the tail.
        self.extra_delay = 0.0
        #: Transmission attempt, 1-based; bumped per flow-drop retransmit.
        self.attempt = 1
        #: Port-seconds still to send after a mid-flight drop (None when
        #: the current flow carries the message to completion).
        self.drop_remaining = None
        #: Opaque owner handle (the posting ProcessContext); lets a
        #: proxy kill abort the flows it had in flight.
        self.owner = None
        #: Link keys the current flow crosses (topology mode); None on
        #: endpoint-only runs.  Captured into the Delivery.
        self.path = None


class Fabric:
    def __init__(self, sim: Simulator, hcas: list[Hca], params: MachineParams,
                 spec=None):
        self.sim = sim
        self.hcas = hcas
        self.params = params
        #: Optional ClusterSpec for topology-aware hop counts (a
        #: two-level leaf/spine fabric when spec.nodes_per_switch > 0).
        self.spec = spec
        #: Optional :class:`~repro.hw.faults.FaultPlan`; None keeps every
        #: message on the original fault-free path.
        self.fault_plan = None
        #: Optional :class:`~repro.obs.events.EventBus`; set by
        #: ``EventBus.attach``.  None keeps all paths emission-free.
        self.bus = None
        #: Optional :class:`~repro.hw.trace.Tracer`; set by
        #: ``Tracer.attach``.
        self.tracer = None
        #: Optional :class:`~repro.sim.flows.FlowEngine` (fluid hybrid
        #: mode); None keeps every transfer on the exact chunk FSM.
        self.flow_engine = None
        #: Optional :class:`~repro.hw.topology.FatTreeTopology`; set by
        #: attach_flow_engine.  None keeps flows endpoint-only.
        self.topology = None
        #: Byte threshold above which data transfers become flows when
        #: a flow engine is attached.
        self.fluid_threshold = 0
        #: Chunk-granularity event pricing (exact mode): a positive
        #: value segments data transfers larger than this into
        #: chunk-sized store-and-forward event chains.  0 (default)
        #: keeps message-level pricing bit-identical.
        self.chunk_bytes = 0
        # Per-fabric ids tagging bus events so posts/deliveries/
        # completions of one message correlate (deterministic: assigned
        # in post order).
        self._xfer_seq = 0
        self._ctrl_seq = 0
        # (src, dst) -> one-way latency; the topology is static, so the
        # hop count never needs recomputing per message.
        self._lat_cache: dict[tuple[int, int], float] = {}

    def attach_flow_engine(self, engine, threshold: int,
                           topology=None) -> None:
        """Enable fluid hybrid mode: bulk transfers >= ``threshold`` bytes
        become rate-shared flows; everything else stays event-exact.

        With a :class:`~repro.hw.topology.FatTreeTopology` attached,
        every flow additionally carries an explicit link path (tx port,
        spine up/down links, rx port) and the engine water-fills over
        the full flow x link incidence; the fabric then also tracks
        per-link utilization and surfaces ``link.congested`` /
        ``link.clear`` obs events on contention edges.  ``None``
        (default) keeps the endpoint-only engine bit-identical.
        """
        self.flow_engine = engine
        self.fluid_threshold = threshold
        self.topology = topology
        if topology is not None:
            topology.register_links(engine)
            engine.util_enabled = True
            engine.on_congestion = self._on_link_congestion

    def one_way_latency(self, src_node: int, dst_node: int) -> float:
        lat = self._lat_cache.get((src_node, dst_node))
        if lat is None:
            if src_node == dst_node:
                lat = self.params.wire_latency
            else:
                hops = 1 if self.spec is None else self.spec.switch_hops(src_node, dst_node)
                lat = self.params.wire_latency + hops * self.params.switch_hop_latency
            self._lat_cache[(src_node, dst_node)] = lat
        return lat

    def transfer(
        self,
        *,
        src_node: int,
        dst_node: int,
        size: int,
        initiator: str,
        src_mem: str = "host",
        dst_mem: str = "host",
        on_deliver: Optional[Callable[[Delivery], None]] = None,
        meta: Any = None,
        kind: str = "data",
        bw_scale: float = 1.0,
        owner: Any = None,
    ) -> Transfer:
        """Start a one-sided data movement; post overhead is the caller's.

        Returns immediately with a handle whose ``delivered`` event fires
        when the last byte lands at the destination and whose
        ``completed`` event fires when the initiator would see the CQE
        (delivery + hardware ack).
        """
        if size < 0:
            raise ValueError("negative message size")
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        completed = self.sim.event()
        src_hca.count_post(initiator, size)
        t_posted = self.sim.now
        xid = self._xfer_seq
        self._xfer_seq += 1
        bus = self.bus
        if bus is not None:
            bus.emit("xfer", "post", f"node{src_node}", xid=xid, kind=kind,
                     size=size, initiator=initiator, dst=dst_node)

        plan = self.fault_plan
        status, extra_delay = "ok", 0.0
        if plan is not None:
            status, extra_delay = plan.transfer_fate(kind, initiator, src_node, dst_node)

        # Fluid hybrid mode: bulk data rides the rate-shared FlowEngine;
        # control messages (Fabric.control) and sub-threshold transfers
        # keep the exact chunk FSM.  An armed FaultPlan composes with the
        # flow path: the transfer_fate decided above (error CQE / extra
        # delay, drawn from the shared "faults" stream at the same point
        # as the event path) rides the flow's protocol tail, and per-flow
        # drop fates come from the plan's independent flow stream.
        engine = self.flow_engine
        if engine is not None and size >= self.fluid_threshold:
            self._flow_transfer(
                engine, src_hca, src_node, dst_node, size, initiator,
                src_mem, dst_mem, bw_scale, kind, meta, on_deliver,
                t_posted, xid, delivered, completed,
                status=status, extra_delay=extra_delay, owner=owner,
            )
            return Transfer(delivered=delivered, completed=completed, size=size)

        # Chunk-granularity pricing (exact mode only; fault injection
        # keeps the message-level FSM so fate hooks stay 1:1 with
        # messages -- announced loudly, a silent engine switch is how
        # robustness gaps hide).
        chunk = self.chunk_bytes
        if chunk and plan is not None and size > chunk:
            src_hca.metrics.add("fabric.fluid_disabled")
            if bus is not None:
                bus.emit("fluid", "disabled", f"node{src_node}", xid=xid,
                         kind=kind, size=size, mode="chunk",
                         reason="fault_plan")
        if chunk and plan is None and size > chunk:
            n_chunks = -(-size // chunk)
            ser = src_hca.serialization_time(chunk, initiator, src_mem, dst_mem)
            last = src_hca.serialization_time(
                size - (n_chunks - 1) * chunk, initiator, src_mem, dst_mem
            )
            scale = max(1e-9, bw_scale)
            src_hca.metrics.add("fabric.chunks", n_chunks)
            _ChunkedTransferRun(
                self, src_hca, dst_hca, ser / scale, last / scale, n_chunks,
                self.one_way_latency(src_node, dst_node), size, kind, meta,
                src_node, dst_node, on_deliver, t_posted, xid,
                delivered, completed,
            )
            return Transfer(delivered=delivered, completed=completed, size=size)

        if plan is None and bus is None and self.tracer is None:
            _TransferRun(
                self, src_hca, dst_hca,
                src_hca.serialization_time(size, initiator, src_mem, dst_mem)
                / max(1e-9, bw_scale),
                self.one_way_latency(src_node, dst_node),
                size, kind, meta, src_node, dst_node, on_deliver, t_posted,
                delivered, completed,
            )
            return Transfer(delivered=delivered, completed=completed, size=size)

        def _run():
            serialization = src_hca.serialization_time(
                size, initiator, src_mem, dst_mem
            ) / max(1e-9, bw_scale)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(self.one_way_latency(src_node, dst_node) + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            dv = Delivery(
                src_node=src_node,
                dst_node=dst_node,
                size=size,
                kind=kind,
                meta=meta,
                time=self.sim.now,
                status=status,
            )
            # An error CQE moves no bytes: skip the payload callback.
            if on_deliver is not None and status == "ok":
                on_deliver(dv)
            if self.tracer is not None:
                self.tracer.record_arrow(
                    f"node{src_node}", f"node{dst_node}", size, kind,
                    t_posted, self.sim.now,
                )
            if bus is not None:
                bus.emit("xfer", "deliver", f"node{dst_node}", xid=xid,
                         status=status)
            src_hca.metrics.observe(
                f"fabric.xfer_latency.{kind}", self.sim.now - t_posted
            )
            delivered.succeed(dv)
            yield self.sim.timeout(self.params.ack_latency)
            if bus is not None:
                bus.emit("xfer", "complete", f"node{src_node}", xid=xid,
                         status=status)
            completed.succeed(dv)

        self.sim.process(_run())
        return Transfer(delivered=delivered, completed=completed, size=size)

    # -- fluid hybrid mode (docs/PERFORMANCE.md) -------------------------
    def _flow_transfer(self, engine, src_hca, src_node, dst_node, size,
                       initiator, src_mem, dst_mem, bw_scale, kind, meta,
                       on_deliver, t_posted, xid, delivered, completed,
                       status: str = "ok", extra_delay: float = 0.0,
                       owner: Any = None) -> None:
        """Route one bulk transfer through the rate-shared FlowEngine.

        The flow's *work* is the store-and-forward serialization window
        in port-seconds; its drain marks the last byte leaving the
        shared tx port.  The unshared protocol tail -- wire latency plus
        the destination's re-serialization plus the hardware ack -- is
        appended verbatim, so a solo flow lands on exactly the event
        engine's timestamps (post + 2*serialization + latency [+ ack])
        and n symmetric flows on one port pair drain in n*serialization,
        matching the pipelined chunk FSM.

        Fault composition: ``status``/``extra_delay`` are the post-time
        ``transfer_fate`` (an error CQE still occupies the ports for the
        full window, exactly like the event path; extra delay stretches
        the in-flight tail).  Mid-flight *drops* are flow-native fates
        drawn per admission from the plan's independent stream: the flow
        carries only the pre-glitch fraction of its work, and the
        remainder is retransmitted as a fresh flow after an exponential
        backoff (``RetryPolicy``).
        """
        work = src_hca.serialization_time(
            size, initiator, src_mem, dst_mem
        ) / max(1e-9, bw_scale)
        latency = self.one_way_latency(src_node, dst_node)
        st = _FlowState(src_hca, src_node, dst_node, size, kind, meta,
                        on_deliver, t_posted, xid, delivered, completed,
                        latency, work)
        st.status = status
        st.extra_delay = extra_delay
        st.owner = owner
        src_hca.metrics.add("fabric.flows")
        self._flow_admit(engine, st, work)

    def _flow_admit(self, engine, st: _FlowState, work: float) -> None:
        """Admit (or re-admit) a flow, consulting the plan's flow fates.

        A "drop" fate splits ``work``: the admitted flow carries the
        pre-glitch fraction and ``st.drop_remaining`` holds the rest for
        the retransmit scheduled at drain time.  Fates stop being
        consulted past ``RetryPolicy.rdma_retry_limit`` attempts, so a
        retransmit storm is bounded and every message still completes.
        """
        plan = self.fault_plan
        st.drop_remaining = None
        if (plan is not None and st.status == "ok"
                and plan.spec.flow_drop_prob > 0.0
                and st.attempt <= plan.retry.rdma_retry_limit):
            action, frac = plan.flow_fate(st.kind, st.src_node, st.dst_node,
                                          st.attempt)
            if action == "drop":
                st.drop_remaining = work * (1.0 - frac)
                work = work * frac
        topo = self.topology
        if topo is not None:
            path = topo.path(st.src_node, st.dst_node)
            flow = engine.add_flow(path=path, work=work,
                                   finish=self._flow_drained, tag=st)
            st.path = path
        else:
            flow = engine.add_flow(tx=("tx", st.src_node),
                                   rx=("rx", st.dst_node),
                                   work=work, finish=self._flow_drained,
                                   tag=st)
        st.fid = flow.fid
        bus = self.bus
        if bus is not None:
            bus.emit("flow", "begin", f"flow{flow.fid}", fid=flow.fid,
                     xid=st.xid, kind=st.kind, size=st.size,
                     src=st.src_node, dst=st.dst_node, attempt=st.attempt)

    def _on_link_congestion(self, key, congested: bool, nflows: int) -> None:
        """FlowEngine congestion hook: count + surface contention edges."""
        if congested and self.hcas:
            self.hcas[0].metrics.add("fabric.link_congested")
        bus = self.bus
        if bus is not None:
            bus.emit("link", "congested" if congested else "clear",
                     "fabric", link=str(key), nflows=nflows)

    def _flow_drained(self, flow, t_drain: float) -> None:
        """FlowEngine finish callback: close the window, arm the tail.

        A flow whose admission drew a drop fate does not deliver: its
        window closes at the glitch point and the residual work is
        retransmitted as a fresh flow after an exponential backoff.
        """
        st = flow.tag
        bus = self.bus
        if st.drop_remaining is not None:
            remaining = st.drop_remaining
            plan = self.fault_plan
            retry = plan.retry
            backoff = min(
                retry.rdma_backoff * (retry.backoff ** (st.attempt - 1)),
                retry.max_timeout,
            )
            st.src_hca.metrics.add("fabric.flow_drops")
            if bus is not None:
                bus.emit("flow", "fault", f"flow{flow.fid}", fid=flow.fid,
                         xid=st.xid, action="drop", attempt=st.attempt)
                bus.emit("flow", "end", f"flow{flow.fid}", fid=flow.fid,
                         xid=st.xid)
            ev = self.sim.event()
            ev._ok = True
            ev._value = None
            ev.callbacks.append(
                lambda _ev, st=st, remaining=remaining:
                    self._flow_retry(st, remaining)
            )
            self.sim.schedule_at(ev, t_drain + backoff)
            plan.note_flow_retry(st.kind, st.src_node, st.dst_node,
                                 st.attempt, backoff)
            return
        if bus is not None:
            bus.emit("flow", "end", f"flow{flow.fid}", fid=flow.fid,
                     xid=st.xid)
        ev = self.sim.event()
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev, st=st: self._flow_deliver(st))
        self.sim.schedule_at(ev, t_drain + st.latency + st.tail
                             + st.extra_delay)

    def _flow_retry(self, st: _FlowState, remaining: float) -> None:
        """Retransmit a dropped flow's residual work as a fresh flow."""
        engine = self.flow_engine
        st.attempt += 1
        st.src_hca.metrics.add("fabric.flow_retries")
        bus = self.bus
        if bus is not None:
            bus.emit("flow", "retry", f"node{st.src_node}", xid=st.xid,
                     attempt=st.attempt, kind=st.kind)
        self._flow_admit(engine, st, remaining)

    def abort_flows(self, owner: Any) -> int:
        """Cancel every in-flight flow posted by ``owner`` (process death).

        Each aborted flow's window closes at the cancel instant and its
        transfer completes promptly with an **error CQE** (status
        "error", no bytes moved) -- mirroring how a real RC QP flushes
        outstanding WQEs with flush errors when its owner dies.  The
        initiating layer's normal error/retransmit recovery takes over
        from there.  Returns the number of flows aborted.
        """
        engine = self.flow_engine
        if engine is None:
            return 0
        aborted = 0
        bus = self.bus
        for flow in engine.flows():
            st = flow.tag
            if not isinstance(st, _FlowState) or st.owner is not owner:
                continue
            if engine.cancel_flow(flow) is None:
                continue  # drained in this very instant; the tail runs
            aborted += 1
            st.status = "error"
            st.drop_remaining = None
            st.src_hca.metrics.add("fabric.flow_aborts")
            if bus is not None:
                bus.emit("flow", "fault", f"flow{flow.fid}", fid=flow.fid,
                         xid=st.xid, action="abort", attempt=st.attempt)
                bus.emit("flow", "end", f"flow{flow.fid}", fid=flow.fid,
                         xid=st.xid)
            # The flush error surfaces after the protocol tail (the
            # in-flight bytes still have to land somewhere); delivery
            # carries status="error" so nothing moves and consumers see
            # the failed CQE.
            ev = self.sim.event()
            ev._ok = True
            ev._value = None
            ev.callbacks.append(lambda _ev, st=st: self._flow_deliver(st))
            self.sim.schedule_at(ev, self.sim.now + st.latency + st.tail)
        return aborted

    def _flow_deliver(self, st: _FlowState) -> None:
        sim = self.sim
        dv = Delivery(
            src_node=st.src_node, dst_node=st.dst_node, size=st.size,
            kind=st.kind, meta=st.meta, time=sim.now, status=st.status,
            via="flow", path=st.path,
        )
        # An error CQE moves no bytes: skip the payload callback.
        if st.on_deliver is not None and st.status == "ok":
            st.on_deliver(dv)
        if self.tracer is not None:
            self.tracer.record_arrow(
                f"node{st.src_node}", f"node{st.dst_node}", st.size, st.kind,
                st.t_posted, sim.now,
            )
        bus = self.bus
        if bus is not None:
            bus.emit("xfer", "deliver", f"node{st.dst_node}", xid=st.xid,
                     status=st.status, via="flow")
        st.src_hca.metrics.observe(
            f"fabric.xfer_latency.{st.kind}", sim.now - st.t_posted
        )
        st.delivered.succeed(dv)
        ack = sim.timeout(self.params.ack_latency)
        ack.callbacks.append(lambda _ev, st=st, dv=dv: self._flow_acked(st, dv))

    def _flow_acked(self, st: _FlowState, dv: Delivery) -> None:
        bus = self.bus
        if bus is not None:
            bus.emit("xfer", "complete", f"node{st.src_node}", xid=st.xid,
                     status=st.status, via="flow")
        st.completed.succeed(dv)

    def control(
        self,
        *,
        src_node: int,
        dst_node: int,
        initiator: str,
        inbox,
        msg: Any,
        size: Optional[int] = None,
        src_mem: str = "host",
        dst_mem: str = "host",
        kind: str = "ctrl",
    ) -> Event:
        """Send a small control message into ``inbox`` (a Store).

        Control messages ride the same engines as data (they *are* small
        RDMA sends) but skip the completion plumbing; the returned event
        fires at delivery.  Same-node host<->DPU control costs
        ``ctrl_latency`` one way, matching the paper's observation that
        the loopback path is latency-comparable to the wire.

        ``kind`` names the protocol message ("rts", "fin", "counter",
        ...) for tracing and for :class:`~repro.hw.faults.FaultPlan`
        targeting.  A dropped or corrupted-and-discarded message never
        reaches ``inbox`` and the returned event never fires (senders
        treat control traffic as fire-and-forget; recovery is the
        receiver's retransmit/timeout protocol).
        """
        nbytes = self.params.ctrl_bytes if size is None else size
        src_hca = self.hcas[src_node]
        dst_hca = self.hcas[dst_node]
        delivered = self.sim.event()
        src_hca.count_post(initiator, nbytes)
        src_hca.metrics.add("fabric.control_msgs")
        cid = self._ctrl_seq
        self._ctrl_seq += 1
        t_posted = self.sim.now
        bus = self.bus
        if bus is not None:
            bus.emit("ctrl", "post", f"node{src_node}", cid=cid, kind=kind,
                     size=nbytes, initiator=initiator, dst=dst_node)
        latency = (
            self.params.ctrl_latency
            if src_node == dst_node
            else self.one_way_latency(src_node, dst_node)
        )
        plan = self.fault_plan
        action, extra_delay = "deliver", 0.0
        if plan is not None:
            action, extra_delay = plan.control_fate(kind, src_node, dst_node)

        if plan is None and bus is None:
            _ControlRun(
                self, src_hca, dst_hca,
                src_hca.serialization_time(nbytes, initiator, src_mem, dst_mem),
                latency, inbox, msg, t_posted, delivered,
            )
            return delivered

        def _run():
            serialization = src_hca.serialization_time(nbytes, initiator, src_mem, dst_mem)
            tx_req = src_hca.tx.request()
            yield tx_req
            try:
                yield self.sim.timeout(serialization)
            finally:
                src_hca.tx.release(tx_req)
            yield self.sim.timeout(latency + extra_delay)
            rx_req = dst_hca.rx.request()
            yield rx_req
            try:
                # Control messages are gap-bound; their rx dwell is the
                # same single-packet window.
                yield self.sim.timeout(serialization)
            finally:
                dst_hca.rx.release(rx_req)
            if action in ("drop", "corrupt"):
                # Lost in flight (drop) or discarded by the receiver's
                # ICRC check (corrupt): it never reaches the inbox.
                src_hca.metrics.add(f"fabric.faults.{action}")
                if bus is not None:
                    bus.emit("ctrl", "drop", f"node{dst_node}", cid=cid,
                             kind=kind, action=action)
                return
            inbox.put(msg)
            if action == "dup":
                src_hca.metrics.add("fabric.faults.dup")
                inbox.put(msg)
            if bus is not None:
                bus.emit("ctrl", "deliver", f"node{dst_node}", cid=cid,
                         kind=kind)
            src_hca.metrics.observe("fabric.ctrl_latency", self.sim.now - t_posted)
            delivered.succeed(msg)

        self.sim.process(_run())
        return delivered
