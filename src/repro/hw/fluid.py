"""Ambient fluid-mode selection (the ``--fluid`` switch's plumbing).

The hybrid engine is selected per cluster (``ClusterSpec.fluid``), but
most figure code builds its specs from committed config dicts that must
stay byte-identical between modes.  Those specs leave ``fluid=None``
and inherit the *ambient* default set here.

The ambient default lives in ``os.environ`` (``REPRO_FLUID`` /
``REPRO_FLUID_THRESHOLD``) rather than a module global, mirroring
``REPRO_JOBS``: the parallel sweep engine spawns workers with the
``spawn`` start method, and a fresh interpreter only inherits the
environment.  Setting the mode in the parent therefore flips every
worker of the campaign too.

Fluid mode composes with fault injection: an armed
:class:`~repro.hw.faults.FaultPlan` rides the flow path (error CQEs,
extra delay, and -- fluid-only -- flow drop/retransmit fates), and a
:class:`~repro.hw.faults.LinkDegradePlan` drives the FlowEngine's
endpoint capacities.  The one exception is ``chunk_bytes``: chunk-level
event pricing under faults stays on the exact engine (the fabric emits
``fluid.disabled`` when it forces that path), because per-chunk fault
targeting has no flow-granularity equivalent.  See docs/FAULTS.md and
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "DEFAULT_FLUID_THRESHOLD",
    "default_fluid",
    "default_fluid_threshold",
    "engine_mode",
    "resolve_fluid",
    "set_default_fluid",
    "using_fluid",
]

#: Bulk/control split.  Below it, messages are latency-bound, cheap to
#: price exactly, and -- critically -- still *contend* with control
#: traffic for the tx/rx ports, an effect the decoupled FlowEngine
#: cannot see (flows only rate-share with other flows).  Measured on
#: the figure suite (docs/PERFORMANCE.md): a 64 KiB threshold lets
#: fig15's contention-coupled 64 KiB exchanges ride flows and distorts
#: them by up to 10%; at 256 KiB every quick-scale figure matches the
#: event engine to < 1e-9 relative.  16x the eager threshold also
#: matches where serialization (not port arbitration) dominates the
#: exact engine's timing.
DEFAULT_FLUID_THRESHOLD = 256 * 1024

_ENV_FLUID = "REPRO_FLUID"
_ENV_THRESHOLD = "REPRO_FLUID_THRESHOLD"


def default_fluid() -> bool:
    """Ambient engine mode: True when ``REPRO_FLUID`` is a truthy flag."""
    return os.environ.get(_ENV_FLUID, "0") not in ("0", "", "false", "False")


def default_fluid_threshold() -> int:
    """Ambient byte threshold for routing transfers into flows."""
    raw = os.environ.get(_ENV_THRESHOLD)
    if not raw:
        return DEFAULT_FLUID_THRESHOLD
    value = int(raw)
    if value < 1:
        raise ValueError(f"REPRO_FLUID_THRESHOLD must be >= 1, got {value}")
    return value


def set_default_fluid(enabled: bool, threshold: Optional[int] = None) -> None:
    """Set the ambient mode (inherited by spawned sweep workers)."""
    os.environ[_ENV_FLUID] = "1" if enabled else "0"
    if threshold is not None:
        if threshold < 1:
            raise ValueError(f"fluid threshold must be >= 1, got {threshold}")
        os.environ[_ENV_THRESHOLD] = str(threshold)


@contextmanager
def using_fluid(enabled: bool = True, threshold: Optional[int] = None):
    """Scoped ambient mode (tests / library callers); restores on exit."""
    saved = {k: os.environ.get(k) for k in (_ENV_FLUID, _ENV_THRESHOLD)}
    try:
        set_default_fluid(enabled, threshold)
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def engine_mode() -> str:
    """``"exact"`` or ``"fluid"`` -- the ambient mode as a label.

    Campaign journals fold this into their content keys so fluid and
    exact records of the same sweep point never collide.
    """
    return "fluid" if default_fluid() else "exact"


def resolve_fluid(spec) -> tuple[bool, int]:
    """Resolve a :class:`~repro.hw.params.ClusterSpec`'s engine choice.

    Explicit spec fields win; ``None`` fields inherit the ambient
    default.  Returns ``(enabled, threshold_bytes)``.
    """
    enabled = spec.fluid if spec.fluid is not None else default_fluid()
    threshold = (
        spec.fluid_threshold
        if spec.fluid_threshold is not None
        else default_fluid_threshold()
    )
    return bool(enabled), int(threshold)
