"""Cluster-wide counters.

A single :class:`Metrics` object hangs off the :class:`~repro.hw.cluster.Cluster`
and is incremented from every layer: NIC engines, registration paths,
caches, proxies, the MPI runtime.  Experiments read it to report e.g.
control-message counts (Fig 15's Simple-vs-Group comparison) or
registration-cache hit rates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

__all__ = ["Metrics"]


class Metrics:
    """A hierarchical counter bag: ``metrics.add("nic.host_posted")``."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counters[key] += amount

    def get(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters under ``prefix.`` (key is returned un-prefixed)."""
        cut = len(prefix) + 1
        return {
            k[cut:]: v for k, v in self._counters.items() if k.startswith(prefix + ".")
        }

    def snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def report(self) -> str:
        lines = [f"{k:<48s} {v:>14.3f}" for k, v in self]
        return "\n".join(lines)
