"""Cluster-wide counters and latency histograms.

A single :class:`Metrics` object hangs off the :class:`~repro.hw.cluster.Cluster`
and is incremented from every layer: NIC engines, registration paths,
caches, proxies, the MPI runtime.  Experiments read it to report e.g.
control-message counts (Fig 15's Simple-vs-Group comparison) or
registration-cache hit rates.

Besides flat counters (:meth:`Metrics.add`) the bag keeps one
:class:`~repro.obs.hist.Histogram` per observed key
(:meth:`Metrics.observe`) so latency distributions -- transfer flight
times, request post-to-completion, control-message RTTs -- come out
with p50/p95/p99 in the JSON snapshot instead of a single mean.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hist import Histogram

__all__ = ["Metrics"]


class Metrics:
    """A hierarchical counter bag: ``metrics.add("nic.host_posted")``."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)
        self._hists: dict[str, "Histogram"] = {}

    # -- counters ---------------------------------------------------------
    def add(self, key: str, amount: float = 1.0) -> None:
        self._counters[key] += amount

    def get(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters under ``prefix.`` (key is returned un-prefixed).

        An empty prefix returns every counter unchanged (there is no
        ``"."`` level to strip).
        """
        if not prefix:
            return dict(self._counters)
        cut = len(prefix) + 1
        return {
            k[cut:]: v for k, v in self._counters.items() if k.startswith(prefix + ".")
        }

    # -- histograms -------------------------------------------------------
    def observe(self, key: str, value: float) -> None:
        """Record one sample into the histogram named ``key``."""
        hist = self._hists.get(key)
        if hist is None:
            from repro.obs.hist import Histogram

            hist = self._hists[key] = Histogram()
        hist.observe(value)

    def hist(self, key: str) -> "Histogram":
        """The histogram for ``key`` (an empty one if never observed)."""
        hist = self._hists.get(key)
        if hist is None:
            from repro.obs.hist import Histogram

            hist = Histogram()
        return hist

    def hists(self) -> Iterator[tuple[str, "Histogram"]]:
        return iter(sorted(self._hists.items()))

    # -- aggregation ------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Counters only (back-compat); see ``snapshot_full`` for both."""
        return dict(self._counters)

    def snapshot_full(self) -> dict:
        """Counters plus histogram summaries, JSON-ready."""
        return {
            "counters": dict(self._counters),
            "histograms": {k: h.summary() for k, h in self.hists()},
        }

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another bag's counters and samples into this one."""
        for key, value in other._counters.items():
            self._counters[key] += value
        for key, hist in other._hists.items():
            mine = self._hists.get(key)
            if mine is None:
                from repro.obs.hist import Histogram

                mine = self._hists[key] = Histogram()
            mine.merge(hist)
        return self

    def reset(self) -> None:
        self._counters.clear()
        self._hists.clear()

    def report(self) -> str:
        lines = [f"{k:<48s} {v:>14.3f}" for k, v in self]
        for key, hist in self.hists():
            if hist:
                lines.append(
                    f"{key:<48s} n={hist.count} p50={hist.p50:.3e} "
                    f"p95={hist.p95:.3e} p99={hist.p99:.3e}"
                )
        return "\n".join(lines)
