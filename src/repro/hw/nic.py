"""ConnectX-style HCA engine model.

Each node has one HCA shared by the host CPUs and the BlueField ARM
subsystem (the paper's nodes have a separate ConnectX-6 for host traffic
and a BlueField-2 for offloaded traffic; modelling one shared engine
with per-initiator injection gaps keeps the same contention behaviour
while staying simple -- the asymmetry that matters is *who posts*, not
which physical port carries the bytes).

Cost model per message (LogGP-flavoured):

* the **initiator** pays a post overhead on its own core
  (charged by the caller, since it consumes that core's time);
* the message occupies the node's **tx port** for
  ``max(injection_gap(initiator), size / path_bandwidth)``;
* the destination's **rx port** is held for the same serialization
  window (this is what produces incast contention in dense patterns);
* ``path_bandwidth = min(src_memory_bw, wire_bw, dst_memory_bw)`` --
  a transfer touching DPU DRAM on either end is capped by it.
"""

from __future__ import annotations

from repro.hw.metrics import Metrics
from repro.hw.params import MachineParams
from repro.sim import Resource, Simulator

__all__ = ["Hca"]

#: Memory locations a DMA can touch.
MEM_KINDS = ("host", "dpu")
#: Cores that can post work requests.
INITIATOR_KINDS = ("host", "dpu")


class Hca:
    """Per-node HCA: tx/rx port resources plus cost helpers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: MachineParams,
        metrics: Metrics,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.metrics = metrics
        #: Outbound serialization engine (one QP scheduler's worth).
        self.tx = Resource(sim, capacity=1)
        #: Inbound delivery engine.
        self.rx = Resource(sim, capacity=1)
        #: Optional :class:`~repro.obs.events.EventBus`.
        self.bus = None
        # Hot-path lookup tables (params are immutable for a run): the
        # cost helpers below stay the validating API; these serve
        # serialization_time/count_post without per-message branching.
        self._gap = {
            "host": params.host_injection_gap,
            "dpu": params.dpu_injection_gap,
        }
        self._bw = {
            (s, d): min(
                self.memory_bandwidth(s),
                params.wire_bandwidth,
                self.memory_bandwidth(d),
            )
            for s in MEM_KINDS
            for d in MEM_KINDS
        }
        self._post_labels = {
            kind: (f"nic.{kind}_posted_msgs", f"nic.{kind}_posted_bytes")
            for kind in INITIATOR_KINDS
        }

    # -- cost helpers -----------------------------------------------------
    def injection_gap(self, initiator: str) -> float:
        if initiator == "host":
            return self.params.host_injection_gap
        if initiator == "dpu":
            return self.params.dpu_injection_gap
        raise ValueError(f"unknown initiator kind {initiator!r}")

    def post_overhead(self, initiator: str) -> float:
        if initiator == "host":
            return self.params.host_post_overhead
        if initiator == "dpu":
            return self.params.dpu_post_overhead
        raise ValueError(f"unknown initiator kind {initiator!r}")

    def memory_bandwidth(self, mem: str) -> float:
        if mem == "host":
            return self.params.host_memory_bandwidth
        if mem == "dpu":
            return self.params.dpu_memory_bandwidth
        raise ValueError(f"unknown memory kind {mem!r}")

    def path_bandwidth(self, src_mem: str, dst_mem: str) -> float:
        return min(
            self.memory_bandwidth(src_mem),
            self.params.wire_bandwidth,
            self.memory_bandwidth(dst_mem),
        )

    def serialization_time(
        self, size: int, initiator: str, src_mem: str, dst_mem: str
    ) -> float:
        """Port occupancy of one message."""
        try:
            gap = self._gap[initiator]
        except KeyError:
            raise ValueError(f"unknown initiator kind {initiator!r}") from None
        try:
            bw = self._bw[(src_mem, dst_mem)]
        except KeyError:
            # Re-derive through the validating helpers for the error text.
            bw = self.path_bandwidth(src_mem, dst_mem)
        return max(gap, size / bw)

    def count_post(self, initiator: str, size: int) -> None:
        try:
            msgs_label, bytes_label = self._post_labels[initiator]
        except KeyError:
            msgs_label = f"nic.{initiator}_posted_msgs"
            bytes_label = f"nic.{initiator}_posted_bytes"
        metrics = self.metrics
        metrics.add(msgs_label)
        metrics.add(bytes_label, size)
        if self.bus is not None:
            self.bus.emit("wqe", "post", f"node{self.node_id}",
                          initiator=initiator, size=size)
