"""ConnectX-style HCA engine model.

Each node has one HCA shared by the host CPUs and the BlueField ARM
subsystem (the paper's nodes have a separate ConnectX-6 for host traffic
and a BlueField-2 for offloaded traffic; modelling one shared engine
with per-initiator injection gaps keeps the same contention behaviour
while staying simple -- the asymmetry that matters is *who posts*, not
which physical port carries the bytes).

Cost model per message (LogGP-flavoured):

* the **initiator** pays a post overhead on its own core
  (charged by the caller, since it consumes that core's time);
* the message occupies the node's **tx port** for
  ``max(injection_gap(initiator), size / path_bandwidth)``;
* the destination's **rx port** is held for the same serialization
  window (this is what produces incast contention in dense patterns);
* ``path_bandwidth = min(src_memory_bw, wire_bw, dst_memory_bw)`` --
  a transfer touching DPU DRAM on either end is capped by it.
"""

from __future__ import annotations

from repro.hw.metrics import Metrics
from repro.hw.params import MachineParams
from repro.sim import Resource, Simulator

__all__ = ["Hca"]

#: Memory locations a DMA can touch.
MEM_KINDS = ("host", "dpu")
#: Cores that can post work requests.
INITIATOR_KINDS = ("host", "dpu")


class Hca:
    """Per-node HCA: tx/rx port resources plus cost helpers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: MachineParams,
        metrics: Metrics,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.metrics = metrics
        #: Outbound serialization engine (one QP scheduler's worth).
        self.tx = Resource(sim, capacity=1)
        #: Inbound delivery engine.
        self.rx = Resource(sim, capacity=1)
        #: Optional :class:`~repro.obs.events.EventBus`.
        self.bus = None

    # -- cost helpers -----------------------------------------------------
    def injection_gap(self, initiator: str) -> float:
        if initiator == "host":
            return self.params.host_injection_gap
        if initiator == "dpu":
            return self.params.dpu_injection_gap
        raise ValueError(f"unknown initiator kind {initiator!r}")

    def post_overhead(self, initiator: str) -> float:
        if initiator == "host":
            return self.params.host_post_overhead
        if initiator == "dpu":
            return self.params.dpu_post_overhead
        raise ValueError(f"unknown initiator kind {initiator!r}")

    def memory_bandwidth(self, mem: str) -> float:
        if mem == "host":
            return self.params.host_memory_bandwidth
        if mem == "dpu":
            return self.params.dpu_memory_bandwidth
        raise ValueError(f"unknown memory kind {mem!r}")

    def path_bandwidth(self, src_mem: str, dst_mem: str) -> float:
        return min(
            self.memory_bandwidth(src_mem),
            self.params.wire_bandwidth,
            self.memory_bandwidth(dst_mem),
        )

    def serialization_time(
        self, size: int, initiator: str, src_mem: str, dst_mem: str
    ) -> float:
        """Port occupancy of one message."""
        gap = self.injection_gap(initiator)
        bw = self.path_bandwidth(src_mem, dst_mem)
        return max(gap, size / bw)

    def count_post(self, initiator: str, size: int) -> None:
        self.metrics.add(f"nic.{initiator}_posted_msgs")
        self.metrics.add(f"nic.{initiator}_posted_bytes", size)
        if self.bus is not None:
            self.bus.emit("wqe", "post", f"node{self.node_id}",
                          initiator=initiator, size=size)
