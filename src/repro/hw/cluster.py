"""Cluster assembly: nodes, fabric, process contexts, shared services."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.hw.fabric import Fabric
from repro.hw.fluid import resolve_fluid
from repro.hw.topology import FatTreeTopology, resolve_topology_spec
from repro.hw.metrics import Metrics
from repro.hw.node import Node, ProcessContext
from repro.hw.params import ClusterSpec
from repro.sim import FlowEngine, RngRegistry, Simulator

__all__ = ["Cluster"]


class _LazyContexts(Sequence):
    """List-like view over a slim cluster's rank or proxy contexts.

    Indexing materializes (and caches) the requested
    :class:`~repro.hw.node.ProcessContext`; iteration materializes the
    lot, so code that genuinely needs every context still works.
    Construction is a plain call with no simulator side effects, which
    is what makes first-touch creation timing-invisible (see
    tests/test_scale_slim.py for the differential proof).
    """

    def __init__(self, cluster: "Cluster", kind: str, count: int):
        self._cluster = cluster
        self._kind = kind
        self._count = count
        self._made: dict[int, ProcessContext] = {}

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self[i] for i in range(*idx.indices(self._count))]
        if idx < 0:
            idx += self._count
        if not 0 <= idx < self._count:
            raise IndexError(f"{self._kind} context {idx} out of range")
        ctx = self._made.get(idx)
        if ctx is None:
            ctx = self._made[idx] = self._make(idx)
        return ctx

    def _make(self, idx: int) -> ProcessContext:
        cl = self._cluster
        spec = cl.spec
        if self._kind == "host":
            return ProcessContext(
                cl, "host", spec.node_of_rank(idx),
                global_id=idx, local_id=spec.local_rank(idx),
            )
        return ProcessContext(
            cl, "dpu", idx // spec.proxies_per_dpu,
            global_id=idx, local_id=idx % spec.proxies_per_dpu,
        )

    def materialized(self) -> list[ProcessContext]:
        """The contexts created so far, in id order."""
        return [self._made[i] for i in sorted(self._made)]


class Cluster:
    """The complete simulated machine.

    Construction wires up every node's HCA into one fabric and creates a
    :class:`~repro.hw.node.ProcessContext` for each host rank and each
    DPU proxy.  Higher layers (verbs, MPI, offload) attach their state to
    these contexts; the cluster itself stays protocol-agnostic.
    """

    def __init__(self, spec: ClusterSpec):
        # Ambient fat-tree overrides (repro.hw.topology.using_topology /
        # REPRO_NODES_PER_SWITCH ...) land only on fields the spec left
        # at defaults; with none set this is the spec itself, unchanged.
        spec = resolve_topology_spec(spec)
        self.spec = spec
        self.params = spec.params
        self.sim = Simulator()
        self.metrics = Metrics()
        self.rng = RngRegistry(spec.seed)
        #: Optional :class:`~repro.hw.faults.FaultPlan` (chaos testing);
        #: installed via :meth:`install_faults`, None for clean runs.
        self.fault_plan = None
        #: Optional :class:`~repro.hw.faults.LinkDegradePlan` (fluid
        #: mode only); installed via :meth:`install_link_degrade`.
        self.link_plan = None
        #: Optional :class:`~repro.obs.events.EventBus`; set by
        #: ``EventBus.attach`` (or ``repro.obs.observe_cluster``).
        self.bus = None
        #: Optional :class:`~repro.hw.trace.Tracer`; set by
        #: ``Tracer.attach``.  Declared here so the hot consume/transfer
        #: paths can test it with a plain attribute load.
        self.tracer = None
        #: When False, deliveries skip moving real bytes (perf-only
        #: sweeps whose programs never read the payload buffers set
        #: this; validation programs leave it True).  Simulated timing
        #: is computed from sizes, never from buffer contents, so this
        #: cannot change any simulated result.
        self.payloads = True

        self.nodes: list[Node] = [Node(self, n) for n in range(spec.nodes)]
        self.fabric = Fabric(self.sim, [n.hca for n in self.nodes], self.params,
                             spec=spec)

        #: Hybrid engine selection (docs/PERFORMANCE.md): explicit
        #: ``spec.fluid`` wins, ``None`` inherits the ambient default
        #: (``runall --fluid`` / ``repro.hw.fluid.using_fluid``).  Exact
        #: mode leaves ``fabric.flow_engine`` as None, so every existing
        #: code path is untouched byte for byte.
        self.fluid, self.fluid_threshold = resolve_fluid(spec)
        #: Explicit leaf/spine link graph (fluid mode with
        #: ``nodes_per_switch > 0``); None keeps flows endpoint-only.
        self.topology = None
        if self.fluid:
            engine = FlowEngine(self.sim, threshold=self.fluid_threshold)
            self.sim.attach_flow_engine(engine)
            if spec.nodes_per_switch > 0:
                rng = (self.rng.stream("ecmp-paths")
                       if spec.path_selector == "random" else None)
                self.topology = FatTreeTopology(spec, rng=rng)
            self.fabric.attach_flow_engine(engine, self.fluid_threshold,
                                           topology=self.topology)
        elif spec.chunk_bytes:
            # Chunk-granularity event pricing (exact mode only: fluid
            # routes the same bulk transfers through the FlowEngine
            # instead of chunking them).
            self.fabric.chunk_bytes = spec.chunk_bytes

        n_proxies = spec.nodes * spec.proxies_per_dpu
        #: Shared busy-time bookkeeping for slim clusters: one float64
        #: slot per process (ranks first, then proxies) instead of one
        #: boxed float per context.  ``None`` when eager -- the consume
        #: hot path then stays a plain attribute add.
        self._busy_times = (
            np.zeros(spec.world_size + n_proxies) if spec.slim else None
        )

        if spec.slim:
            #: Host rank contexts, indexed by MPI rank (lazy when slim).
            self.ranks = _LazyContexts(self, "host", spec.world_size)
            #: Proxy contexts, node-major (lazy when slim).
            self.proxies = _LazyContexts(self, "dpu", n_proxies)
        else:
            #: Flat list of host rank contexts, indexed by MPI rank.
            self.ranks: list[ProcessContext] = []
            for rank in range(spec.world_size):
                node_id = spec.node_of_rank(rank)
                ctx = ProcessContext(
                    self, "host", node_id, global_id=rank,
                    local_id=spec.local_rank(rank)
                )
                self.nodes[node_id].host_procs.append(ctx)
                self.ranks.append(ctx)

            #: Flat list of proxy contexts, node-major.
            self.proxies: list[ProcessContext] = []
            for node_id in range(spec.nodes):
                for local_idx in range(spec.proxies_per_dpu):
                    gid = node_id * spec.proxies_per_dpu + local_idx
                    ctx = ProcessContext(
                        self, "dpu", node_id, global_id=gid, local_id=local_idx
                    )
                    self.nodes[node_id].dpu_procs.append(ctx)
                    self.proxies.append(ctx)

    def _busy_slot(self, kind: str, global_id: int):
        """Index of a process's slot in the shared busy-time array.

        ``None`` when this cluster is eager (contexts then keep a plain
        float, the faster path for the consume hot loop).
        """
        if self._busy_times is None:
            return None
        return global_id if kind == "host" else self.spec.world_size + global_id

    # -- fault injection ----------------------------------------------------
    def install_faults(self, plan) -> "Cluster":
        """Attach a :class:`~repro.hw.faults.FaultPlan` to this machine.

        Binds the plan to the cluster's seeded RNG registry and hands it
        to the fabric.  Must happen before traffic flows (ideally right
        after construction); scheduled proxy kills are armed by
        ``OffloadFramework`` at Init_Offload time.
        """
        self.fault_plan = plan.bind(self)
        self.fabric.fault_plan = self.fault_plan
        if self.bus is not None:
            self.fault_plan.bus = self.bus
        return self

    def install_link_degrade(self, plan) -> "Cluster":
        """Attach a :class:`~repro.hw.faults.LinkDegradePlan`.

        Requires fluid mode (the plan drives the FlowEngine's endpoint
        capacities); binding samples any seeded windows and schedules
        every degrade/restore edge on the simulator heap.  Install
        before traffic flows, and after ``EventBus.attach`` if the
        ``link.*`` events should be observed.
        """
        if self.bus is not None:
            plan.bus = self.bus
        self.link_plan = plan.bind(self)
        return self

    # -- lookups -----------------------------------------------------------
    @property
    def world_size(self) -> int:
        return self.spec.world_size

    def rank_ctx(self, rank: int) -> ProcessContext:
        return self.ranks[rank]

    def proxy_ctx(self, node_id: int, local_idx: int) -> ProcessContext:
        return self.proxies[node_id * self.spec.proxies_per_dpu + local_idx]

    def proxy_for_rank(self, rank: int) -> ProcessContext:
        """The DPU worker that serves ``rank`` (paper's modulo mapping)."""
        node_id = self.spec.node_of_rank(rank)
        return self.proxy_ctx(node_id, self.spec.proxy_of_rank(rank))

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.spec.node_of_rank(rank_a) == self.spec.node_of_rank(rank_b)

    def run(self, until=None):
        """Convenience passthrough to the simulator."""
        return self.sim.run(until=until)
