"""Hardware models: hosts, DPUs, HCAs, fabric, memory.

This package is the substitute for the paper's physical testbed
(32 nodes, dual-socket Broadwell Xeon, BlueField-2 SmartNIC +
ConnectX-6 HCA on HDR InfiniBand).  Costs follow a LogGP-style
message-level model whose parameters live in
:class:`repro.hw.params.MachineParams`; the defaults are calibrated so
the micro-level behaviours the paper measures in its Figures 2-5
(host-vs-DPU latency, bandwidth, registration overheads, staging
penalty) hold by construction.
"""

from repro.hw.params import ClusterSpec, MachineParams
from repro.hw.memory import AddressSpace, PAGE_SIZE
from repro.hw.nic import Hca
from repro.hw.fabric import Fabric, Delivery
from repro.hw.faults import (
    OFFLOAD_CONTROL_KINDS,
    FaultPlan,
    FaultSpec,
    LinkDegradePlan,
    LinkWindow,
    ProxyKillPlan,
    RetryPolicy,
)
from repro.hw.fluid import (
    DEFAULT_FLUID_THRESHOLD,
    default_fluid,
    default_fluid_threshold,
    engine_mode,
    set_default_fluid,
    using_fluid,
)
from repro.hw.topology import (
    FatTreeTopology,
    PATH_SELECTORS,
    ecmp_hash,
    resolve_topology_spec,
    using_topology,
)
from repro.hw.node import Node, ProcessContext
from repro.hw.cluster import Cluster
from repro.hw.metrics import Metrics

__all__ = [
    "AddressSpace",
    "Cluster",
    "ClusterSpec",
    "DEFAULT_FLUID_THRESHOLD",
    "default_fluid",
    "default_fluid_threshold",
    "Delivery",
    "ecmp_hash",
    "engine_mode",
    "Fabric",
    "FatTreeTopology",
    "FaultPlan",
    "FaultSpec",
    "Hca",
    "LinkDegradePlan",
    "LinkWindow",
    "MachineParams",
    "Metrics",
    "Node",
    "OFFLOAD_CONTROL_KINDS",
    "PAGE_SIZE",
    "PATH_SELECTORS",
    "ProcessContext",
    "ProxyKillPlan",
    "RetryPolicy",
    "resolve_topology_spec",
    "set_default_fluid",
    "using_fluid",
    "using_topology",
]
