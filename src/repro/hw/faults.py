"""Seeded fault injection for the simulated fabric and proxies.

The reproduction's clean-room model assumes a perfectly reliable RDMA
fabric and immortal proxy processes; related SmartNIC studies (Wahlgren
et al., Chen et al.) flag the off-path proxy as a fragile single point
of failure.  This module supplies the *chaos* side of that story:

* :class:`FaultSpec` -- the knobs: per-message drop / duplicate /
  corrupt / delay probabilities for control messages, an error-CQE
  probability for RDMA data operations, and filters restricting which
  message kinds / initiators are eligible.
* :class:`ProxyKillPlan` -- a scheduled kill (and optional restart) of
  one DPU proxy process.
* :class:`FaultPlan` -- the seeded decision engine the
  :class:`~repro.hw.fabric.Fabric` consults per message.  All draws
  come from one named stream of :class:`~repro.sim.rng.RngRegistry`, so
  a given (cluster seed, spec) pair always injects the identical fault
  sequence -- chaos runs stay byte-for-byte reproducible.
* :class:`RetryPolicy` -- the recovery constants (timeout, exponential
  backoff, retry caps, the liveness deadline after which a host rank
  abandons its proxy and falls back to the host-MPI style path).

Fault semantics, mirroring real RC-transport behaviour:

* **Control messages** (RTS/RTR/FIN/counter writes/group packets) model
  writes into remote inboxes; a *drop* silently loses one, a *corrupt*
  is detected by the receiver's ICRC check and discarded (same visible
  effect, logged separately), a *dup* delivers it twice, a *delay* adds
  an arbitrary extra in-flight latency.
* **Data transfers** never lose bytes silently -- the reliable
  transport retransmits at packet level -- but can complete with an
  **error CQE** (``Delivery.status == "error"``): no data lands and the
  initiator must re-post.

With no plan installed (``cluster.fault_plan is None``) every hook in
the stack takes its original path: fault-free runs are bit-identical to
a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import Cluster

__all__ = [
    "OFFLOAD_CONTROL_KINDS",
    "FaultSpec",
    "ProxyKillPlan",
    "RetryPolicy",
    "FaultPlan",
    "LinkWindow",
    "LinkDegradePlan",
]

#: The offload framework's control-message kinds; a FaultSpec targeting
#: exactly these shakes the offload stack while leaving the host-MPI
#: baseline's (kind="ctrl") traffic untouched.
OFFLOAD_CONTROL_KINDS = frozenset({
    "rts", "rtr", "fin", "counter", "counter_probe",
    "group_plan", "group_call", "gdesc", "gdesc_req", "plan_nack",
    "fb_rts", "fb_fin",
})


@dataclass(frozen=True)
class FaultSpec:
    """Probability knobs of one fault campaign (all independent draws)."""

    #: Probability one eligible control message is silently lost.
    drop_prob: float = 0.0
    #: Probability one eligible control message arrives twice.
    dup_prob: float = 0.0
    #: Probability one eligible control message is corrupted in flight
    #: (detected by the receiver's ICRC and discarded -- a logged drop).
    corrupt_prob: float = 0.0
    #: Probability an extra in-flight delay is added (control and data).
    delay_prob: float = 0.0
    #: Extra delay is uniform in (0, delay_max] seconds.
    delay_max: float = 25e-6
    #: Probability an RDMA data operation completes with an error CQE.
    error_cqe_prob: float = 0.0
    #: Probability a bulk transfer riding the fluid FlowEngine suffers a
    #: mid-flight link glitch: the flow's progress up to the glitch point
    #: is kept, the remainder is retransmitted as a fresh flow after an
    #: exponential backoff (see docs/FAULTS.md).  Flow fates draw from
    #: their own RNG stream, so exact-mode runs never consume them.
    flow_drop_prob: float = 0.0
    #: Which control-message kinds are eligible (None = all kinds).
    control_kinds: Optional[frozenset] = None
    #: Which initiators' data operations can take an error CQE.
    error_initiators: tuple = ("dpu", "host")

    def __post_init__(self):
        for name in ("drop_prob", "dup_prob", "corrupt_prob", "delay_prob",
                     "error_cqe_prob", "flow_drop_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p!r} is not a probability")
        if self.delay_max < 0:
            raise ValueError("delay_max must be >= 0")


@dataclass(frozen=True)
class ProxyKillPlan:
    """Kill proxy ``proxy_gid`` at simulated time ``at``.

    ``restart_after`` seconds later the process is relaunched (its DPU
    DRAM state -- plan cache, counter board, sequence counters --
    survives; process-local matching queues do not).  ``None`` means the
    proxy stays dead, which exercises the host fallback path.
    """

    proxy_gid: int
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery constants of the offload layer (documented in docs/FAULTS.md)."""

    #: Initial host-side wait timeout before the first retransmit.
    timeout: float = 50e-6
    #: Exponential backoff factor applied per retransmit.
    backoff: float = 2.0
    #: Ceiling on the per-attempt timeout.
    max_timeout: float = 800e-6
    #: Retransmit attempts before a Wait gives up loudly.
    max_attempts: int = 30
    #: Liveness deadline: a basic-primitive Wait that has seen no
    #: completion for this long declares its proxy dead and falls back
    #: to the host-driven path (logged, not fatal).
    fallback_after: float = 2e-3
    #: Proxy-side re-posts of an RDMA op that completed with an error CQE.
    rdma_retry_limit: int = 12
    #: Backoff between RDMA re-posts.
    rdma_backoff: float = 20e-6
    #: Proxy-side timeout before probing a peer for a lost counter write.
    counter_probe_after: float = 80e-6


class FaultPlan:
    """Deterministic per-message fault decisions plus an audit trace.

    Construct with a :class:`FaultSpec` and optional
    :class:`ProxyKillPlan` list, then install on a cluster via
    :meth:`repro.hw.cluster.Cluster.install_faults` (which binds the
    plan to the cluster's seeded RNG registry and hands it to the
    fabric).  ``seed`` overrides the cluster seed for the fault stream.
    """

    def __init__(self, spec: FaultSpec = FaultSpec(),
                 kills: tuple = (), seed: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None):
        self.spec = spec
        self.kills = tuple(kills)
        self.seed = seed
        #: Recovery constants the *fabric* uses for flow-level
        #: retransmits (the offload layer keeps its own policy).
        self.retry = retry if retry is not None else RetryPolicy()
        self.sim = None
        self._rng = None
        # Flow fates draw from a *separate* stream: the fluid engine's
        # decisions must never advance the event path's "faults" stream,
        # so an exact-mode run with the same plan armed stays
        # bit-identical whatever the flow knobs say.
        self._flow_rng = None
        #: Optional :class:`~repro.obs.events.EventBus` (set when a bus
        #: is attached to the cluster); every audit record doubles as a
        #: ``fault.inject`` event.
        self.bus = None
        #: (time, category, detail) audit records, in decision order.
        self.events: list[tuple] = []
        self.stats: dict[str, int] = {
            "drops": 0, "dups": 0, "corruptions": 0, "delays": 0,
            "error_cqes": 0, "kills": 0, "restarts": 0,
            "flow_drops": 0, "flow_retries": 0,
        }

    # -- wiring ---------------------------------------------------------
    def bind(self, cluster: "Cluster") -> "FaultPlan":
        self.sim = cluster.sim
        registry = RngRegistry(self.seed) if self.seed is not None else cluster.rng
        self._rng = registry.stream("faults")
        self._flow_rng = registry.stream("flow-faults")
        return self

    def _require_bound(self):
        if self._rng is None:
            raise RuntimeError("FaultPlan is not bound to a cluster "
                               "(use cluster.install_faults(plan))")

    # -- audit ----------------------------------------------------------
    def record(self, category: str, detail: str) -> None:
        now = 0.0 if self.sim is None else self.sim.now
        self.events.append((round(now, 12), category, detail))
        if self.bus is not None:
            self.bus.emit("fault", "inject", "fabric",
                          category=category, detail=detail)

    def trace(self) -> tuple:
        """Immutable audit trail; byte-identical across reruns of one seed."""
        return tuple(self.events)

    # -- decisions (called by the fabric) --------------------------------
    def _eligible_control(self, kind: str) -> bool:
        allowed = self.spec.control_kinds
        return allowed is None or kind in allowed

    def control_fate(self, kind: str, src_node: int, dst_node: int):
        """Fate of one control message: ``(action, extra_delay)``.

        ``action`` is one of ``"deliver" | "drop" | "corrupt" | "dup"``;
        ``extra_delay`` is added to the in-flight latency (0.0 normally).
        """
        self._require_bound()
        spec = self.spec
        if not self._eligible_control(kind):
            return "deliver", 0.0
        where = f"{kind} n{src_node}->n{dst_node}"
        action = "deliver"
        r = float(self._rng.random())
        if r < spec.drop_prob:
            action = "drop"
            self.stats["drops"] += 1
            self.record("drop", where)
        elif r < spec.drop_prob + spec.corrupt_prob:
            action = "corrupt"
            self.stats["corruptions"] += 1
            self.record("corrupt", where)
        elif r < spec.drop_prob + spec.corrupt_prob + spec.dup_prob:
            action = "dup"
            self.stats["dups"] += 1
            self.record("dup", where)
        extra = 0.0
        if action in ("deliver", "dup") and spec.delay_prob > 0.0:
            if float(self._rng.random()) < spec.delay_prob:
                extra = float(self._rng.random()) * spec.delay_max
                self.stats["delays"] += 1
                self.record("delay", f"{where} +{extra:.3e}s")
        return action, extra

    def transfer_fate(self, kind: str, initiator: str,
                      src_node: int, dst_node: int):
        """Fate of one RDMA data operation: ``(status, extra_delay)``.

        ``status`` is ``"ok"`` or ``"error"`` (an error CQE: the
        operation completes without moving any bytes).
        """
        self._require_bound()
        spec = self.spec
        status = "ok"
        where = f"{kind} n{src_node}->n{dst_node} by {initiator}"
        if spec.error_cqe_prob > 0.0 and initiator in spec.error_initiators:
            if float(self._rng.random()) < spec.error_cqe_prob:
                status = "error"
                self.stats["error_cqes"] += 1
                self.record("error_cqe", where)
        extra = 0.0
        if status == "ok" and spec.delay_prob > 0.0:
            if float(self._rng.random()) < spec.delay_prob:
                extra = float(self._rng.random()) * spec.delay_max
                self.stats["delays"] += 1
                self.record("delay", f"{where} +{extra:.3e}s")
        return status, extra

    def flow_fate(self, kind: str, src_node: int, dst_node: int,
                  attempt: int):
        """Fate of one fluid-engine flow (admission): ``(action, frac)``.

        ``action`` is ``"ok"`` or ``"drop"``; on a drop, ``frac`` in
        [0.05, 0.95] is the fraction of the flow's work that completes
        before the mid-flight glitch (the fabric retransmits the rest as
        a fresh flow after an exponential backoff).  Draws come from the
        dedicated ``flow-faults`` stream only, so consulting this never
        perturbs the event path's fault sequence.
        """
        self._require_bound()
        if self.spec.flow_drop_prob <= 0.0:
            return "ok", 1.0
        rng = self._flow_rng
        if float(rng.random()) >= self.spec.flow_drop_prob:
            return "ok", 1.0
        # Clamp away the degenerate edges: a zero-work glitch flow is
        # unrepresentable and a ~1.0 fraction is an invisible no-op.
        frac = 0.05 + 0.9 * float(rng.random())
        self.stats["flow_drops"] += 1
        self.record(
            "flow_drop",
            f"{kind} n{src_node}->n{dst_node} attempt={attempt} "
            f"frac={frac:.3f}",
        )
        return "drop", frac

    def note_flow_retry(self, kind: str, src_node: int, dst_node: int,
                        attempt: int, backoff: float) -> None:
        """Audit one fabric-level flow retransmit (no RNG draw)."""
        self.stats["flow_retries"] += 1
        self.record(
            "flow_retry",
            f"{kind} n{src_node}->n{dst_node} attempt={attempt} "
            f"backoff={backoff:.3e}s",
        )


@dataclass(frozen=True)
class LinkWindow:
    """One link-degradation window on a fabric link.

    Target either a node endpoint (``node`` + ``direction``, the
    original form) or -- with a fat-tree topology attached -- any
    explicit link by its key (``link=("up", leaf, spine)`` etc.; see
    ``repro.hw.topology``).  ``factor`` scales the link's *base*
    capacity for the window's duration: 0.5 halves the achievable rate
    of every flow crossing the link, 0.0 is a *flap* (the link is down;
    flows stall and resume at restore).  Windows on the same link may
    overlap -- the effective capacity is ``base * min(open factors)``.
    """

    node: int = -1
    direction: str = "tx"  # "tx" or "rx"
    start: float = 0.0
    duration: float = 0.0
    factor: float = 0.0
    #: Explicit link key; when set, ``node``/``direction`` are ignored.
    link: Optional[tuple] = None

    def __post_init__(self):
        if self.link is not None:
            if not isinstance(self.link, tuple) or len(self.link) < 2:
                raise ValueError(
                    f"link must be a link-key tuple like ('up', leaf, "
                    f"spine), got {self.link!r}"
                )
        else:
            if self.node < 0:
                raise ValueError("window needs a node (or an explicit link)")
            if self.direction not in ("tx", "rx"):
                raise ValueError(f"direction must be 'tx' or 'rx', "
                                 f"got {self.direction!r}")
        if self.start < 0.0 or self.duration <= 0.0:
            raise ValueError("window start must be >= 0 and duration > 0")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError(f"degrade factor must be in [0, 1), "
                             f"got {self.factor!r}")

    @property
    def key(self) -> tuple:
        """The engine link key this window degrades."""
        if self.link is not None:
            return self.link
        return (self.direction, self.node)


class LinkDegradePlan:
    """Seeded schedule of link degradations on the fluid flow path.

    Either pass explicit :class:`LinkWindow` tuples, or sampling knobs
    (``count`` windows uniform over ``[0, horizon)``); sampled windows
    are drawn at install time from the cluster registry's dedicated
    ``link-degrade`` stream (or a private registry when ``seed`` is
    given), so a (cluster seed, plan) pair always degrades the same
    links at the same instants.

    The plan drives :meth:`FlowEngine.set_endpoint_capacity` at each
    window edge -- the engine settles in-flight progress and re-solves
    ``fair_shares`` there -- and emits ``link.degrade``/``link.restore``
    obs events.  Install via
    :meth:`repro.hw.cluster.Cluster.install_link_degrade`; the cluster
    must be in fluid mode (link capacity is a flow-path concept; the
    event-exact engine models ports as busy/idle only).
    """

    def __init__(self, windows: tuple = (), *, count: int = 0,
                 horizon: float = 0.0,
                 duration_range: tuple = (20e-6, 200e-6),
                 factor_range: tuple = (0.25, 0.75),
                 flap_prob: float = 0.25,
                 seed: Optional[int] = None):
        if count < 0:
            raise ValueError("count must be >= 0")
        if count and horizon <= 0.0:
            raise ValueError("sampling windows requires a horizon > 0")
        self.windows = tuple(windows)
        self.count = count
        self.horizon = horizon
        self.duration_range = duration_range
        self.factor_range = factor_range
        self.flap_prob = flap_prob
        self.seed = seed
        self.sim = None
        self.bus = None
        self.stats: dict[str, int] = {"degrades": 0, "restores": 0}
        #: (time, category, detail) audit records, in schedule order.
        self.events: list[tuple] = []
        self._engine = None
        self._metrics = None
        # Effective capacity bookkeeping: open window factors per
        # endpoint key (overlaps take the min).
        self._open: dict[tuple, list] = {}

    # -- wiring ---------------------------------------------------------
    def bind(self, cluster: "Cluster") -> "LinkDegradePlan":
        engine = cluster.fabric.flow_engine
        if engine is None:
            raise ValueError(
                "LinkDegradePlan needs a fluid cluster (flow engine "
                "attached); link capacity does not exist on the "
                "event-exact path"
            )
        self.sim = cluster.sim
        self._engine = engine
        self._metrics = cluster.metrics
        if self.bus is None:
            self.bus = cluster.bus
        registry = RngRegistry(self.seed) if self.seed is not None else cluster.rng
        rng = registry.stream("link-degrade")
        # With a multi-leaf fat-tree attached, sampled windows also land
        # on spine up/down links (uniform over every link in the graph);
        # endpoint-only clusters keep the original draw sequence, so
        # existing seeded schedules replay byte-identically.
        topo = getattr(cluster, "topology", None)
        spine_links: list[tuple] = []
        if topo is not None and topo.n_leaves > 1:
            for leaf in range(topo.n_leaves):
                for s in range(topo.spine_count):
                    spine_links.append(("up", leaf, s))
                    spine_links.append(("down", s, leaf))
        windows = list(self.windows)
        for _ in range(self.count):
            if spine_links:
                n_ep = 2 * cluster.spec.nodes
                idx = int(rng.integers(0, n_ep + len(spine_links)))
                link = None if idx < n_ep else spine_links[idx - n_ep]
                node = idx // 2 if idx < n_ep else -1
                direction = ("tx" if idx % 2 == 0 else "rx") \
                    if idx < n_ep else "tx"
            else:
                link = None
                node = int(rng.integers(0, cluster.spec.nodes))
                direction = "tx" if float(rng.random()) < 0.5 else "rx"
            start = float(rng.random()) * self.horizon
            lo, hi = self.duration_range
            duration = lo + float(rng.random()) * max(0.0, hi - lo)
            if float(rng.random()) < self.flap_prob:
                factor = 0.0
            else:
                flo, fhi = self.factor_range
                factor = flo + float(rng.random()) * max(0.0, fhi - flo)
            windows.append(LinkWindow(node, direction, start, duration,
                                      factor, link=link))
        windows.sort(key=lambda w: (w.start, w.node, w.direction,
                                    () if w.link is None else w.link))
        self.windows = tuple(windows)
        for wid, w in enumerate(self.windows):
            self._arm_window(wid, w)
        return self

    def _arm_window(self, wid: int, w: LinkWindow) -> None:
        sim = self.sim
        begin = sim.event()
        begin._ok = True
        begin._value = None
        begin.callbacks.append(lambda _ev, wid=wid, w=w: self._degrade(wid, w))
        sim.schedule_at(begin, w.start)
        end = sim.event()
        end._ok = True
        end._value = None
        end.callbacks.append(lambda _ev, wid=wid, w=w: self._restore(wid, w))
        sim.schedule_at(end, w.start + w.duration)

    def _effective(self, key: tuple) -> float:
        factors = self._open.get(key)
        return min(factors) if factors else 1.0

    def _apply(self, key: tuple) -> None:
        # The engine stores absolute capacities, so degrade factors
        # compose with the link's registered base (a half-capacity spine
        # uplink degraded to 0.5 runs at 0.25 port-shares); with no open
        # window this restores the base exactly, clearing the override.
        base = self._engine.base_capacity(key)
        self._engine.set_endpoint_capacity(key, base * self._effective(key))

    @staticmethod
    def _describe(w: LinkWindow) -> str:
        if w.link is not None:
            return " ".join(str(part) for part in w.link)
        return f"{w.direction} n{w.node}"

    def _degrade(self, wid: int, w: LinkWindow) -> None:
        key = w.key
        self._open.setdefault(key, []).append(w.factor)
        self._apply(key)
        self.stats["degrades"] += 1
        self._metrics.add("fabric.link_degrades")
        now = self.sim.now
        self.events.append((round(now, 12), "degrade",
                            f"{self._describe(w)} factor={w.factor:.3f}"))
        if self.bus is not None:
            if w.link is not None:
                self.bus.emit("link", "degrade", "fabric", wid=wid,
                              link=str(key), factor=w.factor)
            else:
                self.bus.emit("link", "degrade", f"node{w.node}", wid=wid,
                              node=w.node, direction=w.direction,
                              factor=w.factor)

    def _restore(self, wid: int, w: LinkWindow) -> None:
        key = w.key
        factors = self._open.get(key)
        if factors is not None:
            factors.remove(w.factor)
            if not factors:
                del self._open[key]
        self._apply(key)
        self.stats["restores"] += 1
        now = self.sim.now
        self.events.append((round(now, 12), "restore", self._describe(w)))
        if self.bus is not None:
            if w.link is not None:
                self.bus.emit("link", "restore", "fabric", wid=wid,
                              link=str(key))
            else:
                self.bus.emit("link", "restore", f"node{w.node}", wid=wid,
                              node=w.node, direction=w.direction)

    def trace(self) -> tuple:
        """Immutable audit trail; byte-identical across reruns of one seed."""
        return tuple(self.events)
