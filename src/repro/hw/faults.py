"""Seeded fault injection for the simulated fabric and proxies.

The reproduction's clean-room model assumes a perfectly reliable RDMA
fabric and immortal proxy processes; related SmartNIC studies (Wahlgren
et al., Chen et al.) flag the off-path proxy as a fragile single point
of failure.  This module supplies the *chaos* side of that story:

* :class:`FaultSpec` -- the knobs: per-message drop / duplicate /
  corrupt / delay probabilities for control messages, an error-CQE
  probability for RDMA data operations, and filters restricting which
  message kinds / initiators are eligible.
* :class:`ProxyKillPlan` -- a scheduled kill (and optional restart) of
  one DPU proxy process.
* :class:`FaultPlan` -- the seeded decision engine the
  :class:`~repro.hw.fabric.Fabric` consults per message.  All draws
  come from one named stream of :class:`~repro.sim.rng.RngRegistry`, so
  a given (cluster seed, spec) pair always injects the identical fault
  sequence -- chaos runs stay byte-for-byte reproducible.
* :class:`RetryPolicy` -- the recovery constants (timeout, exponential
  backoff, retry caps, the liveness deadline after which a host rank
  abandons its proxy and falls back to the host-MPI style path).

Fault semantics, mirroring real RC-transport behaviour:

* **Control messages** (RTS/RTR/FIN/counter writes/group packets) model
  writes into remote inboxes; a *drop* silently loses one, a *corrupt*
  is detected by the receiver's ICRC check and discarded (same visible
  effect, logged separately), a *dup* delivers it twice, a *delay* adds
  an arbitrary extra in-flight latency.
* **Data transfers** never lose bytes silently -- the reliable
  transport retransmits at packet level -- but can complete with an
  **error CQE** (``Delivery.status == "error"``): no data lands and the
  initiator must re-post.

With no plan installed (``cluster.fault_plan is None``) every hook in
the stack takes its original path: fault-free runs are bit-identical to
a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import Cluster

__all__ = [
    "OFFLOAD_CONTROL_KINDS",
    "FaultSpec",
    "ProxyKillPlan",
    "RetryPolicy",
    "FaultPlan",
]

#: The offload framework's control-message kinds; a FaultSpec targeting
#: exactly these shakes the offload stack while leaving the host-MPI
#: baseline's (kind="ctrl") traffic untouched.
OFFLOAD_CONTROL_KINDS = frozenset({
    "rts", "rtr", "fin", "counter", "counter_probe",
    "group_plan", "group_call", "gdesc", "gdesc_req", "plan_nack",
    "fb_rts", "fb_fin",
})


@dataclass(frozen=True)
class FaultSpec:
    """Probability knobs of one fault campaign (all independent draws)."""

    #: Probability one eligible control message is silently lost.
    drop_prob: float = 0.0
    #: Probability one eligible control message arrives twice.
    dup_prob: float = 0.0
    #: Probability one eligible control message is corrupted in flight
    #: (detected by the receiver's ICRC and discarded -- a logged drop).
    corrupt_prob: float = 0.0
    #: Probability an extra in-flight delay is added (control and data).
    delay_prob: float = 0.0
    #: Extra delay is uniform in (0, delay_max] seconds.
    delay_max: float = 25e-6
    #: Probability an RDMA data operation completes with an error CQE.
    error_cqe_prob: float = 0.0
    #: Which control-message kinds are eligible (None = all kinds).
    control_kinds: Optional[frozenset] = None
    #: Which initiators' data operations can take an error CQE.
    error_initiators: tuple = ("dpu", "host")

    def __post_init__(self):
        for name in ("drop_prob", "dup_prob", "corrupt_prob", "delay_prob",
                     "error_cqe_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p!r} is not a probability")
        if self.delay_max < 0:
            raise ValueError("delay_max must be >= 0")


@dataclass(frozen=True)
class ProxyKillPlan:
    """Kill proxy ``proxy_gid`` at simulated time ``at``.

    ``restart_after`` seconds later the process is relaunched (its DPU
    DRAM state -- plan cache, counter board, sequence counters --
    survives; process-local matching queues do not).  ``None`` means the
    proxy stays dead, which exercises the host fallback path.
    """

    proxy_gid: int
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery constants of the offload layer (documented in docs/FAULTS.md)."""

    #: Initial host-side wait timeout before the first retransmit.
    timeout: float = 50e-6
    #: Exponential backoff factor applied per retransmit.
    backoff: float = 2.0
    #: Ceiling on the per-attempt timeout.
    max_timeout: float = 800e-6
    #: Retransmit attempts before a Wait gives up loudly.
    max_attempts: int = 30
    #: Liveness deadline: a basic-primitive Wait that has seen no
    #: completion for this long declares its proxy dead and falls back
    #: to the host-driven path (logged, not fatal).
    fallback_after: float = 2e-3
    #: Proxy-side re-posts of an RDMA op that completed with an error CQE.
    rdma_retry_limit: int = 12
    #: Backoff between RDMA re-posts.
    rdma_backoff: float = 20e-6
    #: Proxy-side timeout before probing a peer for a lost counter write.
    counter_probe_after: float = 80e-6


class FaultPlan:
    """Deterministic per-message fault decisions plus an audit trace.

    Construct with a :class:`FaultSpec` and optional
    :class:`ProxyKillPlan` list, then install on a cluster via
    :meth:`repro.hw.cluster.Cluster.install_faults` (which binds the
    plan to the cluster's seeded RNG registry and hands it to the
    fabric).  ``seed`` overrides the cluster seed for the fault stream.
    """

    def __init__(self, spec: FaultSpec = FaultSpec(),
                 kills: tuple = (), seed: Optional[int] = None):
        self.spec = spec
        self.kills = tuple(kills)
        self.seed = seed
        self.sim = None
        self._rng = None
        #: Optional :class:`~repro.obs.events.EventBus` (set when a bus
        #: is attached to the cluster); every audit record doubles as a
        #: ``fault.inject`` event.
        self.bus = None
        #: (time, category, detail) audit records, in decision order.
        self.events: list[tuple] = []
        self.stats: dict[str, int] = {
            "drops": 0, "dups": 0, "corruptions": 0, "delays": 0,
            "error_cqes": 0, "kills": 0, "restarts": 0,
        }

    # -- wiring ---------------------------------------------------------
    def bind(self, cluster: "Cluster") -> "FaultPlan":
        self.sim = cluster.sim
        registry = RngRegistry(self.seed) if self.seed is not None else cluster.rng
        self._rng = registry.stream("faults")
        return self

    def _require_bound(self):
        if self._rng is None:
            raise RuntimeError("FaultPlan is not bound to a cluster "
                               "(use cluster.install_faults(plan))")

    # -- audit ----------------------------------------------------------
    def record(self, category: str, detail: str) -> None:
        now = 0.0 if self.sim is None else self.sim.now
        self.events.append((round(now, 12), category, detail))
        if self.bus is not None:
            self.bus.emit("fault", "inject", "fabric",
                          category=category, detail=detail)

    def trace(self) -> tuple:
        """Immutable audit trail; byte-identical across reruns of one seed."""
        return tuple(self.events)

    # -- decisions (called by the fabric) --------------------------------
    def _eligible_control(self, kind: str) -> bool:
        allowed = self.spec.control_kinds
        return allowed is None or kind in allowed

    def control_fate(self, kind: str, src_node: int, dst_node: int):
        """Fate of one control message: ``(action, extra_delay)``.

        ``action`` is one of ``"deliver" | "drop" | "corrupt" | "dup"``;
        ``extra_delay`` is added to the in-flight latency (0.0 normally).
        """
        self._require_bound()
        spec = self.spec
        if not self._eligible_control(kind):
            return "deliver", 0.0
        where = f"{kind} n{src_node}->n{dst_node}"
        action = "deliver"
        r = float(self._rng.random())
        if r < spec.drop_prob:
            action = "drop"
            self.stats["drops"] += 1
            self.record("drop", where)
        elif r < spec.drop_prob + spec.corrupt_prob:
            action = "corrupt"
            self.stats["corruptions"] += 1
            self.record("corrupt", where)
        elif r < spec.drop_prob + spec.corrupt_prob + spec.dup_prob:
            action = "dup"
            self.stats["dups"] += 1
            self.record("dup", where)
        extra = 0.0
        if action in ("deliver", "dup") and spec.delay_prob > 0.0:
            if float(self._rng.random()) < spec.delay_prob:
                extra = float(self._rng.random()) * spec.delay_max
                self.stats["delays"] += 1
                self.record("delay", f"{where} +{extra:.3e}s")
        return action, extra

    def transfer_fate(self, kind: str, initiator: str,
                      src_node: int, dst_node: int):
        """Fate of one RDMA data operation: ``(status, extra_delay)``.

        ``status`` is ``"ok"`` or ``"error"`` (an error CQE: the
        operation completes without moving any bytes).
        """
        self._require_bound()
        spec = self.spec
        status = "ok"
        where = f"{kind} n{src_node}->n{dst_node} by {initiator}"
        if spec.error_cqe_prob > 0.0 and initiator in spec.error_initiators:
            if float(self._rng.random()) < spec.error_cqe_prob:
                status = "error"
                self.stats["error_cqes"] += 1
                self.record("error_cqe", where)
        extra = 0.0
        if status == "ok" and spec.delay_prob > 0.0:
            if float(self._rng.random()) < spec.delay_prob:
                extra = float(self._rng.random()) * spec.delay_max
                self.stats["delays"] += 1
                self.record("delay", f"{where} +{extra:.3e}s")
        return status, extra
