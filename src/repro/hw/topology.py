"""Explicit fat-tree link graph for the fluid contention fabric.

:class:`~repro.hw.params.ClusterSpec`'s leaf/spine fields describe the
*latency* topology (how many switch hops a message pays).  This module
materializes the matching *capacity* topology: a two-level fat-tree
link graph whose links the fluid engine water-fills max-min fairly
(see :func:`repro.sim.flows.fair_shares_links`).

Links
-----
Every link is identified by a small hashable key, interned to a dense
id by the :class:`~repro.sim.flows.FlowEngine`:

``("tx", node)``
    the node's NIC -> leaf uplink (capacity 1.0 port-share).  Same key
    the endpoint-only engine has always used for a flow's source.
``("rx", node)``
    the leaf -> NIC downlink (capacity 1.0).  Same key as the
    endpoint-only destination.
``("up", leaf, spine)`` / ``("down", spine, leaf)``
    one of ``spine_count`` equal-cost leaf<->spine links, capacity
    ``uplink_capacity`` port-shares each (>1.0 models oversubscribed
    hosts on a fat uplink; <1.0 models a tapered/oversubscribed tree).

Paths
-----
A flow's path is the ordered tuple of link keys it crosses:

* same leaf (or single-switch): ``(tx, rx)`` -- the degenerate two-link
  path, which keeps the engine on its endpoint-only fast solver, bit
  for bit identical to the pre-topology behaviour.
* cross-leaf: ``(tx, up, down, rx)`` through one spine chosen by the
  cluster's *path selector*.

Path selectors
--------------
``"ecmp"`` (default)
    deterministic hash of the (src, dst) node pair -- an arithmetic
    splitmix-style mix, **not** Python's ``hash()``, so the choice is
    identical across seeds, interpreter restarts and
    ``PYTHONHASHSEED``.  All flows of a pair share a path, like a real
    switch hashing a 5-tuple.
``"random"``
    per-flow uniform choice from the cluster's seeded
    ``"ecmp-paths"`` stream (reproducible per seed, varies per flow).
``"least"``
    per-flow least-loaded choice: the spine whose up+down links carry
    the fewest in-flight flows right now (ties -> lowest spine id).

Ambient overrides
-----------------
Like ``repro.hw.fluid``, the topology can be switched on ambiently for
a whole campaign without touching any committed figure config:
``using_topology(nodes_per_switch=..., spine_count=...)`` (or the
``REPRO_NODES_PER_SWITCH`` / ``REPRO_SPINE_COUNT`` /
``REPRO_PATH_SELECTOR`` / ``REPRO_UPLINK_CAPACITY`` environment
variables) apply to every spec whose own fields were left at their
defaults.  With no override set, specs pass through untouched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Optional

__all__ = [
    "FatTreeTopology",
    "PATH_SELECTORS",
    "ecmp_hash",
    "make_selector",
    "resolve_topology_spec",
    "using_topology",
]

_MASK64 = (1 << 64) - 1


def ecmp_hash(src: int, dst: int) -> int:
    """Deterministic 64-bit mix of a (src, dst) pair.

    A splitmix64-style finalizer over the pair: stable across
    processes, seeds and ``PYTHONHASHSEED`` (unlike ``hash()``), cheap,
    and well-spread for the small consecutive integers node ids are.
    """
    h = (src * 0x9E3779B97F4A7C15 + dst * 0xBF58476D1CE4E5B9 + 0x2545F4914F6CDD1D) & _MASK64
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _MASK64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return h


class FatTreeTopology:
    """Two-level leaf/spine link graph over a :class:`ClusterSpec`.

    Pure structure + path selection; owns no simulation state.  The
    cluster registers the graph's non-unit link capacities with the
    flow engine (:meth:`register_links`) and the fabric asks
    :meth:`path` for each bulk flow's link list.
    """

    def __init__(self, spec, *, selector: Optional[str] = None, rng=None):
        self.spec = spec
        nps = spec.nodes_per_switch
        if nps <= 0:
            nps = spec.nodes  # single-switch: one leaf covering every node
        self.nodes_per_switch = nps
        self.n_leaves = (spec.nodes + nps - 1) // nps
        self.spine_count = max(1, getattr(spec, "spine_count", 1))
        self.uplink_capacity = float(getattr(spec, "uplink_capacity", 1.0))
        name = selector if selector is not None \
            else getattr(spec, "path_selector", "ecmp")
        self.selector_name = name
        self._engine = None
        self._choose = make_selector(name, self, rng=rng)

    # -- structure -------------------------------------------------------
    def leaf_of_node(self, node: int) -> int:
        return node // self.nodes_per_switch

    def links(self) -> list[tuple[tuple, float]]:
        """Every (link key, base capacity) pair in the graph."""
        out: list[tuple[tuple, float]] = []
        for n in range(self.spec.nodes):
            out.append((("tx", n), 1.0))
            out.append((("rx", n), 1.0))
        if self.n_leaves > 1:
            for leaf in range(self.n_leaves):
                for s in range(self.spine_count):
                    out.append((("up", leaf, s), self.uplink_capacity))
                    out.append((("down", s, leaf), self.uplink_capacity))
        return out

    def register_links(self, engine) -> None:
        """Declare the graph's link capacities to a flow engine.

        Only non-unit capacities are registered (unit links are the
        engine's default), so a default fat-tree leaves the solver's
        all-ones fast path untouched.
        """
        self._engine = engine
        for key, cap in self.links():
            if cap != 1.0:
                engine.register_link(key, cap)

    # -- path selection --------------------------------------------------
    def path(self, src_node: int, dst_node: int) -> tuple[tuple, ...]:
        """Ordered link keys a (src -> dst) bulk flow crosses."""
        src_leaf = self.leaf_of_node(src_node)
        dst_leaf = self.leaf_of_node(dst_node)
        if src_leaf == dst_leaf:
            return (("tx", src_node), ("rx", dst_node))
        spine = self._choose(src_node, dst_node)
        return (
            ("tx", src_node),
            ("up", src_leaf, spine),
            ("down", spine, dst_leaf),
            ("rx", dst_node),
        )

    def spine_load(self, src_leaf: int, dst_leaf: int, spine: int) -> int:
        """In-flight flows on a candidate spine's up+down link pair."""
        eng = self._engine
        if eng is None:
            return 0
        return (eng.link_load(("up", src_leaf, spine))
                + eng.link_load(("down", spine, dst_leaf)))


def _ecmp_selector(topo: "FatTreeTopology", rng) -> Callable[[int, int], int]:
    k = topo.spine_count

    def choose(src: int, dst: int) -> int:
        return ecmp_hash(src, dst) % k

    return choose


def _random_selector(topo: "FatTreeTopology", rng) -> Callable[[int, int], int]:
    if rng is None:
        raise ValueError('path_selector="random" needs a seeded rng stream')
    k = topo.spine_count

    def choose(src: int, dst: int) -> int:
        return int(rng.integers(0, k))

    return choose


def _least_loaded_selector(topo: "FatTreeTopology", rng) -> Callable[[int, int], int]:
    k = topo.spine_count

    def choose(src: int, dst: int) -> int:
        src_leaf = topo.leaf_of_node(src)
        dst_leaf = topo.leaf_of_node(dst)
        best, best_load = 0, None
        for s in range(k):
            load = topo.spine_load(src_leaf, dst_leaf, s)
            if best_load is None or load < best_load:
                best, best_load = s, load
        return best

    return choose


#: Pluggable path-selector registry: name -> factory(topology, rng).
PATH_SELECTORS: dict[str, Callable] = {
    "ecmp": _ecmp_selector,
    "random": _random_selector,
    "least": _least_loaded_selector,
}


def make_selector(name: str, topo: "FatTreeTopology", *, rng=None):
    """Build a ``choose(src_node, dst_node) -> spine`` callable."""
    try:
        factory = PATH_SELECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown path selector {name!r}; "
            f"known: {sorted(PATH_SELECTORS)}"
        ) from None
    return factory(topo, rng)


# -- ambient overrides ---------------------------------------------------
_ENV_NPS = "REPRO_NODES_PER_SWITCH"
_ENV_SPINES = "REPRO_SPINE_COUNT"
_ENV_SELECTOR = "REPRO_PATH_SELECTOR"
_ENV_UPLINK = "REPRO_UPLINK_CAPACITY"


def resolve_topology_spec(spec):
    """Apply ambient topology overrides to a spec's *defaulted* fields.

    Each override only lands on a field the spec left at its default
    (an explicit per-spec choice always wins), mirroring how
    ``repro.hw.fluid.resolve_fluid`` treats ``spec.fluid``.  With no
    ambient override set this returns ``spec`` itself, unchanged --
    the committed-figure/golden-trace bit-identity path.
    """
    kw = {}
    nps = os.environ.get(_ENV_NPS)
    if nps is not None and spec.nodes_per_switch == 0:
        kw["nodes_per_switch"] = int(nps)
    spines = os.environ.get(_ENV_SPINES)
    if spines is not None and spec.spine_count == 1:
        kw["spine_count"] = int(spines)
    sel = os.environ.get(_ENV_SELECTOR)
    if sel is not None and spec.path_selector == "ecmp":
        kw["path_selector"] = sel
    up = os.environ.get(_ENV_UPLINK)
    if up is not None and spec.uplink_capacity == 1.0:
        kw["uplink_capacity"] = float(up)
    if not kw:
        return spec
    return replace(spec, **kw)


@contextmanager
def using_topology(*, nodes_per_switch: Optional[int] = None,
                   spine_count: Optional[int] = None,
                   path_selector: Optional[str] = None,
                   uplink_capacity: Optional[float] = None):
    """Ambient fat-tree override for every defaulted spec in the block."""
    pairs = [
        (_ENV_NPS, nodes_per_switch),
        (_ENV_SPINES, spine_count),
        (_ENV_SELECTOR, path_selector),
        (_ENV_UPLINK, uplink_capacity),
    ]
    saved = {}
    try:
        for env, val in pairs:
            if val is None:
                continue
            saved[env] = os.environ.get(env)
            os.environ[env] = str(val)
        yield
    finally:
        for env, old in saved.items():
            if old is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = old
