"""The common per-rank communication interface and the backend stack.

A :class:`BackendStack` owns everything shared by a job under one
runtime: the cluster, the host-MPI world (all backends need it, at
minimum for intra-node traffic) and, for the offloading runtimes, the
:class:`~repro.offload.api.OffloadFramework` in the right mode.
``stack.backend(rank)`` hands out the rank-local :class:`CommBackend`.

All backend methods are generators (``yield from`` them inside a rank
program).  Every call is timed into ``backend.time_in_comm`` so
application profiles (paper Fig 16c: compute vs "Time spent in MPI")
fall out uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.hw.cluster import Cluster
from repro.hw.params import ClusterSpec
from repro.mpi.communicator import Communicator
from repro.mpi.world import MpiWorld

if TYPE_CHECKING:  # pragma: no cover
    from repro.offload.api import OffloadFramework

__all__ = ["CommBackend", "BackendStack", "make_stack"]


class CommBackend:
    """Rank-local communication API shared by all three runtimes.

    Subclasses implement ``_isend``/``_irecv``/``_wait``/``_ialltoall``
    /``_ibcast``; the public methods add uniform time accounting.
    Requests returned by the ``i*`` methods are opaque -- pass them back
    to :meth:`wait`/:meth:`test` of the same backend only.
    """

    #: Short name used in reports ("intelmpi", "bluesmpi", "proposed").
    name = "abstract"

    def __init__(self, stack: "BackendStack", rank: int):
        self.stack = stack
        self.rank = rank
        self.rt = stack.world.runtime(rank)  # host MPI runtime (always present)
        self.ctx = self.rt.ctx
        self.sim = self.rt.sim
        #: Simulated time spent inside communication calls (incl. waits).
        self.time_in_comm = 0.0

    # -- timing ------------------------------------------------------------
    def _timed(self, gen):
        t0 = self.sim.now
        try:
            result = yield from gen
        finally:
            self.time_in_comm += self.sim.now - t0
        return result

    # -- public API ----------------------------------------------------------
    def isend(self, comm: Communicator, dst: int, addr: int, size: int, tag: int = 0):
        return self._timed(self._isend(comm, dst, addr, size, tag))

    def irecv(self, comm: Communicator, src: int, addr: int, size: int, tag: int = 0):
        return self._timed(self._irecv(comm, src, addr, size, tag))

    def wait(self, req):
        return self._timed(self._wait_any(req))

    def waitall(self, reqs: Iterable):
        def _go():
            for r in list(reqs):
                yield from self._wait_any(r)

        return self._timed(_go())

    def test(self, req):
        return self._timed(self._test_any(req))

    # -- dependent-request shims (e.g. HPL's recv-then-forward ring hop) ------
    def _wait_any(self, req):
        if hasattr(req, "advance"):
            yield from self._wait_shim(req)
        else:
            yield from self._wait(req)

    def _test_any(self, req):
        if hasattr(req, "advance"):
            return (yield from self._test_shim(req))
        return (yield from self._test(req))

    def _test_shim(self, req):
        """One progress pass over a shim: drain the host engine, then let
        the shim post whatever its dependency now allows."""
        yield self.ctx.consume(self.rt.params.mpi_call_overhead)
        yield from self.rt._drain()
        yield from req.advance()
        return bool(req.complete)

    def _wait_shim(self, req):
        while not (yield from self._test_shim(req)):
            pending = req.blocking_events()
            if pending:
                yield self.sim.any_of(pending)
            else:
                item = yield self.rt.incoming.get()
                yield from self.rt._handle(item)

    def ialltoall(self, comm: Communicator, send_addr: int, recv_addr: int, block: int):
        return self._timed(self._ialltoall(comm, send_addr, recv_addr, block))

    def ibcast(self, comm: Communicator, root: int, addr: int, size: int):
        return self._timed(self._ibcast(comm, root, addr, size))

    def barrier(self, comm: Communicator):
        from repro.mpi import collectives as coll

        return self._timed(coll._ibarrier_and_wait(self.rt, comm))

    # -- to implement ----------------------------------------------------------
    def _isend(self, comm, dst, addr, size, tag):  # pragma: no cover - abstract
        raise NotImplementedError

    def _irecv(self, comm, src, addr, size, tag):  # pragma: no cover - abstract
        raise NotImplementedError

    def _wait(self, req):  # pragma: no cover - abstract
        raise NotImplementedError

    def _test(self, req):  # pragma: no cover - abstract
        raise NotImplementedError

    def _ialltoall(self, comm, send_addr, recv_addr, block):  # pragma: no cover
        raise NotImplementedError

    def _ibcast(self, comm, root, addr, size):  # pragma: no cover - abstract
        raise NotImplementedError


class BackendStack:
    """Shared state for one job under one runtime flavour."""

    def __init__(self, cluster: Cluster, flavor: str):
        self.cluster = cluster
        self.flavor = flavor
        self.world = MpiWorld(cluster)
        self.framework: Optional["OffloadFramework"] = None
        if flavor == "proposed":
            from repro.offload.api import OffloadFramework

            self.framework = OffloadFramework(cluster, mode="gvmi", group_caching=True)
        elif flavor == "bluesmpi":
            from repro.offload.api import OffloadFramework

            self.framework = OffloadFramework(cluster, mode="staged", group_caching=False)
        elif flavor != "intelmpi":
            raise ValueError(f"unknown backend flavor {flavor!r}")
        self._backends: dict[int, CommBackend] = {}

    @property
    def comm_world(self) -> Communicator:
        return self.world.comm_world

    def backend(self, rank: int) -> CommBackend:
        be = self._backends.get(rank)
        if be is None:
            if self.flavor == "intelmpi":
                from repro.baselines.hostmpi import HostMpiBackend

                be = HostMpiBackend(self, rank)
            elif self.flavor == "bluesmpi":
                from repro.baselines.bluesmpi import BluesMpiBackend

                be = BluesMpiBackend(self, rank)
            else:
                from repro.offload.backend import ProposedBackend

                be = ProposedBackend(self, rank)
            self._backends[rank] = be
        return be

    def run(self, program, *args, **kwargs) -> list:
        """Launch ``program(backend, *args, **kwargs)`` on every rank."""
        procs = []
        for rank in range(self.world.size):
            gen = program(self.backend(rank), *args, **kwargs)
            proc = self.cluster.sim.process(gen)
            proc.name = f"{self.flavor}:rank{rank}"
            procs.append(proc)
        done = self.cluster.sim.all_of(procs)
        self.cluster.sim.run(until=done)
        for proc in procs:
            if not proc.ok:  # pragma: no cover - surfaced earlier
                raise proc.value
        return [p.value for p in procs]


def make_stack(flavor: str, spec: ClusterSpec) -> BackendStack:
    """Fresh cluster + stack for one experiment run."""
    return BackendStack(Cluster(spec), flavor)
