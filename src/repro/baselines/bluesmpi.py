"""The "BluesMPI" baseline: staging-based DPU offload [8, 9].

BluesMPI offloads ``MPI_Ialltoall``/``MPI_Ibcast`` to BlueField worker
processes but (a) moves every byte through a **staging** buffer in DPU
DRAM -- an extra hop, both hops capped by the DPU's DRAM bandwidth --
and (b) re-ships the collective's metadata to the proxy **on every
call** (it has no Section VII-D request caches; its offload is
algorithm-specific rather than a generic recorded pattern).

Point-to-point operations are *not* offloaded ("BluesMPI does not
support point-to-point offload", Section VIII-D) -- they fall through
to the host runtime, identical to IntelMPI.

The warm-up pathology the paper diagnoses in P3DFFT emerges naturally:
the first call on a given buffer set pays host-side registrations and
ARM-speed staging-buffer registrations on the proxies; micro-benchmarks
hide this behind warm-up iterations, applications do not.
"""

from __future__ import annotations

from repro.baselines.base import CommBackend
from repro.mpi.datatypes import CollectiveRequest, MpiRequest
from repro.offload.requests import OffloadGroupRequest, OffloadRequest

__all__ = ["BluesMpiBackend"]


class BluesMpiBackend(CommBackend):
    name = "bluesmpi"

    def __init__(self, stack, rank):
        super().__init__(stack, rank)
        assert stack.framework is not None and stack.framework.mode == "staged"
        self.ep = stack.framework.endpoint(rank)

    # -- p2p: host MPI, exactly like IntelMPI ------------------------------
    def _isend(self, comm, dst, addr, size, tag):
        return (yield from self.rt._isend(comm, dst, addr, size, tag))

    def _irecv(self, comm, src, addr, size, tag):
        return (yield from self.rt._irecv(comm, src, addr, size, tag))

    def _wait(self, req):
        if isinstance(req, (MpiRequest, CollectiveRequest)):
            yield from self.rt._wait(req)
        elif isinstance(req, (OffloadRequest, OffloadGroupRequest)):
            yield from self.ep.wait(req)
        else:
            raise TypeError(f"cannot wait on {type(req).__name__}")

    def _test(self, req):
        if isinstance(req, (MpiRequest, CollectiveRequest)):
            yield self.ctx.consume(self.rt.params.mpi_call_overhead)
            yield from self.rt._drain()
        return bool(req.complete)

    # -- offloaded collectives (staged, re-built every call) -----------------
    def _ialltoall(self, comm, send_addr, recv_addr, block):
        me = comm.rank_of(self.rank)
        p = comm.size
        yield from self.rt.copy_local(send_addr + me * block, recv_addr + me * block, block)
        greq = self.ep.group_start()
        for dist in range(1, p):
            dst = (me + dist) % p
            src = (me - dist) % p
            self.ep.group_send(greq, send_addr + dst * block, block,
                               dst=comm.world_rank(dst), tag=17)
            self.ep.group_recv(greq, recv_addr + src * block, block,
                               src=comm.world_rank(src), tag=17)
        self.ep.group_end(greq)
        yield from self.ep.group_call(greq)
        return greq

    def _ibcast(self, comm, root, addr, size):
        """Staged offloaded broadcast (ring pipeline on the proxies)."""
        me = comm.rank_of(self.rank)
        p = comm.size
        if p == 1:
            greq = self.ep.group_start()
            self.ep.group_end(greq)
            yield from self.ep.group_call(greq)
            return greq
        right = comm.world_rank((me + 1) % p)
        left = comm.world_rank((me - 1) % p)
        last = (root - 1) % p
        greq = self.ep.group_start()
        if me == root:
            self.ep.group_send(greq, addr, size, dst=right, tag=19)
            self.ep.group_barrier(greq)
        else:
            self.ep.group_recv(greq, addr, size, src=left, tag=19)
            self.ep.group_barrier(greq)
            if me != last:
                self.ep.group_send(greq, addr, size, dst=right, tag=19)
        self.ep.group_end(greq)
        yield from self.ep.group_call(greq)
        return greq
