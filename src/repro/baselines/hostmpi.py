"""The "IntelMPI" baseline: a pure host-progressed MPI.

This backend is the thinnest possible adapter over :mod:`repro.mpi`:
non-blocking operations only advance while the CPU is inside an MPI
call, collectives are round-scheduled point-to-point -- the exact
behaviour whose overlap limitations motivate the paper (and which its
3DStencil/Ialltoall/HPL experiments measure as the IntelMPI curves).

``ibcast`` uses the binomial tree (the stand-in for "Intel-MPI's best
Ibcast algorithm", Section VIII-D); the HPL harness separately drives
the 1-ring algorithm over plain p2p, as HPL itself does.
"""

from __future__ import annotations

from repro.baselines.base import CommBackend
from repro.mpi import collectives as coll
from repro.mpi.datatypes import CollectiveRequest, MpiRequest

__all__ = ["HostMpiBackend"]


class HostMpiBackend(CommBackend):
    name = "intelmpi"

    def _isend(self, comm, dst, addr, size, tag):
        return (yield from self.rt._isend(comm, dst, addr, size, tag))

    def _irecv(self, comm, src, addr, size, tag):
        return (yield from self.rt._irecv(comm, src, addr, size, tag))

    def _wait(self, req):
        if not isinstance(req, (MpiRequest, CollectiveRequest)):
            raise TypeError(f"host MPI cannot wait on {type(req).__name__}")
        yield from self.rt._wait(req)

    def _test(self, req):
        yield self.ctx.consume(self.rt.params.mpi_call_overhead)
        yield from self.rt._drain()
        return bool(req.complete)

    def _ialltoall(self, comm, send_addr, recv_addr, block):
        return (yield from coll._ialltoall(self.rt, comm, send_addr, recv_addr, block))

    def _ibcast(self, comm, root, addr, size):
        return (yield from coll._ibcast(self.rt, comm, root, addr, size, "binomial"))

    def ibcast_ring(self, comm, root, addr, size):
        """HPL's 1-ring broadcast as a host-progressed collective."""
        return self._timed(coll._ibcast(self.rt, comm, root, addr, size, "ring"))
