"""Communication backends: the proposed framework and its baselines.

All three MPI runtimes the paper compares are exposed behind one
rank-local interface (:class:`~repro.baselines.base.CommBackend`) so the
applications and benchmark harnesses are written once:

* :class:`~repro.baselines.hostmpi.HostMpiBackend` -- "IntelMPI":
  host-progressed point-to-point and collectives
  (:mod:`repro.mpi` straight through).
* :class:`~repro.baselines.bluesmpi.BluesMpiBackend` -- "BluesMPI":
  non-blocking alltoall/bcast offloaded to the DPU through the
  *staging* mechanism, per-call metadata exchange (no request caches),
  warm-up-sensitive staging-buffer registration; point-to-point stays
  on the host (BluesMPI does not offload p2p -- paper Section VIII-A).
* :class:`~repro.offload.backend.ProposedBackend` -- the paper's
  framework: Basic primitives for inter-node p2p, Group primitives for
  collectives, cross-GVMI direct transfers, both cache layers.

``make_backend(name, ...)`` builds a per-rank backend from a
:class:`~repro.baselines.base.BackendStack`.
"""

from repro.baselines.base import BackendStack, CommBackend, make_stack
from repro.baselines.bluesmpi import BluesMpiBackend
from repro.baselines.hostmpi import HostMpiBackend

__all__ = [
    "BackendStack",
    "BluesMpiBackend",
    "CommBackend",
    "HostMpiBackend",
    "make_stack",
]
