"""The classic host-side IB registration cache.

Standard MPI libraries amortise ``ibv_reg_mr`` with a cache keyed by
buffer address and size (paper Section II-C).  This is that cache: it
serves the rendezvous path of the host runtime and the IB-side
(receive-buffer) registrations of the offload framework.

The GVMI caches of the offload framework are a different structure (an
array of BSTs, keyed additionally by remote rank) and live in
:mod:`repro.offload.gvmi_cache`.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.node import ProcessContext
from repro.verbs.mr import MemoryRegionHandle, dereg_mr, reg_mr

__all__ = ["RegistrationCache"]


class RegistrationCache:
    """Exact-match ``(addr, size)`` -> registration handle cache.

    With a ``capacity`` (entry count; default
    ``params.ib_cache_capacity``) the cache evicts least-recently-used
    entries, deregistering the evicted handle so its KeyTable entries
    are reclaimed.  Entries over freed memory are dropped (without
    dereg -- the free protocol already revoked the keys) via a
    ``free_listeners`` hook on the owning context.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        name: str = "ib",
        capacity: Optional[int] = None,
    ):
        self.ctx = ctx
        self.name = name
        if capacity is None:
            capacity = ctx.cluster.params.ib_cache_capacity
        self.capacity = capacity
        #: Insertion order is LRU order (refreshed on every hit).
        self._entries: dict[tuple[int, int], MemoryRegionHandle] = {}
        #: Covering-scan memo: request (addr, size) -> entry key, recorded
        #: only when exactly ONE cached entry covers the request (with two
        #: or more, the scan's winner depends on LRU order, so memoizing
        #: it would change behaviour).  Cleared on any structural change
        #: (insert/evict/invalidate); LRU refreshes keep it valid.
        self._cover_memo: dict[tuple[int, int], tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        ctx.free_listeners.append(self._on_free)

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, addr: int, size: int) -> Optional[MemoryRegionHandle]:
        """Non-charging lookup (for tests/diagnostics)."""
        return self._entries.get((addr, size))

    def get(self, addr: int, size: int):
        """Return a registration handle, registering on miss.

        A generator: ``handle = yield from cache.get(addr, size)``.
        Charges the cache-lookup cost on a hit and the full
        registration cost on a miss, mirroring how a real cache spends
        time either way.

        Like production registration caches (which pin whole memory
        regions), a request is a hit when any cached registration
        *covers* [addr, addr+size) -- e.g. HPL's shrinking panels keep
        hitting the registration of the first, largest panel.
        """
        params = self.ctx.cluster.params
        lookup = (
            params.host_cache_lookup if self.ctx.kind == "host" else params.dpu_cache_lookup
        )
        yield self.ctx.consume(lookup)
        metrics = self.ctx.cluster.metrics
        key = (addr, size)
        entry = self._entries.get(key)
        if entry is None:
            memo_key = self._cover_memo.get(key)
            if memo_key is not None:
                key, entry = memo_key, self._entries[memo_key]
            else:
                ckey, entry, unique = self._find_covering_unique(addr, size)
                if entry is not None:
                    if unique:
                        self._cover_memo[key] = ckey
                    key = ckey
        bus = self.ctx.cluster.bus
        if entry is not None:
            self.hits += 1
            metrics.add(f"regcache.{self.name}.hit")
            # Refresh LRU position.
            del self._entries[key]
            self._entries[key] = entry
            if bus is not None:
                bus.emit("cache", "hit", self.ctx.trace_name,
                         cache=f"regcache.{self.name}", size=size)
            return entry
        self.misses += 1
        metrics.add(f"regcache.{self.name}.miss")
        if bus is not None:
            bus.emit("cache", "miss", self.ctx.trace_name,
                     cache=f"regcache.{self.name}", size=size)
        handle = yield from reg_mr(self.ctx, addr, size)
        self._entries[(addr, size)] = handle
        self._cover_memo.clear()
        self._evict_over_capacity()
        return handle

    def _find_covering(self, addr: int, size: int):
        for (base, length), handle in self._entries.items():
            if base <= addr and addr + size <= base + length:
                return (base, length), handle
        return None, None

    def _find_covering_unique(self, addr: int, size: int):
        """First covering entry (LRU order) plus whether it is the only one."""
        found_key = found = None
        for (base, length), handle in self._entries.items():
            if base <= addr and addr + size <= base + length:
                if found is None:
                    found_key, found = (base, length), handle
                else:
                    return found_key, found, False
        return found_key, found, found is not None

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        metrics = self.ctx.cluster.metrics
        bus = self.ctx.cluster.bus
        while len(self._entries) > self.capacity:
            victim_key = next(iter(self._entries))
            handle = self._entries.pop(victim_key)
            self._cover_memo.clear()
            dereg_mr(self.ctx, handle)
            self.evictions += 1
            metrics.add(f"regcache.{self.name}.evict")
            if bus is not None:
                bus.emit("cache", "evict", self.ctx.trace_name,
                         cache=f"regcache.{self.name}", size=victim_key[1])

    def invalidate(self, addr: int, size: int) -> bool:
        """Drop one entry (e.g. after a free); True if it existed."""
        if self._entries.pop((addr, size), None) is not None:
            self._cover_memo.clear()
            return True
        return False

    def invalidate_range(self, addr: int, size: int) -> int:
        """Drop every entry overlapping [addr, addr+size).

        No dereg: this runs from the free protocol, which has already
        revoked the covering keys.
        """
        doomed = [
            k for k in self._entries
            if k[0] < addr + size and addr < k[0] + k[1]
        ]
        for k in doomed:
            del self._entries[k]
        if doomed:
            self._cover_memo.clear()
        return len(doomed)

    def _on_free(self, addr: int, size: int) -> None:
        self.invalidate_range(addr, size)

    def clear(self) -> None:
        self._entries.clear()
        self._cover_memo.clear()
