"""The classic host-side IB registration cache.

Standard MPI libraries amortise ``ibv_reg_mr`` with a cache keyed by
buffer address and size (paper Section II-C).  This is that cache: it
serves the rendezvous path of the host runtime and the IB-side
(receive-buffer) registrations of the offload framework.

The GVMI caches of the offload framework are a different structure (an
array of BSTs, keyed additionally by remote rank) and live in
:mod:`repro.offload.gvmi_cache`.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.node import ProcessContext
from repro.verbs.mr import MemoryRegionHandle, reg_mr

__all__ = ["RegistrationCache"]


class RegistrationCache:
    """Exact-match ``(addr, size)`` -> registration handle cache."""

    def __init__(self, ctx: ProcessContext, name: str = "ib"):
        self.ctx = ctx
        self.name = name
        self._entries: dict[tuple[int, int], MemoryRegionHandle] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, addr: int, size: int) -> Optional[MemoryRegionHandle]:
        """Non-charging lookup (for tests/diagnostics)."""
        return self._entries.get((addr, size))

    def get(self, addr: int, size: int):
        """Return a registration handle, registering on miss.

        A generator: ``handle = yield from cache.get(addr, size)``.
        Charges the cache-lookup cost on a hit and the full
        registration cost on a miss, mirroring how a real cache spends
        time either way.

        Like production registration caches (which pin whole memory
        regions), a request is a hit when any cached registration
        *covers* [addr, addr+size) -- e.g. HPL's shrinking panels keep
        hitting the registration of the first, largest panel.
        """
        params = self.ctx.cluster.params
        lookup = (
            params.host_cache_lookup if self.ctx.kind == "host" else params.dpu_cache_lookup
        )
        yield self.ctx.consume(lookup)
        metrics = self.ctx.cluster.metrics
        entry = self._entries.get((addr, size))
        if entry is None:
            entry = self._find_covering(addr, size)
        bus = self.ctx.cluster.bus
        if entry is not None:
            self.hits += 1
            metrics.add(f"regcache.{self.name}.hit")
            if bus is not None:
                bus.emit("cache", "hit", self.ctx.trace_name,
                         cache=f"regcache.{self.name}", size=size)
            return entry
        self.misses += 1
        metrics.add(f"regcache.{self.name}.miss")
        if bus is not None:
            bus.emit("cache", "miss", self.ctx.trace_name,
                     cache=f"regcache.{self.name}", size=size)
        handle = yield from reg_mr(self.ctx, addr, size)
        self._entries[(addr, size)] = handle
        return handle

    def _find_covering(self, addr: int, size: int) -> Optional[MemoryRegionHandle]:
        for (base, length), handle in self._entries.items():
            if base <= addr and addr + size <= base + length:
                return handle
        return None

    def invalidate(self, addr: int, size: int) -> bool:
        """Drop one entry (e.g. after a free); True if it existed."""
        return self._entries.pop((addr, size), None) is not None

    def clear(self) -> None:
        self._entries.clear()
