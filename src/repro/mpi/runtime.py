"""The per-rank MPI runtime and its progress engine.

Design notes
------------

All protocol traffic lands in one per-rank :class:`~repro.sim.resources.Store`
(``incoming``); the progress engine is simply "drain the store and
handle each item".  Crucially, **the store is only drained from inside
MPI calls** -- ``isend``/``irecv``/``test``/``wait``/collectives.  While
the application computes, arrivals pile up unhandled.  This is the
faithful model of a host-progressed MPI and produces, by construction,
the CPU-intervention delays of the paper's Figure 1 case (1) and
Listing 1.

Protocols:

* **eager** (``size <= eager_threshold``): the sender snapshots the
  payload into a bounce buffer (CPU copy), hands it to the NIC and
  completes locally; the receiver pays a copy-out when it matches the
  arrival.  No receiver CPU is needed for delivery -- only for the
  match.
* **rendezvous** (large messages): the sender registers its buffer
  (through the registration cache) and sends an RTS carrying
  ``(addr, rkey, size)``.  When the *receiver* next enters an MPI call
  and matches the RTS, it registers its own buffer and issues an RDMA
  READ; on read completion it sends a FIN which completes the sender's
  request the next time the *sender* enters an MPI call.
* **intra-node**: a shared-memory copy (never offloaded; both sides
  pay CPU copies -- the reason the paper's 3DStencil overlap tops out
  around 78%).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.hw.node import ProcessContext
from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveRequest,
    Envelope,
    MpiError,
    MpiRequest,
)
from repro.mpi.matching import MatchingEngine, UnexpectedMessage
from repro.mpi.regcache import RegistrationCache
from repro.verbs.rdma import post_control, rdma_read

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import MpiWorld

__all__ = ["MpiRuntime"]


class MpiRuntime:
    """Everything rank-local: queues, matching, caches, accounting."""

    def __init__(self, world: "MpiWorld", ctx: ProcessContext):
        self.world = world
        self.ctx = ctx
        self.sim = ctx.sim
        self.rank = ctx.global_id
        self.params = ctx.cluster.params
        self.incoming = None  # created lazily to keep Store import local
        from repro.sim import Store

        self.incoming = Store(self.sim)
        self.matching = MatchingEngine()
        self.regcache = RegistrationCache(ctx, name="ib")
        #: Rendezvous sends waiting for their FIN, by request id.
        self._awaiting_fin: dict[int, MpiRequest] = {}
        #: Active non-blocking collectives.
        self._collectives: list[CollectiveRequest] = []
        #: Total simulated time this rank spent inside MPI calls
        #: (Fig 16c's "Time spent in MPI").
        self.time_in_mpi = 0.0
        self.sim.watchdog_probes.append(self._watchdog_report)

    def _watchdog_report(self):
        """Lines for :class:`repro.sim.DeadlockError` when the sim hangs."""
        if self._awaiting_fin:
            yield (
                f"mpi rank {self.rank}: rendezvous send(s) "
                f"{sorted(self._awaiting_fin)} never saw a FIN"
            )
        posted = [(r.peer, r.tag) for r in self.matching._posted]
        if posted:
            yield (
                f"mpi rank {self.rank}: posted receive(s) unmatched "
                f"(peer, tag)={posted}"
            )
        if self._collectives:
            yield (
                f"mpi rank {self.rank}: {len(self._collectives)} "
                f"collective(s) still in flight"
            )

    # ------------------------------------------------------------------
    # public API (timed wrappers)
    # ------------------------------------------------------------------
    def isend(self, comm: Communicator, dst: int, addr: int, size: int, tag: int = 0):
        """Non-blocking send; returns an :class:`MpiRequest`."""
        return self._timed(self._isend(comm, dst, addr, size, tag))

    def irecv(self, comm: Communicator, src: int, addr: int, size: int, tag: int = ANY_TAG):
        """Non-blocking receive; ``src`` may be :data:`ANY_SOURCE`."""
        return self._timed(self._irecv(comm, src, addr, size, tag))

    def send(self, comm: Communicator, dst: int, addr: int, size: int, tag: int = 0):
        def _go():
            req = yield from self._isend(comm, dst, addr, size, tag)
            yield from self._wait(req)

        return self._timed(_go())

    def recv(self, comm: Communicator, src: int, addr: int, size: int, tag: int = ANY_TAG):
        def _go():
            req = yield from self._irecv(comm, src, addr, size, tag)
            yield from self._wait(req)
            return req

        return self._timed(_go())

    def test(self, req):
        """One progress pass; returns True if ``req`` is complete."""
        def _go():
            yield self.ctx.consume(self.params.mpi_call_overhead)
            yield from self._drain()
            return self._is_complete(req)

        return self._timed(_go())

    def wait(self, req):
        """Block (progressing) until ``req`` completes."""
        return self._timed(self._wait(req))

    def waitall(self, reqs: Iterable):
        def _go():
            for r in list(reqs):
                yield from self._wait(r)

        return self._timed(_go())

    def progress(self):
        """An explicit progress poke (``MPI_Test`` on nothing)."""
        def _go():
            yield self.ctx.consume(self.params.mpi_call_overhead)
            yield from self._drain()

        return self._timed(_go())

    def sendrecv(self, comm: Communicator, dst: int, send_addr: int,
                 send_size: int, src: int, recv_addr: int, recv_size: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """``MPI_Sendrecv``: simultaneous send + receive, both completed.

        Deadlock-free by construction (both operations are posted
        non-blocking before either is waited)."""
        def _go():
            rreq = yield from self._irecv(comm, src, recv_addr, recv_size, recvtag)
            sreq = yield from self._isend(comm, dst, send_addr, send_size, sendtag)
            yield from self._wait(sreq)
            yield from self._wait(rreq)
            return rreq

        return self._timed(_go())

    def iprobe(self, comm: Communicator, src: int = ANY_SOURCE,
               tag: int = ANY_TAG):
        """``MPI_Iprobe``: progress once, then report whether a matching
        message is queued (without consuming it).

        Returns ``(flag, envelope-or-None)``."""
        def _go():
            yield self.ctx.consume(self.params.mpi_call_overhead)
            yield from self._drain()
            src_world = ANY_SOURCE if src == ANY_SOURCE else comm.world_rank(src)
            for um in self.matching._unexpected:
                if um.envelope.matches_recv(src_world, tag, comm.comm_id):
                    return True, um.envelope
            return False, None

        return self._timed(_go())

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def _timed(self, gen):
        t0 = self.sim.now
        try:
            result = yield from gen
        finally:
            self.time_in_mpi += self.sim.now - t0
        return result

    # ------------------------------------------------------------------
    # p2p internals
    # ------------------------------------------------------------------
    def _isend(self, comm: Communicator, dst: int, addr: int, size: int, tag: int):
        if tag < 0:
            raise MpiError("send tag must be non-negative")
        if size < 0:
            raise MpiError("negative message size")
        src_world = self.rank
        dst_world = comm.world_rank(dst)
        env = Envelope(src=src_world, dst=dst_world, tag=tag, comm_id=comm.comm_id)
        req = MpiRequest(
            kind="send", rank=src_world, peer=dst_world, tag=tag,
            comm_id=comm.comm_id, addr=addr, size=size,
        )
        yield self.ctx.consume(self.params.mpi_call_overhead)
        if dst_world == src_world:
            raise MpiError("self-sends must be copied locally (use sendrecv_self)")
        cluster = self.ctx.cluster
        if cluster.same_node(src_world, dst_world):
            proto = "shm"
        elif size <= self.params.eager_threshold:
            proto = "eager"
        else:
            proto = "rndv"
        if cluster.bus is not None:
            cluster.bus.emit("mpi", "isend", self.ctx.trace_name,
                             peer=dst_world, tag=tag, size=size, proto=proto)
        if proto == "shm":
            yield from self._shm_send(env, req)
        elif proto == "eager":
            yield from self._eager_send(env, req)
        else:
            yield from self._rndv_send(env, req)
        return req

    def _eager_send(self, env: Envelope, req: MpiRequest) -> None:
        ctx = self.ctx
        # Copy into the bounce buffer: the snapshot is what eager means,
        # so this must be read_copy -- the app may overwrite the send
        # buffer the moment the request completes locally.
        yield ctx.consume(req.size / self.params.copy_bandwidth)
        payload = (
            ctx.space.read_copy(req.addr, req.size)
            if req.size and ctx.cluster.payloads
            else None
        )
        peer_rt = self.world.runtime(env.dst)
        yield ctx.consume(ctx.hca.post_overhead("host"))
        ctx.cluster.metrics.add("mpi.eager_sends")
        ctx.cluster.fabric.transfer(
            src_node=ctx.node_id,
            dst_node=peer_rt.ctx.node_id,
            size=req.size,
            initiator="host",
            src_mem="host",
            dst_mem="host",
            on_deliver=lambda dv: peer_rt.incoming.put(("eager", env, payload, req.size)),
            kind="eager",
        )
        # Locally complete: the buffer is reusable once the NIC has it.
        self._complete(req)

    def _rndv_send(self, env: Envelope, req: MpiRequest) -> None:
        handle = yield from self.regcache.get(req.addr, req.size)
        peer_rt = self.world.runtime(env.dst)
        req.state = "rts_sent"
        self._awaiting_fin[req.req_id] = req
        self.ctx.cluster.metrics.add("mpi.rndv_sends")
        yield from post_control(
            self.ctx,
            peer_rt.ctx,
            ("rts", env, req.size, handle.rkey, req.addr, req.req_id),
            inbox=peer_rt.incoming,
        )

    def _shm_send(self, env: Envelope, req: MpiRequest) -> None:
        ctx = self.ctx
        p = self.params
        # Snapshot semantics, as in _eager_send: the sender reuses the
        # buffer after local completion, so the payload must be a copy.
        yield ctx.consume(p.shm_cpu_cost + req.size / p.copy_bandwidth)
        payload = (
            ctx.space.read_copy(req.addr, req.size)
            if req.size and ctx.cluster.payloads
            else None
        )
        peer_rt = self.world.runtime(env.dst)
        delay = p.shm_latency + req.size / p.shm_bandwidth
        ctx.cluster.metrics.add("mpi.shm_sends")

        def _deliver():
            yield self.sim.timeout(delay)
            peer_rt.incoming.put(("shm", env, payload, req.size))

        self.sim.process(_deliver())
        self._complete(req)

    def _irecv(self, comm: Communicator, src: int, addr: int, size: int, tag: int):
        src_world = ANY_SOURCE if src == ANY_SOURCE else comm.world_rank(src)
        req = MpiRequest(
            kind="recv", rank=self.rank, peer=src_world, tag=tag,
            comm_id=comm.comm_id, addr=addr, size=size,
        )
        yield self.ctx.consume(self.params.mpi_call_overhead)
        um = self.matching.post_recv(req)
        if um is not None:
            yield from self._serve_matched(req, um.kind, um.envelope, um.payload, um.meta)
        return req

    # ------------------------------------------------------------------
    # the progress engine
    # ------------------------------------------------------------------
    def _drain(self):
        """Handle everything currently queued, then advance collectives."""
        while True:
            ok, item = self.incoming.try_get()
            if not ok:
                break
            yield from self._handle(item)
        yield from self._advance_collectives()

    def _wait(self, req):
        yield self.ctx.consume(self.params.mpi_call_overhead)
        yield from self._drain()
        while not self._is_complete(req):
            item = yield self.incoming.get()
            yield from self._handle(item)
            yield from self._drain()

    def _is_complete(self, req) -> bool:
        return bool(req.complete)

    def _complete(self, req) -> None:
        req.complete = True
        req.complete_time = self.sim.now
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("mpi", "complete", self.ctx.trace_name,
                     kind=req.kind, peer=req.peer, tag=req.tag, size=req.size)

    def _handle(self, item) -> None:
        kind = item[0]
        if kind in ("eager", "shm"):
            _, env, payload, size = item
            yield self.ctx.consume(self.params.host_handler_cost)
            matched = self.matching.match_arrival(env)
            if matched is None:
                self.matching.add_unexpected(
                    UnexpectedMessage(env, kind, payload, size, self.sim.now)
                )
            else:
                yield from self._serve_matched(matched, kind, env, payload, size)
        elif kind == "rts":
            _, env, size, rkey, raddr, send_req_id = item
            yield self.ctx.consume(self.params.host_handler_cost)
            matched = self.matching.match_arrival(env)
            meta = (rkey, raddr, send_req_id)
            if matched is None:
                self.matching.add_unexpected(
                    UnexpectedMessage(env, "rts", size, meta, self.sim.now)
                )
            else:
                yield from self._serve_matched(matched, "rts", env, size, meta)
        elif kind == "read_done":
            _, recv_req, env, send_req_id = item
            self._finish_recv(recv_req, env)
            sender_rt = self.world.runtime(env.src)
            yield from post_control(
                self.ctx, sender_rt.ctx, ("fin", send_req_id), inbox=sender_rt.incoming
            )
        elif kind == "fin":
            _, send_req_id = item
            req = self._awaiting_fin.pop(send_req_id, None)
            if req is None:
                raise MpiError(f"FIN for unknown send request {send_req_id}")
            self._complete(req)
        else:
            raise MpiError(f"unknown protocol item {kind!r}")

    def _serve_matched(self, req: MpiRequest, kind: str, env: Envelope, payload, meta):
        """A posted receive met its message (either order)."""
        if kind in ("eager", "shm"):
            size = meta
            if size > req.size:
                raise MpiError(
                    f"message of {size} bytes overflows posted receive of {req.size}"
                )
            yield self.ctx.consume(size / self.params.copy_bandwidth)
            if payload is not None and size:
                self.ctx.space.write(req.addr, payload)
            self._finish_recv(req, env)
        elif kind == "rts":
            size = payload  # for RTS items the payload slot carries the size
            rkey, raddr, send_req_id = meta
            if size > req.size:
                raise MpiError(
                    f"rendezvous message of {size} bytes overflows posted "
                    f"receive of {req.size}"
                )
            handle = yield from self.regcache.get(req.addr, req.size)
            transfer = yield from rdma_read(
                self.ctx,
                lkey=handle.lkey,
                local_addr=req.addr,
                rkey=rkey,
                remote_addr=raddr,
                size=size,
            )

            def _notify():
                yield transfer.completed
                self.incoming.put(("read_done", req, env, send_req_id))

            self.sim.process(_notify())
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown matched kind {kind!r}")

    def _finish_recv(self, req: MpiRequest, env: Envelope) -> None:
        req.matched_src = env.src
        req.matched_tag = env.tag
        self._complete(req)

    # ------------------------------------------------------------------
    # non-blocking collectives plumbing
    # ------------------------------------------------------------------
    def start_collective(self, coll: CollectiveRequest):
        """Register a collective and run its first round (a generator)."""
        self._collectives.append(coll)
        yield from self._start_round(coll)

    def _start_round(self, coll: CollectiveRequest):
        while coll.round_idx < len(coll.rounds):
            round_fn = coll.rounds[coll.round_idx]
            coll.active = yield from round_fn(self)
            coll.round_idx += 1
            if coll.active:
                return
            # Empty round (nothing for this rank to do): fall through.
        self._finish_collective(coll)
        if coll.on_complete is not None:
            yield from coll.on_complete(self)

    def _advance_collectives(self):
        progressed = True
        while progressed:
            progressed = False
            for coll in list(self._collectives):
                if coll.complete:
                    continue
                if coll.active and not all(r.complete for r in coll.active):
                    continue
                # Round finished -> start the next one.
                yield from self._start_round(coll)
                progressed = True

    def _finish_collective(self, coll: CollectiveRequest) -> None:
        coll.complete = True
        coll.complete_time = self.sim.now
        if coll in self._collectives:
            self._collectives.remove(coll)

    # ------------------------------------------------------------------
    # local data movement helper
    # ------------------------------------------------------------------
    def copy_local(self, src_addr: int, dst_addr: int, size: int):
        """memcpy within this rank (self-block of collectives)."""
        yield self.ctx.consume(size / self.params.copy_bandwidth)
        if size and self.ctx.cluster.payloads:
            self.ctx.space.write(dst_addr, self.ctx.space.read(src_addr, size))
