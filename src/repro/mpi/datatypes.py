"""Envelopes, requests and constants for the MPI runtime."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiError",
    "Envelope",
    "MpiRequest",
    "CollectiveRequest",
]

#: Wildcard source rank for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1

_req_ids = itertools.count()


class MpiError(RuntimeError):
    """Semantic misuse of the MPI layer."""


@dataclass(frozen=True)
class Envelope:
    """The matching triple (plus communicator) of one message."""

    src: int  # world rank of the sender
    dst: int  # world rank of the receiver
    tag: int
    comm_id: int

    def matches_recv(self, recv_src: int, recv_tag: int, comm_id: int) -> bool:
        """Would a posted receive with these selectors match this message?"""
        if comm_id != self.comm_id:
            return False
        if recv_src != ANY_SOURCE and recv_src != self.src:
            return False
        if recv_tag != ANY_TAG and recv_tag != self.tag:
            return False
        return True


@dataclass
class MpiRequest:
    """One non-blocking point-to-point operation."""

    kind: str  # "send" | "recv"
    rank: int  # world rank owning this request
    peer: int  # destination (send) / selector source (recv); may be ANY_SOURCE
    tag: int
    comm_id: int
    addr: int
    size: int
    req_id: int = field(default_factory=lambda: next(_req_ids))
    complete: bool = False
    #: Simulated time at which the operation semantically completed.
    complete_time: Optional[float] = None
    #: For receives: the actual source/tag after matching (wildcards resolved).
    matched_src: Optional[int] = None
    matched_tag: Optional[int] = None
    #: Protocol scratch space (protocol state machine tag).
    state: str = "new"
    #: Optional payload bytes riding along (eager path holds them here
    #: between arrival and match).
    payload: Any = None

    def __hash__(self) -> int:
        return self.req_id

    def __eq__(self, other) -> bool:
        return self is other


@dataclass
class CollectiveRequest:
    """A non-blocking collective: a dependency-ordered schedule of rounds.

    ``rounds`` is a list of callables; each, when invoked with the
    runtime, returns the list of :class:`MpiRequest` for that round.
    The progress engine starts round *k+1* only once every request of
    round *k* has completed -- which is how a host-progressed library
    really chains e.g. a binomial-tree Ibcast, and why its overlap
    suffers: advancing to the next round needs the CPU.
    """

    rank: int
    comm_id: int
    op: str
    rounds: list = field(default_factory=list)
    round_idx: int = 0
    active: list[MpiRequest] = field(default_factory=list)
    complete: bool = False
    complete_time: Optional[float] = None
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: Optional completion hook (copy-out, unpacking).
    on_complete: Any = None

    def __hash__(self) -> int:
        return self.req_id

    def __eq__(self, other) -> bool:
        return self is other
