"""An MPI-like runtime on simulated verbs.

This is the substitute for the paper's "base MPI library": it provides
blocking and non-blocking point-to-point operations with eager and
rendezvous protocols, blocking and non-blocking collectives, and a
per-rank progress engine with the defining property of host-based MPI
that motivates the whole paper (Section II-A): **non-blocking
operations only make protocol progress while the calling rank is
inside an MPI call** (``Test``/``Wait``/any other call).  While the
application computes, RTS/RTR handshakes sit unserved in the queue --
which is precisely the delay Figure 1's case (1) depicts and the
offload framework removes.

The "Intel MPI" baseline in the experiments *is* this runtime (see
``repro.baselines.hostmpi``); the proposed framework replaces its
transport for inter-node traffic.
"""

from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveRequest,
    Envelope,
    MpiError,
    MpiRequest,
)
from repro.mpi.communicator import Communicator
from repro.mpi.regcache import RegistrationCache
from repro.mpi.runtime import MpiRuntime
from repro.mpi.world import MpiWorld

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveRequest",
    "Communicator",
    "Envelope",
    "MpiError",
    "MpiRequest",
    "MpiRuntime",
    "MpiWorld",
    "RegistrationCache",
]
