"""Communicators: ordered groups of world ranks."""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.mpi.datatypes import MpiError

__all__ = ["Communicator"]

_comm_ids = itertools.count()


class Communicator:
    """An ordered subset of world ranks with its own rank numbering.

    All runtime APIs take *communicator-local* ranks and translate to
    world ranks internally, as a real MPI does.  ``Communicator.world``
    builds COMM_WORLD; ``split`` mirrors ``MPI_Comm_split`` (used by the
    P3DFFT pencil decomposition to build row/column communicators).
    """

    def __init__(self, world_ranks: Sequence[int], name: str = ""):
        ranks = list(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise MpiError(f"duplicate ranks in communicator: {ranks}")
        if not ranks:
            raise MpiError("empty communicator")
        self.comm_id = next(_comm_ids)
        self.world_ranks = ranks
        self._index = {w: i for i, w in enumerate(ranks)}
        self.name = name or f"comm{self.comm_id}"
        #: Memoised split results, so every rank calling ``split`` with
        #: the same arguments receives the *same* Communicator objects
        #: (the stand-in for MPI's collectively-agreed context ids).
        self._split_cache: dict = {}

    @staticmethod
    def world(size: int) -> "Communicator":
        return Communicator(range(size), name="COMM_WORLD")

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> int:
        """Communicator-local rank of a world rank."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise MpiError(
                f"world rank {world_rank} is not in {self.name}"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        if not 0 <= local_rank < self.size:
            raise MpiError(f"rank {local_rank} out of range for {self.name} (size {self.size})")
        return self.world_ranks[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    def split(self, colors: Sequence[int], keys: Optional[Sequence[int]] = None) -> dict[int, "Communicator"]:
        """Split into sub-communicators by color (one entry per color).

        ``colors``/``keys`` are indexed by communicator-local rank.
        Returns ``{color: Communicator}``; members are ordered by key
        then by original rank, like ``MPI_Comm_split``.
        """
        if len(colors) != self.size:
            raise MpiError("colors must have one entry per rank")
        if keys is None:
            keys = list(range(self.size))
        cache_key = (tuple(colors), tuple(keys))
        cached = self._split_cache.get(cache_key)
        if cached is not None:
            return cached
        groups: dict[int, list[tuple[int, int]]] = {}
        for local, (color, key) in enumerate(zip(colors, keys)):
            groups.setdefault(color, []).append((key, self.world_ranks[local]))
        out = {}
        for color, members in groups.items():
            members.sort()
            out[color] = Communicator(
                [w for _, w in members], name=f"{self.name}.split{color}"
            )
        self._split_cache[cache_key] = out
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator {self.name} size={self.size}>"
