"""Blocking and non-blocking collectives for the host runtime.

Every non-blocking collective is a :class:`~repro.mpi.datatypes.CollectiveRequest`
-- a list of dependency-ordered *rounds* of point-to-point operations
advanced by the owning rank's progress engine.  This is exactly how a
host-progressed MPI implements them, and is what limits their overlap:
moving from one round to the next requires the CPU to be inside an MPI
call.

Algorithms:

* ``ialltoall`` -- scatter-destination (each rank posts all its
  personalized sends/receives up front, rotated to avoid incast); the
  same algorithm the paper implements with Group primitives.
* ``ibcast`` -- binomial tree (IntelMPI-best-Ibcast stand-in) or ring
  (HPL's 1-ring pipeline).
* ``ibarrier`` -- dissemination.
* ``iallgather`` -- ring.
* ``ireduce``/``iallreduce`` -- binomial reduce (+ broadcast), with real
  float64 summation so numerics can be validated.

Tags: collective traffic lives in a reserved tag space above
``COLL_TAG_BASE``; instances on the same communicator draw a per-rank
sequence number, which stays coherent because MPI requires all ranks to
call collectives on a communicator in the same order.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import CollectiveRequest, MpiError
from repro.mpi.runtime import MpiRuntime

__all__ = [
    "COLL_TAG_BASE",
    "coll_tag",
    "ialltoall",
    "alltoall",
    "ibcast",
    "bcast",
    "ibarrier",
    "barrier",
    "iallgather",
    "allgather",
    "ireduce",
    "allreduce",
    "igather",
    "gather",
    "iscatter",
    "scatter",
]

COLL_TAG_BASE = 1 << 20

#: per (comm_id, world_rank) sequence counters -- kept here rather than on
#: the Communicator so communicators stay pure descriptors.
_seq: dict[tuple[int, int], int] = {}


#: Tag stride per collective instance: multi-round algorithms may use
#: ``tag + r`` sub-tags, so instances are spaced widely apart.
COLL_TAG_STRIDE = 4096


def coll_tag(comm: Communicator, world_rank: int) -> int:
    """Next collective tag for this (comm, rank); coherent across ranks."""
    key = (comm.comm_id, world_rank)
    n = _seq.get(key, 0)
    _seq[key] = n + 1
    return COLL_TAG_BASE + n * COLL_TAG_STRIDE


# ---------------------------------------------------------------------------
# alltoall
# ---------------------------------------------------------------------------

def ialltoall(rt: MpiRuntime, comm: Communicator, send_addr: int, recv_addr: int, block: int):
    """Personalized all-to-all, ``block`` bytes per peer (scatter-destination)."""
    return rt._timed(_ialltoall(rt, comm, send_addr, recv_addr, block))


def _ialltoall(rt: MpiRuntime, comm: Communicator, send_addr: int, recv_addr: int, block: int):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size

    def round0(rt: MpiRuntime):
        reqs = []
        yield from rt.copy_local(send_addr + me * block, recv_addr + me * block, block)
        for dist in range(1, p):
            dst = (me + dist) % p
            src = (me - dist) % p
            reqs.append(
                (yield from rt._isend(comm, dst, send_addr + dst * block, block, tag))
            )
            reqs.append(
                (yield from rt._irecv(comm, src, recv_addr + src * block, block, tag))
            )
        return reqs

    coll = CollectiveRequest(rank=rt.rank, comm_id=comm.comm_id, op="ialltoall", rounds=[round0])
    yield from rt.start_collective(coll)
    return coll


def alltoall(rt: MpiRuntime, comm: Communicator, send_addr: int, recv_addr: int, block: int):
    def _go():
        coll = yield from _ialltoall(rt, comm, send_addr, recv_addr, block)
        yield from rt._wait(coll)

    return rt._timed(_go())


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------

def _binomial_parent_children(vrank: int, p: int) -> tuple[int | None, list[int]]:
    """Parent/children of a virtual rank in a binomial broadcast tree.

    A node's parent is itself with the highest set bit cleared; its
    children are ``vrank + 2**k`` for every ``2**k > vrank`` still in
    range.
    """
    parent = None
    if vrank > 0:
        parent = vrank & ~(1 << (vrank.bit_length() - 1))
    children = []
    k = 1 if vrank == 0 else 1 << vrank.bit_length()
    while vrank + k < p:
        children.append(vrank + k)
        k <<= 1
    return parent, children


def ibcast(
    rt: MpiRuntime,
    comm: Communicator,
    root: int,
    addr: int,
    size: int,
    algorithm: str = "binomial",
):
    """Non-blocking broadcast of [addr, +size) from ``root``."""
    return rt._timed(_ibcast(rt, comm, root, addr, size, algorithm))


#: Above this size a host Ibcast switches from the binomial tree to the
#: bandwidth-optimal scatter + ring-allgather ("scag") algorithm, as
#: production MPIs do.  Scag moves ~2x(p-1)/p of the data per rank but
#: needs ~2(p-1) *dependent* rounds -- each a CPU-intervention point for
#: a host-progressed runtime, which is exactly why the paper finds
#: IntelMPI's Ibcast overlaps poorly in HPL.
SCAG_THRESHOLD = 64 * 1024


def _ibcast(rt, comm, root, addr, size, algorithm="binomial"):
    if algorithm == "binomial":
        if size > SCAG_THRESHOLD and comm.size > 2:
            gen = _ibcast_scag(rt, comm, root, addr, size)
        else:
            gen = _ibcast_binomial(rt, comm, root, addr, size)
    elif algorithm == "ring":
        gen = _ibcast_ring(rt, comm, root, addr, size)
    else:
        raise MpiError(f"unknown broadcast algorithm {algorithm!r}")
    return (yield from gen)


def _ibcast_binomial(rt, comm, root, addr, size):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    vrank = (me - root) % p
    parent_v, children_v = _binomial_parent_children(vrank, p)

    def recv_round(rt: MpiRuntime):
        if parent_v is None:
            return []
        parent = (parent_v + root) % p
        req = yield from rt._irecv(comm, parent, addr, size, tag)
        return [req]

    def send_round(rt: MpiRuntime):
        reqs = []
        for child_v in children_v:
            child = (child_v + root) % p
            reqs.append((yield from rt._isend(comm, child, addr, size, tag)))
        return reqs

    coll = CollectiveRequest(
        rank=rt.rank, comm_id=comm.comm_id, op="ibcast",
        rounds=[recv_round, send_round],
    )
    yield from rt.start_collective(coll)
    return coll


def _ibcast_ring(rt, comm, root, addr, size):
    """The HPL-1ring pattern: root -> root+1 -> ... around the ring.

    Every non-root rank must *receive before it can forward* -- the
    data dependency that forces CPU intervention in host MPI (paper
    Listing 1) and that Group primitives offload wholesale.
    """
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    right = (me + 1) % p
    is_root = me == root
    last = (root - 1) % p  # the ring's tail does not forward

    def recv_round(rt: MpiRuntime):
        if is_root:
            return []
        left = (me - 1) % p
        req = yield from rt._irecv(comm, left, addr, size, tag)
        return [req]

    def send_round(rt: MpiRuntime):
        if me == last and not is_root:
            return []
        if p == 1:
            return []
        req = yield from rt._isend(comm, right, addr, size, tag)
        return [req]

    coll = CollectiveRequest(
        rank=rt.rank, comm_id=comm.comm_id, op="ibcast_ring",
        rounds=[recv_round, send_round],
    )
    yield from rt.start_collective(coll)
    return coll


def _ibcast_scag(rt, comm, root, addr, size):
    """Large-message broadcast: binomial scatter + ring allgather.

    The buffer is cut into ``p`` segments.  A binomial-tree scatter
    leaves virtual rank ``v`` holding exactly segment ``v``; a ring
    allgather then circulates every segment (p-1 dependent rounds).
    Bandwidth-optimal (~2 x (p-1)/p x size moved per rank), but each of
    those dependent rounds is a CPU-intervention point for a
    host-progressed runtime.  This is the MPICH/IntelMPI large-message
    broadcast.
    """
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    vr = (me - root) % p
    seg = max(1, size // p)

    def seg_bounds(i: int) -> tuple[int, int]:
        lo = i * seg
        hi = size if i == p - 1 else min(size, (i + 1) * seg)
        return lo, max(0, hi - lo)

    def rank_of_v(v: int) -> int:
        return (v + root) % p

    def range_bytes(first_seg: int, n_segs: int) -> tuple[int, int]:
        """Contiguous byte range covering segments [first, first+n)."""
        lo, _ = seg_bounds(first_seg)
        last = min(p, first_seg + n_segs) - 1
        llo, lln = seg_bounds(last)
        return lo, (llo + lln) - lo

    # Binomial scatter tree: parent(v) = v with its lowest set bit
    # cleared; v arrives owning segments [v, v+lowbit(v)) and hands the
    # upper halves to children v + 2^j (2^j < lowbit(v)), largest first.
    span = (1 << max(0, (p - 1).bit_length())) if vr == 0 else (vr & -vr)
    parent_v = None if vr == 0 else (vr & (vr - 1))
    children = []
    j = span >> 1
    while j >= 1:
        if vr + j < p:
            children.append((vr + j, j))
        j >>= 1

    rounds = []

    def scatter_recv_round(rt: MpiRuntime):
        if parent_v is None:
            return []
        lo, ln = range_bytes(vr, span)
        if ln == 0:
            return []
        req = yield from rt._irecv(comm, rank_of_v(parent_v), addr + lo, ln, tag)
        return [req]

    def scatter_send_round(rt: MpiRuntime):
        reqs = []
        for child_v, child_span in children:
            lo, ln = range_bytes(child_v, child_span)
            if ln:
                reqs.append((yield from rt._isend(
                    comm, rank_of_v(child_v), addr + lo, ln, tag)))
        return reqs

    rounds.append(scatter_recv_round)
    rounds.append(scatter_send_round)

    # Ring allgather: p-1 dependent rounds shifting one segment each.
    right = rank_of_v((vr + 1) % p)
    left = rank_of_v((vr - 1) % p)
    for r in range(p - 1):
        def make_ag_round(r=r):
            def round_fn(rt: MpiRuntime):
                send_idx = (vr - r) % p
                recv_idx = (vr - r - 1) % p
                slo, sln = seg_bounds(send_idx)
                rlo, rln = seg_bounds(recv_idx)
                reqs = []
                if sln:
                    reqs.append((yield from rt._isend(
                        comm, right, addr + slo, sln, tag + 1 + r)))
                if rln:
                    reqs.append((yield from rt._irecv(
                        comm, left, addr + rlo, rln, tag + 1 + r)))
                return reqs

            return round_fn

        rounds.append(make_ag_round())

    coll = CollectiveRequest(
        rank=rt.rank, comm_id=comm.comm_id, op="ibcast_scag", rounds=rounds,
    )
    yield from rt.start_collective(coll)
    return coll


def bcast(rt, comm, root, addr, size, algorithm="binomial"):
    def _go():
        coll = yield from _ibcast(rt, comm, root, addr, size, algorithm)
        yield from rt._wait(coll)

    return rt._timed(_go())


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def ibarrier(rt: MpiRuntime, comm: Communicator):
    """Dissemination barrier (log2(p) dependent rounds)."""
    return rt._timed(_ibarrier(rt, comm))


def _ibarrier(rt, comm):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    rounds = []
    scratch = rt.ctx.space.alloc(max(1, p.bit_length()))  # 1 byte per round

    def make_round(k: int):
        def round_fn(rt: MpiRuntime):
            dst = (me + (1 << k)) % p
            src = (me - (1 << k)) % p
            reqs = []
            if dst != me:
                reqs.append((yield from rt._isend(comm, dst, scratch + k, 1, tag + k)))
                reqs.append((yield from rt._irecv(comm, src, scratch + k, 1, tag + k)))
            return reqs

        return round_fn

    k = 0
    while (1 << k) < p:
        rounds.append(make_round(k))
        k += 1
    coll = CollectiveRequest(rank=rt.rank, comm_id=comm.comm_id, op="ibarrier", rounds=rounds)
    yield from rt.start_collective(coll)
    return coll


def _ibarrier_and_wait(rt, comm):
    """Blocking barrier body without the runtime's timing wrapper
    (for callers that do their own accounting, e.g. CommBackend)."""
    coll = yield from _ibarrier(rt, comm)
    yield from rt._wait(coll)


def barrier(rt, comm):
    return rt._timed(_ibarrier_and_wait(rt, comm))


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------

def iallgather(rt: MpiRuntime, comm: Communicator, send_addr: int, recv_addr: int, block: int):
    """Ring allgather: ``block`` bytes contributed per rank."""
    return rt._timed(_iallgather(rt, comm, send_addr, recv_addr, block))


def _iallgather(rt, comm, send_addr, recv_addr, block):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    right = (me + 1) % p
    left = (me - 1) % p

    def round0(rt: MpiRuntime):
        yield from rt.copy_local(send_addr, recv_addr + me * block, block)
        return []

    def make_round(r: int):
        def round_fn(rt: MpiRuntime):
            send_block = (me - r) % p
            recv_block = (me - r - 1) % p
            reqs = [
                (yield from rt._isend(comm, right, recv_addr + send_block * block, block, tag + r)),
                (yield from rt._irecv(comm, left, recv_addr + recv_block * block, block, tag + r)),
            ]
            return reqs

        return round_fn

    rounds = [round0] + [make_round(r) for r in range(p - 1)]
    coll = CollectiveRequest(rank=rt.rank, comm_id=comm.comm_id, op="iallgather", rounds=rounds)
    yield from rt.start_collective(coll)
    return coll


def allgather(rt, comm, send_addr, recv_addr, block):
    def _go():
        coll = yield from _iallgather(rt, comm, send_addr, recv_addr, block)
        yield from rt._wait(coll)

    return rt._timed(_go())


# ---------------------------------------------------------------------------
# reduce / allreduce (binomial, float64 sum)
# ---------------------------------------------------------------------------

def _reduce_flops_cost(rt: MpiRuntime, count: int) -> float:
    return count / rt.params.host_flops_per_core


def ireduce(rt: MpiRuntime, comm: Communicator, root: int, addr: int, nbytes: int):
    """Binomial-tree sum-reduce of float64 data into ``root``'s buffer.

    The buffer is reduced **in place** on intermediate ranks (their
    local contribution is consumed), matching MPI_Reduce with
    MPI_IN_PLACE at every level of the tree.
    """
    return rt._timed(_ireduce(rt, comm, root, addr, nbytes))


def _ireduce(rt, comm, root, addr, nbytes):
    if nbytes % 8:
        raise MpiError("reduce payload must be whole float64 words")
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    vrank = (me - root) % p
    count = nbytes // 8

    # Reduce runs the broadcast tree backwards: a node receives from each
    # of its (binomial) children, accumulating, then sends to its parent.
    parent_v, children_v = _binomial_parent_children(vrank, p)
    scratch = rt.ctx.space.alloc(nbytes) if children_v else None
    rounds = []

    def make_child_round(child_v: int):
        def round_fn(rt: MpiRuntime):
            child = (child_v + root) % p
            req = yield from rt._irecv(comm, child, scratch, nbytes, tag)
            return [req]

        return round_fn

    def make_accum_round():
        def round_fn(rt: MpiRuntime):
            yield rt.ctx.consume(_reduce_flops_cost(rt, count))
            if rt.ctx.cluster.payloads:
                acc = rt.ctx.space.read_as(addr, np.float64, count)
                inc = rt.ctx.space.read_as(scratch, np.float64, count)
                rt.ctx.space.write(addr, acc + inc)
            return []

        return round_fn

    # Children must be drained deepest-first (largest child first), the
    # reverse of the broadcast send order.
    for child_v in reversed(children_v):
        rounds.append(make_child_round(child_v))
        rounds.append(make_accum_round())

    def send_round(rt: MpiRuntime):
        if parent_v is None:
            return []
        parent = (parent_v + root) % p
        req = yield from rt._isend(comm, parent, addr, nbytes, tag)
        return [req]

    rounds.append(send_round)
    coll = CollectiveRequest(rank=rt.rank, comm_id=comm.comm_id, op="ireduce", rounds=rounds)
    yield from rt.start_collective(coll)
    return coll


def allreduce(rt: MpiRuntime, comm: Communicator, addr: int, nbytes: int):
    """Blocking sum-allreduce: binomial reduce to rank 0, then broadcast.

    (A fused non-blocking allreduce is not needed by any experiment;
    callers that want overlap use :func:`ireduce` + :func:`ibcast`.)
    """
    def _go():
        red = yield from _ireduce(rt, comm, 0, addr, nbytes)
        yield from rt._wait(red)
        bc = yield from _ibcast(rt, comm, 0, addr, nbytes, "binomial")
        yield from rt._wait(bc)

    return rt._timed(_go())


# ---------------------------------------------------------------------------
# gather / scatter (binomial trees over the broadcast topology)
# ---------------------------------------------------------------------------

def igather(rt: MpiRuntime, comm: Communicator, root: int, send_addr: int,
            recv_addr: int, block: int):
    """Non-blocking gather: every rank's ``block`` bytes land at the root.

    Binomial tree: a node first collects the blocks of its whole
    subtree into a contiguous scratch area (ordered by virtual rank),
    then forwards the aggregate to its parent in one message -- the
    standard MPICH algorithm, log2(p) dependent message rounds.
    """
    return rt._timed(_igather(rt, comm, root, send_addr, recv_addr, block))


def _subtree_span(vrank: int, p: int) -> int:
    """Number of virtual ranks in vrank's binomial *scatter-tree* subtree."""
    span = (1 << max(0, (p - 1).bit_length())) if vrank == 0 else (vrank & -vrank)
    return min(span, p - vrank)


def _scatter_tree(vrank: int, p: int) -> tuple[int | None, list[int]]:
    """Parent/children in the binomial scatter/gather tree.

    This is the *other* binomial tree (parent = clear the LOWEST set
    bit), in which node v owns the contiguous virtual range
    [v, v + span(v)) -- the property scatter offsets rely on.  Children
    are listed largest-subtree-first.
    """
    myspan = (1 << max(0, (p - 1).bit_length())) if vrank == 0 else (vrank & -vrank)
    parent = None if vrank == 0 else vrank & (vrank - 1)
    children = []
    j = myspan >> 1
    while j >= 1:
        if vrank + j < p:
            children.append(vrank + j)
        j >>= 1
    return parent, children


def _igather(rt, comm, root, send_addr, recv_addr, block):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    vrank = (me - root) % p
    span = _subtree_span(vrank, p)
    parent_v, children_v = _scatter_tree(vrank, p)
    # Children arrive smallest-subtree-first (they finish soonest).
    children_v = list(reversed(children_v))
    # Collect my subtree into contiguous scratch (the root writes the
    # user recv buffer directly; note virtual order == user order only
    # when root == 0, so non-zero roots unpack at completion).
    if vrank == 0:
        scratch = recv_addr if root == 0 else rt.ctx.space.alloc(p * block)
    else:
        scratch = rt.ctx.space.alloc(span * block)
    rounds = []

    def own_block_round(rt: MpiRuntime):
        yield from rt.copy_local(send_addr, scratch, block)
        return []

    rounds.append(own_block_round)

    for child_v in children_v:
        child_span = _subtree_span(child_v, p)

        def make_recv(child_v=child_v, child_span=child_span):
            def round_fn(rt: MpiRuntime):
                child = (child_v + root) % p
                off = (child_v - vrank) * block
                req = yield from rt._irecv(
                    comm, child, scratch + off, child_span * block, tag)
                return [req]

            return round_fn

        rounds.append(make_recv())

    def send_up_round(rt: MpiRuntime):
        if parent_v is None:
            return []
        parent = (parent_v + root) % p
        req = yield from rt._isend(comm, parent, scratch, span * block, tag)
        return [req]

    rounds.append(send_up_round)

    def unpack(rt: MpiRuntime):
        # Non-zero root: scratch is in virtual order; rotate into user order.
        if vrank == 0 and root != 0:
            for v in range(p):
                actual = (v + root) % p
                yield from rt.copy_local(
                    scratch + v * block, recv_addr + actual * block, block)

    coll = CollectiveRequest(
        rank=rt.rank, comm_id=comm.comm_id, op="igather", rounds=rounds,
        on_complete=unpack if (vrank == 0 and root != 0) else None,
    )
    yield from rt.start_collective(coll)
    return coll


def gather(rt, comm, root, send_addr, recv_addr, block):
    def _go():
        coll = yield from _igather(rt, comm, root, send_addr, recv_addr, block)
        yield from rt._wait(coll)

    return rt._timed(_go())


def iscatter(rt: MpiRuntime, comm: Communicator, root: int, send_addr: int,
             recv_addr: int, block: int):
    """Non-blocking scatter: the root's i-th ``block`` goes to rank i.

    The reverse of :func:`igather`: binomial tree, each node receives
    its subtree's blocks from its parent and forwards sub-ranges to its
    children (largest subtree first).
    """
    return rt._timed(_iscatter(rt, comm, root, send_addr, recv_addr, block))


def _iscatter(rt, comm, root, send_addr, recv_addr, block):
    tag = coll_tag(comm, rt.rank)
    me = comm.rank_of(rt.rank)
    p = comm.size
    vrank = (me - root) % p
    span = _subtree_span(vrank, p)
    parent_v, children_v = _scatter_tree(vrank, p)

    if vrank == 0:
        if root == 0:
            scratch = send_addr
            pack = None
        else:
            scratch = rt.ctx.space.alloc(p * block)

            def pack(rt: MpiRuntime):
                for v in range(p):
                    actual = (v + root) % p
                    yield from rt.copy_local(
                        send_addr + actual * block, scratch + v * block, block)
                return []
    else:
        scratch = rt.ctx.space.alloc(span * block)
        pack = None
    rounds = []
    if pack is not None:
        rounds.append(pack)

    def recv_round(rt: MpiRuntime):
        if parent_v is None:
            return []
        parent = (parent_v + root) % p
        req = yield from rt._irecv(comm, parent, scratch, span * block, tag)
        return [req]

    rounds.append(recv_round)

    def send_round(rt: MpiRuntime):
        reqs = []
        # Largest subtree first, as in the broadcast.
        for child_v in children_v:
            child_span = _subtree_span(child_v, p)
            child = (child_v + root) % p
            off = (child_v - vrank) * block
            reqs.append((yield from rt._isend(
                comm, child, scratch + off, child_span * block, tag)))
        return reqs

    rounds.append(send_round)

    def deliver_own(rt: MpiRuntime):
        yield from rt.copy_local(scratch, recv_addr, block)
        return []

    rounds.append(deliver_own)
    coll = CollectiveRequest(
        rank=rt.rank, comm_id=comm.comm_id, op="iscatter", rounds=rounds,
    )
    yield from rt.start_collective(coll)
    return coll


def scatter(rt, comm, root, send_addr, recv_addr, block):
    def _go():
        coll = yield from _iscatter(rt, comm, root, send_addr, recv_addr, block)
        yield from rt._wait(coll)

    return rt._timed(_go())
