"""MpiWorld: builds per-rank runtimes and launches rank programs."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.hw.cluster import Cluster
from repro.mpi.communicator import Communicator
from repro.mpi.datatypes import MpiError
from repro.mpi.runtime import MpiRuntime
from repro.sim import Process

__all__ = ["MpiWorld"]


class _LazyRuntimes:
    """Per-rank MpiRuntimes for a slim cluster, built on first use."""

    def __init__(self, world: "MpiWorld"):
        self._world = world
        self._count = world.cluster.world_size
        self._made: dict[int, MpiRuntime] = {}

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, rank: int) -> MpiRuntime:
        rt = self._made.get(rank)
        if rt is None:
            world = self._world
            rt = MpiRuntime(world, world.cluster.ranks[rank])
            rt.ctx.mpi = rt
            self._made[rank] = rt
        return rt

    def __iter__(self):
        # Iteration (assert_quiescent) only visits runtimes that exist:
        # a rank that never ran has no protocol state to leak.
        return iter(self._made[r] for r in sorted(self._made))


class MpiWorld:
    """One MPI job spanning every host rank of a cluster.

    ``launch`` starts one generator per rank (the "rank program"); a
    rank program receives its :class:`~repro.mpi.runtime.MpiRuntime`
    and talks to the library exclusively through it::

        world = MpiWorld(cluster)

        def program(rt):
            ...
            req = yield from rt.isend(world.comm_world, dst=1, addr=a, size=n, tag=0)
            yield from rt.wait(req)

        world.run(program)
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.sim = cluster.sim
        if cluster.spec.slim:
            self.runtimes = _LazyRuntimes(self)
        else:
            self.runtimes: list[MpiRuntime] = [
                MpiRuntime(self, ctx) for ctx in cluster.ranks
            ]
            for rt in self.runtimes:
                rt.ctx.mpi = rt
        self.comm_world = Communicator.world(cluster.world_size)

    @property
    def size(self) -> int:
        return len(self.runtimes)

    def runtime(self, world_rank: int) -> MpiRuntime:
        return self.runtimes[world_rank]

    # ------------------------------------------------------------------
    def launch(
        self,
        program: Callable,
        ranks: Optional[Sequence[int]] = None,
        *args,
        **kwargs,
    ) -> list[Process]:
        """Start ``program(rt, *args, **kwargs)`` on the given ranks."""
        targets = range(self.size) if ranks is None else ranks
        procs = []
        for r in targets:
            rt = self.runtimes[r]
            gen = program(rt, *args, **kwargs)
            proc = self.sim.process(gen)
            proc.name = f"rank{r}:{getattr(program, '__name__', 'program')}"
            procs.append(proc)
        return procs

    def run(
        self,
        program: Callable,
        ranks: Optional[Sequence[int]] = None,
        *args,
        **kwargs,
    ) -> list:
        """Launch and run to completion; returns per-rank return values."""
        procs = self.launch(program, ranks, *args, **kwargs)
        done = self.sim.all_of(procs)
        self.sim.run(until=done)
        for proc in procs:
            if not proc.ok:  # pragma: no cover - surfaced by run() already
                raise proc.value
        return [proc.value for proc in procs]

    # ------------------------------------------------------------------
    def assert_quiescent(self) -> None:
        """Raise if any rank still has protocol state in flight.

        Useful at the end of integration tests: a leftover posted
        receive, unexpected message, or un-FINed send means the test's
        communication did not actually complete cleanly.
        """
        for rt in self.runtimes:
            if len(rt.incoming):
                raise MpiError(f"rank {rt.rank}: {len(rt.incoming)} unprocessed items")
            if not rt.matching.idle():
                raise MpiError(
                    f"rank {rt.rank}: matching not idle "
                    f"(posted={rt.matching.posted_count}, "
                    f"unexpected={rt.matching.unexpected_count})"
                )
            if rt._awaiting_fin:
                raise MpiError(f"rank {rt.rank}: sends awaiting FIN")
            if rt._collectives:
                raise MpiError(f"rank {rt.rank}: active collectives remain")
