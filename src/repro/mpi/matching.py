"""Posted-receive and unexpected-message queues with MPI matching rules.

MPI matching is FIFO *per matching pair*: the oldest posted receive
whose ``(source, tag, comm)`` selectors accept an incoming envelope
wins, and symmetric for receives probing the unexpected queue.  Getting
this exactly right matters -- the proxy-side matching in the offload
framework (paper Fig. 8) follows the same discipline and the tests
compare the two.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mpi.datatypes import Envelope, MpiRequest

__all__ = ["MatchingEngine", "UnexpectedMessage"]


class UnexpectedMessage:
    """An arrival that found no posted receive."""

    __slots__ = ("envelope", "kind", "payload", "meta", "arrival_time")

    def __init__(self, envelope: Envelope, kind: str, payload: Any, meta: Any, arrival_time: float):
        self.envelope = envelope
        #: "eager" | "rts" | "shm"
        self.kind = kind
        self.payload = payload
        self.meta = meta
        self.arrival_time = arrival_time


class MatchingEngine:
    """Per-rank matching state across all communicators."""

    def __init__(self) -> None:
        self._posted: list[MpiRequest] = []
        self._unexpected: list[UnexpectedMessage] = []

    # -- posted receives -------------------------------------------------
    def post_recv(self, req: MpiRequest) -> Optional[UnexpectedMessage]:
        """Register a receive; return a matching unexpected message if any.

        If an unexpected message matches, it is consumed and the caller
        completes the protocol; otherwise the receive is queued.
        """
        for i, um in enumerate(self._unexpected):
            if um.envelope.matches_recv(req.peer, req.tag, req.comm_id):
                del self._unexpected[i]
                return um
        self._posted.append(req)
        return None

    def cancel_recv(self, req: MpiRequest) -> bool:
        try:
            self._posted.remove(req)
            return True
        except ValueError:
            return False

    # -- arrivals ----------------------------------------------------------
    def match_arrival(self, envelope: Envelope) -> Optional[MpiRequest]:
        """Find (and remove) the oldest posted receive accepting ``envelope``."""
        for i, req in enumerate(self._posted):
            if envelope.matches_recv(req.peer, req.tag, req.comm_id):
                del self._posted[i]
                return req
        return None

    def add_unexpected(self, um: UnexpectedMessage) -> None:
        self._unexpected.append(um)

    # -- introspection ------------------------------------------------------
    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    def idle(self) -> bool:
        return not self._posted and not self._unexpected
