"""Host-side API of the offload framework (paper Section VI).

Name mapping to the paper's C-style listings:

=============================  ==========================================
Paper                          Here
=============================  ==========================================
``Init_Offload()``             ``OffloadFramework(cluster)``
``Finalize_Offload()``         ``framework.finalize()``
``Send_Offload(...)``          ``yield from ep.send_offload(...)``
``Recv_Offload(...)``          ``yield from ep.recv_offload(...)``
``Wait(&req)``                 ``yield from ep.wait(req)``
``Group_Offload_start(&req)``  ``greq = ep.group_start()``
``Send_Goffload(...)``         ``ep.group_send(greq, ...)``
``Recv_Goffload(...)``         ``ep.group_recv(greq, ...)``
``Local_barrier_Goffload``     ``ep.group_barrier(greq)``
``Group_Offload_end(&req)``    ``ep.group_end(greq)``
``Group_Offload_call(&req)``   ``yield from ep.group_call(greq)``
``Group_Wait(&req)``           ``yield from ep.group_wait(greq)``
=============================  ==========================================

Recording functions (``group_send``/``group_recv``/``group_barrier``)
cost nothing in simulated time: they only append to the request's op
queue, as in the real library.  All cost is paid in ``group_call``
(registration through the caches, the descriptor gather, the packet
send) and then amortised away by the Section VII-D request caches on
repeat calls.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.hw.cluster import Cluster
from repro.hw.faults import RetryPolicy
from repro.hw.node import ProcessContext
from repro.mpi.regcache import RegistrationCache
from repro.offload.group_cache import HostGroupCache
from repro.offload.gvmi_cache import HostGvmiCache
from repro.offload.proxy import ProxyEngine
from repro.offload.requests import (
    GroupOp,
    OffloadError,
    OffloadGroupRequest,
    OffloadRequest,
)
from repro.sim import Event, Store
from repro.verbs.gvmi import gvmi_id_of
from repro.verbs.rdma import post_control, rdma_read

__all__ = ["OffloadFramework", "OffloadEndpoint"]

#: Unique ids stamped on group receive descriptors so the receiving
#: endpoint can discard fault-injected duplicates/replays.
_desc_ids = itertools.count(1)


class _RecoverySink:
    """Inbox adapter for proxy recovery notifications.

    ``stale_nack``/``oom_nack`` control messages land here.  Each
    arrival spawns an independent handler process, so recovery makes
    progress even while the application computes or sits in a plain
    (non-resilient) wait -- draining the shared endpoint inbox from
    ``wait`` would change clean-run timing, which the golden traces
    forbid.
    """

    def __init__(self, endpoint: "OffloadEndpoint"):
        self.endpoint = endpoint

    def put(self, item) -> None:
        kind, info = item
        ep = self.endpoint
        ep.sim.process(ep._on_recovery(kind, info))


class _CompletionSink:
    """Inbox adapter modelling the completion counter in host memory.

    The proxy's FIN is an RDMA write to pinned host memory; observing it
    costs the host nothing but a load.  Arrival therefore completes the
    request and triggers its event directly, with no host-CPU protocol
    handling -- the property that gives the framework its perfect
    overlap.
    """

    def __init__(self, endpoint: "OffloadEndpoint"):
        self.endpoint = endpoint

    def put(self, msg) -> None:
        if isinstance(msg, tuple):
            req_id, call_no = msg
            req = self.endpoint._pending.get(req_id)
            if req is not None and getattr(req, "calls", call_no) != call_no:
                # FIN for an earlier call of this re-used group request
                # (a retransmit raced the next call): the live call has
                # its own FIN coming, so this one must not complete it.
                self.endpoint.ctx.cluster.metrics.add(
                    "offload.stale_fins_dropped")
                return
            self.endpoint._complete_by_id(req_id)
            return
        self.endpoint._complete_by_id(msg)


class OffloadFramework:
    """``Init_Offload``: proxies launched, ranks assigned, GVMI-IDs shared.

    The GVMI-ID generation happens "only once per protection domain ...
    inside Init_Offload() and exchanged with all other processes"
    (Section VII-A).  We model that one-time exchange as a setup delay
    (an allgather over world + proxies) rather than simulating each of
    the O(ranks x proxies) tiny messages individually.
    """

    def __init__(self, cluster: Cluster, mode: str = "gvmi",
                 group_caching: bool = True, gvmi_caching: bool = True,
                 retry: Optional[RetryPolicy] = None,
                 max_outstanding: Optional[int] = None):
        if mode not in ("gvmi", "staged"):
            raise OffloadError(f"unknown offload mode {mode!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        #: Admission window: max incomplete requests per endpoint before
        #: further posts block in simulated time (None = unbounded).
        if max_outstanding is None:
            max_outstanding = cluster.params.max_outstanding_offloads
        self.max_outstanding = max_outstanding
        #: "gvmi": the proposed direct cross-GVMI mechanism.
        #: "staged": bounce through DPU DRAM (the BluesMPI-style baseline).
        self.mode = mode
        #: Section VII-D request caching (off reproduces the unoptimised /
        #: state-of-the-art per-call metadata exchange).
        self.group_caching = group_caching
        #: Section VII-B registration caching (off = register every time;
        #: the ablation for the array-of-BST cache design).
        self.gvmi_caching = gvmi_caching

        #: Fault/recovery wiring (docs/FAULTS.md).  A cluster with an
        #: installed FaultPlan gets the default RetryPolicy implicitly;
        #: ``resilient`` gates EVERY recovery branch in the stack so a
        #: clean run (no plan, no policy) is bit-identical to a build
        #: without the chaos machinery.
        self.fault_plan = cluster.fault_plan
        if retry is None and self.fault_plan is not None:
            retry = RetryPolicy()
        self.retry = retry
        self.resilient = retry is not None
        #: (time, rank, kind, req_id) records of graceful degradations
        #: (requests that abandoned their proxy for the host path).
        self.fallback_log: list[tuple] = []

        #: Slim clusters materialize endpoints and proxy engines on
        #: first use (ProxyEngine start events then appear at the time
        #: of first contact rather than t=0, which is why slim is
        #: opt-in: eager construction stays byte-identical).
        self._slim = cluster.spec.slim
        if self._slim:
            self._endpoints: dict[int, OffloadEndpoint] = {}
            self._proxy_engines: dict[int, ProxyEngine] = {}
        else:
            self._endpoints = [OffloadEndpoint(self, ctx) for ctx in cluster.ranks]
            self._proxy_engines = {
                ctx.global_id: ProxyEngine(self, ctx) for ctx in cluster.proxies
            }
        if self.fault_plan is not None:
            for kill in self.fault_plan.kills:
                self.sim.process(self._execute_kill(kill))
        p = cluster.params
        world = cluster.world_size + len(cluster.proxies)
        setup = 2 * p.ctrl_latency + max(1, world - 1).bit_length() * (
            p.wire_latency + p.switch_hop_latency + p.host_injection_gap
        )
        self.ready: Event = self.sim.timeout(setup)
        self.finalized = False

    def _execute_kill(self, kill):
        """Arm one scheduled ProxyKillPlan (a simulation process)."""
        plan = self.fault_plan
        engine = self.proxy_engine(self.cluster.proxies[kill.proxy_gid])
        yield self.sim.timeout(max(0.0, kill.at - self.sim.now))
        plan.stats["kills"] += 1
        plan.record("kill", f"proxy{kill.proxy_gid}")
        engine.kill()
        if kill.restart_after is not None:
            yield self.sim.timeout(kill.restart_after)
            plan.stats["restarts"] += 1
            plan.record("restart", f"proxy{kill.proxy_gid}")
            engine.restart()

    def endpoint(self, rank: int) -> "OffloadEndpoint":
        if self._slim:
            ep = self._endpoints.get(rank)
            if ep is None:
                ep = self._endpoints[rank] = OffloadEndpoint(
                    self, self.cluster.ranks[rank]
                )
            return ep
        return self._endpoints[rank]

    def proxy_engine(self, proxy_ctx: ProcessContext) -> ProxyEngine:
        gid = proxy_ctx.global_id
        engine = self._proxy_engines.get(gid)
        if engine is None:
            if not self._slim:
                raise KeyError(gid)
            engine = self._proxy_engines[gid] = ProxyEngine(self, proxy_ctx)
        return engine

    def proxy_engine_for_rank(self, rank: int) -> ProxyEngine:
        return self.proxy_engine(self.cluster.proxy_for_rank(rank))

    def serving_proxy(self, rank: int) -> ProcessContext:
        """The proxy context serving ``rank``, with its engine running.

        Endpoints must target proxies through this (not bare
        ``cluster.proxy_for_rank``): on a slim cluster the engine only
        exists once someone asks for it, and a control message posted to
        an engine-less inbox would sit there forever.  Materialization
        is a plain call, so first-touch start changes no simulated time.
        """
        ctx = self.cluster.proxy_for_rank(rank)
        if self._slim:
            self.proxy_engine(ctx)
        return ctx

    def _live_endpoints(self):
        return self._endpoints.values() if self._slim else self._endpoints

    def finalize(self) -> None:
        """``Finalize_Offload``: stop every proxy loop."""
        if self.finalized:
            return
        self.finalized = True
        for engine in self._proxy_engines.values():
            engine.ctx.inbox.put(("stop",))

    # -- diagnostics --------------------------------------------------------
    def assert_quiescent(self) -> None:
        """Raise if any proxy still holds unmatched or in-flight work."""
        for engine in self._proxy_engines.values():
            if engine.queued_rts or engine.queued_rtr:
                raise OffloadError(
                    f"proxy {engine.ctx.global_id}: unmatched RTS={engine.queued_rts} "
                    f"RTR={engine.queued_rtr}"
                )
            if engine.counters.pending_waits:
                raise OffloadError(
                    f"proxy {engine.ctx.global_id}: executors still waiting on counters"
                )
        for ep in self._live_endpoints():
            if ep._pending:
                raise OffloadError(f"rank {ep.rank}: incomplete offload requests")


class OffloadEndpoint:
    """Per-host-rank handle to the framework (owns the host-side caches)."""

    def __init__(self, framework: OffloadFramework, ctx: ProcessContext):
        if ctx.kind != "host":
            raise OffloadError("endpoints live on host ranks")
        self.framework = framework
        self.ctx = ctx
        self.sim = ctx.sim
        self.rank = ctx.global_id
        self.params = ctx.cluster.params
        self.gvmi_cache = HostGvmiCache(ctx, enabled=framework.gvmi_caching)
        #: IB registration cache for *receive* buffers (Fig 9: "receive
        #: buffers are registered using IB registration cache").
        self.ib_cache = RegistrationCache(ctx, name=f"offload_ib_{self.rank}")
        self.group_cache = HostGroupCache(ctx=ctx)
        self.max_outstanding = framework.max_outstanding
        #: Control-message inbox (remote receive descriptors).
        self.inbox = Store(self.sim)
        self.completion_sink = _CompletionSink(self)
        #: Proxy recovery notifications (stale_nack / oom_nack) land
        #: here and run in their own processes.
        self.recovery_sink = _RecoverySink(self)
        #: Requests awaiting their completion write, by req_id.
        self._pending: dict[int, object] = {}
        #: Remote receive descriptors gathered for my sends, keyed by
        #: (destination rank, tag) -- Fig 9's matching key.  FIFO per
        #: key, mirroring the proxy's queue discipline.
        self._recv_descs: dict[tuple[int, int], list[dict]] = {}
        self._ready_seen = False

        # -- resilience state (only touched when framework.resilient) ---
        self.retry = framework.retry
        self.resilient = framework.resilient
        #: Fallback offers (fb_rts) not yet matched to a local receive.
        self._fb_rts: list[dict] = []
        #: src_req ids already served by a fallback pull (idempotent
        #: fb_fin resend on duplicate offers).
        self._fb_served: dict[int, int] = {}
        #: desc_ids of group descriptors already applied (dup discard).
        self._gdesc_seen: set[int] = set()
        #: Descriptors I sent, keyed (sender rank, tag), replayed on a
        #: gdesc_req when the original was lost.
        self._gdesc_sent: dict[tuple[int, int], list[dict]] = {}
        self.sim.watchdog_probes.append(self._watchdog_report)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _ensure_ready(self):
        if not self._ready_seen:
            if not self.framework.ready.processed:
                yield self.framework.ready
            self._ready_seen = True

    def _complete_by_id(self, req_id: int) -> None:
        req = self._pending.pop(req_id, None)
        if req is None:
            if self.resilient:
                # Duplicate FIN: a retransmit-triggered resend, or a
                # revived proxy finishing work the fallback path already
                # completed.  Benign under recovery -- count and drop.
                self.ctx.cluster.metrics.add("offload.dup_completions")
                return
            raise OffloadError(f"completion write for unknown request {req_id}")
        req.complete = True
        req.complete_time = self.sim.now
        if req.post_time is not None:
            self.ctx.cluster.metrics.observe(
                "offload.req_latency", self.sim.now - req.post_time
            )
        bus = self.ctx.cluster.bus
        if bus is not None:
            if isinstance(req, OffloadGroupRequest):
                bus.emit("group", "done", self.ctx.trace_name, call=req.req_id)
            else:
                bus.emit("req", "complete", self.ctx.trace_name, rid=req.req_id)
        if req.event is not None and not req.event.triggered:
            req.event.succeed(req)

    def _register_pending(self, req) -> None:
        req.event = Event(self.sim)
        self._pending[req.req_id] = req

    def _watchdog_report(self):
        """Lines for :class:`repro.sim.DeadlockError` when the sim hangs."""
        if self._pending:
            ids = sorted(self._pending)
            yield f"rank {self.rank}: offload request(s) {ids} never completed"

    # ------------------------------------------------------------------
    # admission control (backpressure)
    # ------------------------------------------------------------------
    def _admit(self):
        """Block (in simulated time) while the outstanding window is full.

        A generator run before every post.  With resilience armed the
        stall doubles as a mini recovery driver: it drains the inbox,
        serves fallback offers, and nudges the oldest request with a
        retransmit when nothing completes -- otherwise a lost control
        message could wedge the window shut forever.
        """
        limit = self.max_outstanding
        if limit is None:
            return
        timeout = self.retry.timeout if self.resilient else 0.0
        while len(self._pending) >= limit:
            events = [r.event for r in self._pending.values()
                      if r.event is not None and not r.event.processed]
            if not events:
                return
            self.ctx.cluster.metrics.add("offload.admission_stalls")
            bus = self.ctx.cluster.bus
            if bus is not None:
                bus.emit("req", "stall", self.ctx.trace_name,
                         outstanding=len(self._pending))
            if not self.resilient:
                yield self.sim.any_of(events)
                continue
            yield self.sim.any_of(events + [self.sim.timeout(timeout)])
            yield from self._drain_inbox()
            yield from self._try_fb_matches()
            if len(self._pending) >= limit and not any(e.processed for e in events):
                oldest = next(iter(self._pending.values()))
                if not oldest.complete:
                    yield from self._retransmit(oldest)
                timeout = min(timeout * self.retry.backoff, self.retry.max_timeout)

    # ------------------------------------------------------------------
    # proxy recovery notifications (stale keys, memory exhaustion)
    # ------------------------------------------------------------------
    def _on_recovery(self, kind: str, info: dict):
        """Handle one stale_nack / oom_nack (its own simulation process)."""
        yield self.ctx.consume(self.params.host_handler_cost)
        req = self._pending.get(info["req_id"])
        if req is None or req.complete or not isinstance(req, OffloadRequest):
            return
        if kind == "stale_key":
            yield from self._repost_stale(req)
        elif kind == "oom_nack":
            if not req.fallback:
                self.ctx.cluster.metrics.add("offload.oom_fallbacks")
                yield from self._engage_fallback(req)
        else:  # pragma: no cover - defensive
            raise OffloadError(f"endpoint: unknown recovery item {kind!r}")

    def _repost_stale(self, req: OffloadRequest):
        """The proxy faulted on one of my revoked keys: re-register and
        re-post.

        The free that revoked the keys also invalidated the host-side
        caches (free listeners), so going back through them mints fresh
        registrations over the buffer's current incarnation.  Requires
        the range to be mapped again -- re-registering a still-freed
        buffer faults loudly, which is correct: the data to send no
        longer exists.
        """
        self.ctx.cluster.metrics.add("offload.stale_reposts")
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("req", "repost", self.ctx.trace_name, rid=req.req_id,
                     kind=req.kind)
        cluster = self.framework.cluster
        if req.kind == "send":
            proxy = self.framework.serving_proxy(self.rank)
            if self.framework.mode == "gvmi":
                gvmi = gvmi_id_of(proxy)
                mkey = yield from self.gvmi_cache.get(proxy, gvmi, req.addr, req.size)
                msg = ("rts", {
                    "src": self.rank, "dst": req.peer, "tag": req.tag,
                    "addr": req.addr, "size": req.size,
                    "reg_addr": mkey.addr, "reg_size": mkey.size,
                    "mkey": mkey.key, "gvmi_id": gvmi,
                    "req_id": req.req_id,
                })
            else:
                handle = yield from self.ib_cache.get(req.addr, req.size)
                msg = ("rts", {
                    "src": self.rank, "dst": req.peer, "tag": req.tag,
                    "addr": req.addr, "size": req.size,
                    "rkey": handle.rkey,
                    "req_id": req.req_id,
                })
        else:
            proxy = self.framework.serving_proxy(req.peer)
            handle = yield from self.ib_cache.get(req.addr, req.size)
            msg = ("rtr", {
                "src": req.peer, "dst": self.rank, "tag": req.tag,
                "addr": req.addr, "size": req.size,
                "rkey": handle.rkey,
                "req_id": req.req_id,
            })
        if self.resilient:
            req.resend = (proxy, msg)
        yield from post_control(self.ctx, proxy, msg, kind=msg[0])

    # ------------------------------------------------------------------
    # Basic primitives (Listing 2, Section VII-A)
    # ------------------------------------------------------------------
    def send_offload(self, addr: int, size: int, dst: int, tag: int):
        """``Send_Offload``: GVMI-register, RTS to my proxy; returns request."""
        yield from self._ensure_ready()
        yield from self._admit()
        req = OffloadRequest(kind="send", rank=self.rank, peer=dst, tag=tag,
                             addr=addr, size=size)
        self._register_pending(req)
        proxy = self.framework.serving_proxy(self.rank)
        self.ctx.cluster.metrics.add("offload.basic_sends")
        if self.framework.mode == "staged":
            # Staging: the proxy will RDMA-READ the source buffer, so a
            # plain IB registration (rkey) suffices -- no GVMI involved.
            handle = yield from self.ib_cache.get(addr, size)
            rts = {
                "src": self.rank, "dst": dst, "tag": tag,
                "addr": addr, "size": size,
                "rkey": handle.rkey,
                "req_id": req.req_id,
            }
        else:
            gvmi = gvmi_id_of(proxy)
            mkey = yield from self.gvmi_cache.get(proxy, gvmi, addr, size)
            rts = {
                "src": self.rank, "dst": dst, "tag": tag,
                "addr": addr, "size": size,
                # The mkey's own registered range (may cover more than
                # this transfer): the proxy cross-registers exactly it.
                "reg_addr": mkey.addr, "reg_size": mkey.size,
                "mkey": mkey.key, "gvmi_id": gvmi,
                "req_id": req.req_id,
            }
        if self.resilient:
            req.resend = (proxy, ("rts", rts))
        req.post_time = self.sim.now
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("req", "post", self.ctx.trace_name, rid=req.req_id,
                     kind="send", peer=dst, tag=tag, size=size)
        yield from post_control(self.ctx, proxy, ("rts", rts), kind="rts")
        return req

    def recv_offload(self, addr: int, size: int, src: int, tag: int):
        """``Recv_Offload``: IB-register, RTR to the *sender's* proxy."""
        yield from self._ensure_ready()
        yield from self._admit()
        req = OffloadRequest(kind="recv", rank=self.rank, peer=src, tag=tag,
                             addr=addr, size=size)
        self._register_pending(req)
        handle = yield from self.ib_cache.get(addr, size)
        proxy = self.framework.serving_proxy(src)
        self.ctx.cluster.metrics.add("offload.basic_recvs")
        rtr = {
            "src": src, "dst": self.rank, "tag": tag,
            "addr": addr, "size": size,
            "rkey": handle.rkey,
            "req_id": req.req_id,
        }
        if self.resilient:
            req.resend = (proxy, ("rtr", rtr))
        req.post_time = self.sim.now
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("req", "post", self.ctx.trace_name, rid=req.req_id,
                     kind="recv", peer=src, tag=tag, size=size)
        yield from post_control(self.ctx, proxy, ("rtr", rtr), kind="rtr")
        return req

    def wait(self, req) -> None:
        """``Wait``/``Group_Wait``: block until the completion write lands.

        No protocol work happens here -- the host merely observes the
        completion counter (so an application that computes instead of
        waiting loses nothing: perfect overlap).  With resilience armed
        the wait doubles as the recovery driver: it retransmits the
        request's control message with exponential backoff, serves
        fallback offers from peers, and -- past the liveness deadline --
        degrades a basic operation to the host-driven path.
        """
        if not req.complete:
            if self.resilient:
                yield from self._wait_resilient(req)
            else:
                yield req.event
        if isinstance(req, OffloadGroupRequest):
            req.state = "ready"

    def _wait_resilient(self, req) -> None:
        pol = self.retry
        start = self.sim.now
        timeout = pol.timeout
        attempts = 0
        while not req.complete:
            yield self.sim.any_of([req.event, self.sim.timeout(timeout)])
            if req.complete:
                break
            yield from self._drain_inbox()
            yield from self._try_fb_matches()
            if req.complete:
                break
            attempts += 1
            if attempts > pol.max_attempts:
                raise OffloadError(
                    f"rank {self.rank}: request {req.req_id} still incomplete "
                    f"after {pol.max_attempts} retransmits"
                )
            if (
                isinstance(req, OffloadRequest)
                and not req.fallback
                and self.sim.now - start >= pol.fallback_after
            ):
                yield from self._engage_fallback(req)
            else:
                yield from self._retransmit(req)
            timeout = min(timeout * pol.backoff, pol.max_timeout)
        if attempts:
            # Recovery latency: how long a request that needed at least
            # one retransmit/fallback took from the first wait to its
            # completion.  The soak harness's SLO report (p50/p95/p99)
            # is built from this histogram; clean waits (attempts == 0)
            # record nothing, so fault-free runs are unchanged.
            self.ctx.cluster.metrics.observe(
                "offload.recovery_latency", self.sim.now - start
            )

    def _retransmit(self, req) -> None:
        self.ctx.cluster.metrics.add("offload.retransmits")
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("req", "retransmit", self.ctx.trace_name, rid=req.req_id)
        if isinstance(req, OffloadGroupRequest):
            yield from self._retransmit_group(req)
            return
        if req.fallback and req.kind == "send":
            # The offer itself may have been lost: repeat it.
            yield from self._send_fb_rts(req)
            return
        proxy, msg = req.resend
        yield from post_control(self.ctx, proxy, msg, kind=msg[0])

    def _retransmit_group(self, greq: OffloadGroupRequest) -> None:
        plan = greq.resend_plan
        if plan is None:  # pragma: no cover - defensive
            raise OffloadError("group retransmit without a saved plan")
        if greq.needs_rebuild:
            yield from self._rebuild_group(greq)
            return
        proxy = self.framework.serving_proxy(self.rank)
        if plan.sent_to_proxy and not plan.dirty:
            yield from post_control(
                self.ctx, proxy,
                ("group_call", {"plan_id": plan.plan_id, "host_rank": self.rank,
                                "req_id": greq.req_id,
                                "call_no": greq.calls}),
                kind="group_call",
            )
            return
        packet = {
            "plan_id": plan.plan_id,
            "host_rank": self.rank,
            "entries": plan.entries,
            "req_id": greq.req_id,
            "call_no": greq.calls,
        }
        nbytes = max(
            self.params.ctrl_bytes,
            len(plan.entries) * self.params.group_op_bytes,
        )
        yield from post_control(self.ctx, proxy, ("group_plan", packet),
                                size=nbytes, kind="group_plan")
        plan.sent_to_proxy = True
        plan.dirty = False

    def _rebuild_group(self, greq: OffloadGroupRequest) -> None:
        """Stale-plan recovery: rebuild from scratch and ship the result.

        The proxy faulted on a revoked key inside the plan, so the saved
        entries are poison -- re-shipping them would fault again.  A
        full rebuild runs the registrations back through the (since-
        invalidated) caches and redoes the descriptor exchange; the
        ``desc_id`` dedupe set is cleared first so peers' replayed
        descriptors are accepted afresh.
        """
        greq.needs_rebuild = False
        self.ctx.cluster.metrics.add("offload.group_rebuilds")
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("group", "rebuild", self.ctx.trace_name, call=greq.req_id)
        self._gdesc_seen.clear()
        proxy = self.framework.serving_proxy(self.rank)
        entries = yield from self._build_entries(greq, proxy)
        if self.framework.group_caching:
            plan = self.group_cache.insert(greq.signature(), entries)
        else:
            from repro.offload.group_cache import HostPlan, _plan_ids

            plan = HostPlan(plan_id=next(_plan_ids), signature=greq.signature(),
                            entries=entries)
        greq.resend_plan = plan
        packet = {
            "plan_id": plan.plan_id,
            "host_rank": self.rank,
            "entries": plan.entries,
            "req_id": greq.req_id,
            "call_no": greq.calls,
        }
        nbytes = max(
            self.params.ctrl_bytes,
            len(plan.entries) * self.params.group_op_bytes,
        )
        yield from post_control(self.ctx, proxy, ("group_plan", packet),
                                size=nbytes, kind="group_plan")
        plan.sent_to_proxy = True
        plan.dirty = False

    # ------------------------------------------------------------------
    # graceful degradation: the host-driven fallback path
    # ------------------------------------------------------------------
    def _engage_fallback(self, req: OffloadRequest) -> None:
        """The proxy missed its liveness deadline: leave the offload path.

        A send offers its (IB-registered) buffer straight to the peer
        endpoint; the peer pulls with a host-initiated RDMA READ and
        FINs back -- the classic host rendezvous, with no proxy in the
        loop.  A receive degrades passively: it simply waits for the
        sender's offer (or a revived proxy, whichever is first).
        Logged, never fatal.
        """
        req.fallback = True
        self.ctx.cluster.metrics.add("offload.fallbacks")
        bus = self.ctx.cluster.bus
        if bus is not None:
            bus.emit("req", "fallback", self.ctx.trace_name, rid=req.req_id,
                     kind=req.kind)
        self.framework.fallback_log.append(
            (round(self.sim.now, 9), self.rank, req.kind, req.req_id)
        )
        if req.kind == "send":
            yield from self._send_fb_rts(req)

    def _send_fb_rts(self, req: OffloadRequest) -> None:
        handle = yield from self.ib_cache.get(req.addr, req.size)
        peer_ep = self.framework.endpoint(req.peer)
        self.ctx.cluster.metrics.add("offload.fb_rts")
        yield from post_control(
            self.ctx, peer_ep.ctx,
            ("fb_rts", {
                "src": self.rank, "dst": req.peer, "tag": req.tag,
                "addr": req.addr, "size": req.size, "rkey": handle.rkey,
                "src_req": req.req_id,
            }),
            inbox=peer_ep.inbox,
            kind="fb_rts",
        )

    def _try_fb_matches(self) -> None:
        """Serve queued fallback offers against my pending receives."""
        if not self._fb_rts:
            return
        remaining = []
        for fb in self._fb_rts:
            if fb["src_req"] in self._fb_served:
                # Duplicate offer for a pull already done: only the
                # sender's FIN can have been lost -- resend it.
                yield from self._send_fb_fin(fb["src"], fb["src_req"])
                continue
            req = self._match_fb(fb)
            if req is None:
                remaining.append(fb)
                continue
            yield from self._fb_pull(fb, req)
        self._fb_rts = remaining

    def _match_fb(self, fb: dict):
        for req in self._pending.values():
            if (
                isinstance(req, OffloadRequest)
                and req.kind == "recv"
                and not req.complete
                and req.peer == fb["src"]
                and req.tag == fb["tag"]
            ):
                return req
        return None

    def _fb_pull(self, fb: dict, req: OffloadRequest) -> None:
        """Host-initiated pull of a fallback offer into my receive buffer."""
        if fb["size"] > req.size:
            raise OffloadError(
                f"fallback send of {fb['size']} bytes overflows receive of "
                f"{req.size} (src={fb['src']} tag={fb['tag']})"
            )
        handle = yield from self.ib_cache.get(req.addr, req.size)
        self.ctx.cluster.metrics.add("offload.fb_pulls")
        attempt = 1
        while True:
            transfer = yield from rdma_read(
                self.ctx,
                lkey=handle.lkey,
                local_addr=req.addr,
                rkey=fb["rkey"],
                remote_addr=fb["addr"],
                size=fb["size"],
            )
            dv = yield transfer.completed
            if getattr(dv, "via", "event") == "flow":
                # Fluid hybrid mode: this CQE was signaled from a flow
                # drain, not the exact chunk FSM (never hit in exact mode).
                self.ctx.cluster.metrics.add("offload.flow_cqes")
            if getattr(dv, "status", "ok") != "error":
                break
            attempt += 1
            if attempt > self.retry.rdma_retry_limit:
                raise OffloadError("fallback pull exceeded the RDMA re-post limit")
            yield self.sim.timeout(self.retry.rdma_backoff * attempt)
        req.fallback = True
        self._fb_served[fb["src_req"]] = fb["src"]
        self._complete_by_id(req.req_id)
        yield from self._send_fb_fin(fb["src"], fb["src_req"])

    def _send_fb_fin(self, src_rank: int, src_req: int) -> None:
        """Complete the offering sender directly (its completion sink)."""
        peer_ep = self.framework.endpoint(src_rank)
        yield self.ctx.consume(self.ctx.hca.post_overhead("host"))
        self.ctx.cluster.metrics.add("offload.fb_fins")
        self.ctx.cluster.fabric.control(
            src_node=self.ctx.node_id,
            dst_node=peer_ep.ctx.node_id,
            initiator="host",
            inbox=peer_ep.completion_sink,
            msg=src_req,
            src_mem="host",
            dst_mem="host",
            kind="fb_fin",
        )

    def waitall(self, reqs) -> None:
        for req in reqs:
            yield from self.wait(req)

    # ------------------------------------------------------------------
    # Group primitives (Listing 4, Sections VII-C/D)
    # ------------------------------------------------------------------
    def group_start(self) -> OffloadGroupRequest:
        """``Group_Offload_start``: a fresh recording request object."""
        return OffloadGroupRequest(rank=self.rank)

    def group_send(self, greq: OffloadGroupRequest, addr: int, size: int, dst: int, tag: int) -> None:
        """``Send_Goffload``: record a send (no simulated cost)."""
        greq.record(GroupOp("send", addr=addr, size=size, peer=dst, tag=tag))

    def group_recv(self, greq: OffloadGroupRequest, addr: int, size: int, src: int, tag: int) -> None:
        """``Recv_Goffload``: record a receive."""
        greq.record(GroupOp("recv", addr=addr, size=size, peer=src, tag=tag))

    def group_reduce(self, greq: OffloadGroupRequest, src_addr: int,
                     dst_addr: int, size: int) -> None:
        """Record a DPU-side accumulate: ``dst += src`` over float64 words.

        The proxy's executor performs the arithmetic on its ARM cores
        (host buffers reached through the GVMI mapping), which is what
        lets a whole reduction collective progress with zero host CPU
        inside the window.  Place it *after* the barrier that awaits the
        receive feeding ``src_addr`` -- entries execute in recorded
        order, and only a barrier orders remote data arrival.
        """
        if size % 8:
            raise OffloadError("group_reduce operates on float64 words "
                               "(size must be a multiple of 8)")
        greq.record(GroupOp("reduce", addr=src_addr, addr2=dst_addr, size=size))

    def group_barrier(self, greq: OffloadGroupRequest) -> None:
        """``Local_barrier_Goffload``: everything after starts only after
        everything before completes (local to this rank's pattern)."""
        greq.record(GroupOp("barrier"))

    def group_end(self, greq: OffloadGroupRequest) -> None:
        """``Group_Offload_end``: seal the recording."""
        if greq.state != "recording":
            raise OffloadError(f"Group_Offload_end in state {greq.state!r}")
        greq.state = "ready"

    def group_call(self, greq: OffloadGroupRequest):
        """``Group_Offload_call``: offload the recorded pattern (Fig 9).

        Cache miss: register every send buffer through the GVMI cache
        and every receive buffer through the IB cache, exchange receive
        descriptors with the sending hosts, match send entries against
        the gathered remote receive entries by (rank, tag), and ship the
        whole matched queue to the proxy as one contiguous packet.

        Cache hit: ship only the request/plan ID.
        """
        yield from self._ensure_ready()
        yield from self._admit()
        if greq.state == "recording":
            raise OffloadError("Group_Offload_call before Group_Offload_end")
        if greq.state == "inflight":
            raise OffloadError("Group_Offload_call while a previous call is in flight")
        greq.calls += 1
        greq.complete = False
        self._register_pending(greq)
        greq.state = "inflight"

        # Apply any descriptor updates that arrived since the last call
        # (keeps cached plans from going stale; see group_cache).
        yield from self._drain_inbox()

        proxy = self.framework.serving_proxy(self.rank)
        caching = self.framework.group_caching
        plan = self.group_cache.lookup(greq.signature()) if caching else None
        metrics = self.ctx.cluster.metrics
        bus = self.ctx.cluster.bus
        if plan is not None and plan.sent_to_proxy and not plan.dirty:
            metrics.add("offload.group_call_cached")
            if bus is not None:
                bus.emit("group", "call", self.ctx.trace_name, mode="cached",
                         sig=plan.plan_id, call=greq.req_id)
            if self.resilient:
                greq.resend_plan = plan
            greq.post_time = self.sim.now
            yield from post_control(
                self.ctx, proxy,
                ("group_call", {"plan_id": plan.plan_id, "host_rank": self.rank,
                                "req_id": greq.req_id,
                                "call_no": greq.calls}),
                kind="group_call",
            )
            if bus is not None:
                bus.emit("group", "offloaded", self.ctx.trace_name,
                         call=greq.req_id, sig=plan.plan_id)
            return greq

        if plan is None:
            metrics.add("offload.group_call_build")
            entries = yield from self._build_entries(greq, proxy)
            if caching:
                plan = self.group_cache.insert(greq.signature(), entries)
            else:
                from repro.offload.group_cache import HostPlan, _plan_ids

                plan = HostPlan(plan_id=next(_plan_ids), signature=greq.signature(),
                                entries=entries)
            if bus is not None:
                bus.emit("group", "call", self.ctx.trace_name, mode="build",
                         sig=plan.plan_id, call=greq.req_id)
        else:
            metrics.add("offload.group_call_reship")
            if bus is not None:
                bus.emit("group", "call", self.ctx.trace_name, mode="reship",
                         sig=plan.plan_id, call=greq.req_id)

        packet = {
            "plan_id": plan.plan_id,
            "host_rank": self.rank,
            "entries": plan.entries,
            "req_id": greq.req_id,
            "call_no": greq.calls,
        }
        nbytes = max(
            self.params.ctrl_bytes,
            len(plan.entries) * self.params.group_op_bytes,
        )
        if self.resilient:
            greq.resend_plan = plan
        greq.post_time = self.sim.now
        yield from post_control(self.ctx, proxy, ("group_plan", packet),
                                size=nbytes, kind="group_plan")
        plan.sent_to_proxy = True
        plan.dirty = False
        if bus is not None:
            bus.emit("group", "offloaded", self.ctx.trace_name,
                     call=greq.req_id, sig=plan.plan_id)
        return greq

    def group_wait(self, greq: OffloadGroupRequest):
        """``Group_Wait`` (alias of :meth:`wait` for group requests)."""
        yield from self.wait(greq)

    # ------------------------------------------------------------------
    # group_call internals
    # ------------------------------------------------------------------
    def _build_entries(self, greq: OffloadGroupRequest, proxy: ProcessContext) -> list[dict]:
        gvmi = gvmi_id_of(proxy)
        entries: list[dict] = []
        # Per-op bookkeeping cost of walking the recorded queue.
        yield self.ctx.consume(self.params.host_cache_lookup * max(1, len(greq.ops)))

        # Pass 1: register local buffers; send my receive descriptors to
        # the hosts that will write into them.
        needed: dict[tuple[int, int], int] = {}  # (dst=peer, tag) -> count needed
        staged = self.framework.mode == "staged"
        for op in greq.ops:
            if op.kind == "send":
                if staged:
                    handle = yield from self.ib_cache.get(op.addr, op.size)
                    entry = {
                        "kind": "send", "addr": op.addr, "size": op.size,
                        "dst": op.peer, "tag": op.tag,
                        "src_rkey": handle.rkey,
                        "dst_addr": None, "rkey": None,  # resolved in pass 2
                    }
                else:
                    mkey = yield from self.gvmi_cache.get(proxy, gvmi, op.addr, op.size)
                    entry = {
                        "kind": "send", "addr": op.addr, "size": op.size,
                        "dst": op.peer, "tag": op.tag,
                        "reg_addr": mkey.addr, "reg_size": mkey.size,
                        "mkey": mkey.key, "gvmi_id": gvmi,
                        "dst_addr": None, "rkey": None,  # resolved in pass 2
                    }
                entries.append(entry)
                needed[(op.peer, op.tag)] = needed.get((op.peer, op.tag), 0) + 1
            elif op.kind == "recv":
                handle = yield from self.ib_cache.get(op.addr, op.size)
                entries.append({
                    "kind": "recv", "addr": op.addr, "size": op.size,
                    "src": op.peer, "tag": op.tag,
                })
                peer_ep = self.framework.endpoint(op.peer)
                desc = {
                    "src": op.peer, "dst": self.rank, "tag": op.tag,
                    "addr": op.addr, "size": op.size, "rkey": handle.rkey,
                }
                if self.resilient:
                    # Stamp for receiver-side dedupe and keep for replay
                    # should the sender ask (gdesc_req) after a loss.
                    desc["desc_id"] = next(_desc_ids)
                    self._gdesc_sent.setdefault((op.peer, op.tag), []).append(desc)
                yield from post_control(
                    self.ctx, peer_ep.ctx,
                    ("gdesc", desc),
                    inbox=peer_ep.inbox,
                    kind="gdesc",
                )
            elif op.kind == "reduce":
                # Both buffers are this rank's own memory; the proxy
                # reaches them through the GVMI mapping it already holds,
                # so no registration or descriptor exchange is needed.
                entries.append({
                    "kind": "reduce", "addr": op.addr,
                    "dst_addr": op.addr2, "size": op.size,
                })
            else:
                entries.append({"kind": "barrier"})

        # Pass 2: gather remote receive descriptors for my sends and
        # match by (destination rank, tag) -- Fig 9's matching step.
        for entry in entries:
            if entry["kind"] != "send":
                continue
            key = (entry["dst"], entry["tag"])
            desc = yield from self._await_descriptor(key)
            if desc["size"] < entry["size"]:
                raise OffloadError(
                    f"group send of {entry['size']} bytes overflows remote "
                    f"receive of {desc['size']} (dst={entry['dst']} tag={entry['tag']})"
                )
            entry["dst_addr"] = desc["addr"]
            entry["rkey"] = desc["rkey"]
        return entries

    def _await_descriptor(self, key: tuple[int, int]) -> dict:
        while True:
            bucket = self._recv_descs.get(key)
            if bucket:
                return bucket.pop(0)
            if not self.resilient:
                item = yield self.inbox.get()
                yield from self._handle_inbox_item(item)
            else:
                yield from self._await_descriptor_resilient(key)

    def _await_descriptor_resilient(self, key: tuple[int, int]) -> None:
        """One bounded wait for a descriptor; nudges the peer on timeout.

        The gdesc may have been dropped in flight, so the get races a
        timeout; on expiry a ``gdesc_req`` asks the receiving endpoint to
        replay everything it recorded for me under this (rank, tag).
        """
        timeout = self.retry.timeout
        while not self._recv_descs.get(key):
            get_ev = self.inbox.get()
            yield self.sim.any_of([get_ev, self.sim.timeout(timeout)])
            if get_ev.triggered:
                yield from self._handle_inbox_item(get_ev.value)
                return
            self.inbox.cancel(get_ev)
            peer_ep = self.framework.endpoint(key[0])
            self.ctx.cluster.metrics.add("offload.gdesc_reqs")
            yield from post_control(
                self.ctx, peer_ep.ctx,
                ("gdesc_req", {"src": self.rank, "tag": key[1]}),
                inbox=peer_ep.inbox,
                kind="gdesc_req",
            )
            timeout = min(timeout * self.retry.backoff, self.retry.max_timeout)

    def _drain_inbox(self):
        while True:
            ok, item = self.inbox.try_get()
            if not ok:
                return
            yield from self._handle_inbox_item(item)

    def _handle_inbox_item(self, item):
        kind = item[0]
        yield self.ctx.consume(self.params.host_handler_cost)
        if kind == "gdesc":
            desc = item[1]
            desc_id = desc.get("desc_id")
            if desc_id is not None:
                if desc_id in self._gdesc_seen:
                    self.ctx.cluster.metrics.add("offload.dup_gdesc_dropped")
                    return
                self._gdesc_seen.add(desc_id)
            key = (desc["dst"], desc["tag"])
            self._recv_descs.setdefault(key, []).append(desc)
            # Patch cached plans if this supersedes an old descriptor.
            self.group_cache.patch_descriptor(desc["src"], desc["tag"], desc["dst"], desc)
        elif kind == "gdesc_req":
            info = item[1]
            # A sender never saw one of my descriptors: replay everything
            # recorded for it (desc_id dedupe on its side keeps this
            # idempotent).
            peer_ep = self.framework.endpoint(info["src"])
            for desc in self._gdesc_sent.get((info["src"], info["tag"]), []):
                self.ctx.cluster.metrics.add("offload.gdesc_replays")
                yield from post_control(
                    self.ctx, peer_ep.ctx, ("gdesc", desc),
                    inbox=peer_ep.inbox, kind="gdesc",
                )
        elif kind == "plan_nack":
            info = item[1]
            self.ctx.cluster.metrics.add("offload.plan_nacks")
            stale = info.get("stale", False)
            if stale:
                # The proxy faulted on a revoked key: the saved entries
                # are poison, drop the plan entirely and force a full
                # rebuild on the next retransmit.
                self.group_cache.drop_plan(info["plan_id"])
            else:
                self.group_cache.invalidate(info["plan_id"])
            req = self._pending.get(info["req_id"])
            call_no = info.get("call_no")
            if (req is not None and call_no is not None
                    and getattr(req, "calls", call_no) != call_no):
                # NACK for a superseded call of this re-used request.
                return
            plan = getattr(req, "resend_plan", None)
            if plan is not None and plan.plan_id == info["plan_id"]:
                plan.sent_to_proxy = False
                plan.dirty = True
                if stale:
                    req.needs_rebuild = True
        elif kind == "fb_rts":
            self._fb_rts.append(item[1])
        else:  # pragma: no cover - defensive
            raise OffloadError(f"endpoint: unknown inbox item {kind!r}")
