"""The "Proposed" backend: the paper's framework behind the common API.

* Inter-node point-to-point -> **Basic primitives** (``Send_Offload`` /
  ``Recv_Offload``): the DPU proxy progresses the transfer, the host
  only observes the completion counter.
* Intra-node point-to-point -> host shared memory (the paper does not
  offload intra-node traffic; Section VIII-A notes this is what keeps
  3DStencil overlap below 100%).
* ``ialltoall`` / ``ibcast`` -> **Group primitives**, with the recorded
  request object reused across iterations so the Section VII-D caches
  collapse repeat calls to a single request-ID message.  ``ibcast``
  uses the ring pipeline -- the pattern of paper Listing 5 -- executed
  entirely by the proxies.
"""

from __future__ import annotations

from repro.baselines.base import CommBackend
from repro.mpi.datatypes import CollectiveRequest, MpiRequest
from repro.offload.requests import OffloadGroupRequest, OffloadRequest

__all__ = ["ProposedBackend"]

#: Reserved tags for the backend's collective patterns.
_A2A_TAG = 23
_BCAST_TAG = 29


class ProposedBackend(CommBackend):
    name = "proposed"

    def __init__(self, stack, rank):
        super().__init__(stack, rank)
        assert stack.framework is not None and stack.framework.mode == "gvmi"
        self.ep = stack.framework.endpoint(rank)
        #: Persistent group requests keyed by the pattern identity, so
        #: iteration 2+ of an application collective is a cache hit.
        self._patterns: dict[tuple, OffloadGroupRequest] = {}

    # -- p2p ---------------------------------------------------------------
    def _isend(self, comm, dst, addr, size, tag):
        dst_world = comm.world_rank(dst)
        if self.ctx.cluster.same_node(self.rank, dst_world):
            return (yield from self.rt._isend(comm, dst, addr, size, tag))
        return (yield from self.ep.send_offload(addr, size, dst=dst_world, tag=tag))

    def _irecv(self, comm, src, addr, size, tag):
        src_world = comm.world_rank(src)
        if self.ctx.cluster.same_node(self.rank, src_world):
            return (yield from self.rt._irecv(comm, src, addr, size, tag))
        return (yield from self.ep.recv_offload(addr, size, src=src_world, tag=tag))

    def _wait(self, req):
        if isinstance(req, (MpiRequest, CollectiveRequest)):
            yield from self.rt._wait(req)
        elif isinstance(req, (OffloadRequest, OffloadGroupRequest)):
            yield from self.ep.wait(req)
        else:
            raise TypeError(f"cannot wait on {type(req).__name__}")

    def _test(self, req):
        if isinstance(req, (MpiRequest, CollectiveRequest)):
            yield self.ctx.consume(self.rt.params.mpi_call_overhead)
            yield from self.rt._drain()
        # Offload requests complete via the completion counter; testing
        # them is a host-memory load, no protocol work.
        return bool(req.complete)

    # -- collectives over Group primitives ------------------------------------
    def _ialltoall(self, comm, send_addr, recv_addr, block):
        me = comm.rank_of(self.rank)
        p = comm.size
        yield from self.rt.copy_local(send_addr + me * block, recv_addr + me * block, block)
        key = ("a2a", comm.comm_id, send_addr, recv_addr, block)
        greq = self._patterns.get(key)
        if greq is None:
            greq = self.ep.group_start()
            for dist in range(1, p):
                dst = (me + dist) % p
                src = (me - dist) % p
                self.ep.group_send(greq, send_addr + dst * block, block,
                                   dst=comm.world_rank(dst), tag=_A2A_TAG)
                self.ep.group_recv(greq, recv_addr + src * block, block,
                                   src=comm.world_rank(src), tag=_A2A_TAG)
            self.ep.group_end(greq)
            self._patterns[key] = greq
        yield from self.ep.group_call(greq)
        return greq

    def _ibcast(self, comm, root, addr, size):
        me = comm.rank_of(self.rank)
        p = comm.size
        key = ("bcast", comm.comm_id, root, addr, size)
        greq = self._patterns.get(key)
        if greq is None:
            greq = self.ep.group_start()
            if p > 1:
                right = comm.world_rank((me + 1) % p)
                left = comm.world_rank((me - 1) % p)
                last = (root - 1) % p
                if me == root:
                    self.ep.group_send(greq, addr, size, dst=right, tag=_BCAST_TAG)
                    self.ep.group_barrier(greq)
                else:
                    self.ep.group_recv(greq, addr, size, src=left, tag=_BCAST_TAG)
                    self.ep.group_barrier(greq)
                    if me != last:
                        self.ep.group_send(greq, addr, size, dst=right, tag=_BCAST_TAG)
            self.ep.group_end(greq)
            self._patterns[key] = greq
        yield from self.ep.group_call(greq)
        return greq
