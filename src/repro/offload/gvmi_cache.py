"""Array-of-BST GVMI registration caches (paper Section VII-B).

Two caches with the same two-level shape -- a first level indexed by
remote rank (an array, "because there is only a finite number of ranks
allowed in a communicator") and a second level that is a BST indexed by
``(address, size)``:

* the **host-side** cache memoises ``host_gvmi_register`` results
  (mkeys).  Its array is indexed by the *mapped DPU proxy's* global
  rank, because the GVMI-ID -- an input to the registration -- is a
  function of which proxy will move the data.
* the **DPU-side** cache memoises ``cross_register`` results (mkey2s).
  Its array is indexed by the *host source rank*.  The paper's key
  observation makes this sound: for a given host rank, the mkey is a
  pure function of ``(addr, size, gvmi_id)``, so ``(rank, addr, size)``
  uniquely identifies the cross-registration -- the extra inputs
  (GVMI-ID, mkey) need not be part of the key.  We *verify* that
  observation instead of assuming it: a cached entry whose stored mkey
  disagrees with the one presented is treated as stale and re-registered
  (and counted, so tests can assert it never happens in normal runs).
"""

from __future__ import annotations

from typing import Optional

from repro.hw.node import ProcessContext
from repro.offload.bst import AvlTree
from repro.verbs.gvmi import cross_register, host_gvmi_register
from repro.verbs.mr import KeyInfo

__all__ = ["HostGvmiCache", "DpuGvmiCache"]


class _ArrayOfBsts:
    """First level: fixed-size array by rank; second level: AVL by (addr, size)."""

    def __init__(self, slots: int):
        self._slots: list[Optional[AvlTree]] = [None] * slots

    def tree(self, index: int) -> AvlTree:
        t = self._slots[index]
        if t is None:
            t = AvlTree()
            self._slots[index] = t
        return t

    def peek(self, index: int, addr: int, size: int):
        t = self._slots[index]
        return None if t is None else t.find((addr, size))

    def total_entries(self) -> int:
        return sum(len(t) for t in self._slots if t is not None)

    def trees(self):
        return [t for t in self._slots if t is not None]


class HostGvmiCache:
    """Host-side mkey cache for one rank: [proxy rank] -> BST[(addr, size)].

    With a ``capacity`` (total entries across all slots; default
    ``params.gvmi_cache_capacity``) the least-recently-used entry is
    evicted on overflow and its mkey revoked -- a proxy still holding
    the derived mkey2 keeps working until the host's *next* registration
    of that range mints a fresh mkey, at which point the DPU cache's
    mkey-mismatch check catches the staleness (paper Section VII-B).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        enabled: bool = True,
        capacity: Optional[int] = None,
    ):
        if ctx.kind != "host":
            raise ValueError("HostGvmiCache lives on host processes")
        self.ctx = ctx
        #: Ablation switch: disabled -> every get registers afresh.
        self.enabled = enabled
        if capacity is None:
            capacity = ctx.cluster.params.gvmi_cache_capacity
        self.capacity = capacity
        n_proxies = len(ctx.cluster.proxies)
        self._store = _ArrayOfBsts(n_proxies)
        #: LRU order over (slot, addr, size); insertion order = age.
        self._lru: dict[tuple[int, int, int], None] = {}
        #: Covering-scan memo: (slot, gvmi_id, addr, size) -> entry key,
        #: recorded only when exactly one cached entry covers the
        #: request (the scan's winner is order-independent then).
        #: Cleared on any structural change; LRU touches keep it valid.
        self._cover_memo: dict[tuple, tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        ctx.free_listeners.append(self._on_free)

    def _touch(self, slot: int, addr: int, size: int) -> None:
        key = (slot, addr, size)
        self._lru.pop(key, None)
        self._lru[key] = None

    def get(self, proxy: ProcessContext, gvmi_id: int, addr: int, size: int):
        """mkey KeyInfo for (addr, size) under ``proxy``'s GVMI.

        A generator: ``info = yield from cache.get(...)``; charges the
        lookup cost, and the registration cost on a miss.
        """
        metrics = self.ctx.cluster.metrics
        if not self.enabled:
            self.misses += 1
            metrics.add("gvmi_cache.host.miss")
            return (yield from host_gvmi_register(self.ctx, addr, size, gvmi_id))
        yield self.ctx.consume(self.ctx.cluster.params.host_cache_lookup)
        slot = proxy.global_id
        tree = self._store.tree(slot)
        entry: Optional[KeyInfo] = tree.find((addr, size))
        hit_key = (addr, size)
        if entry is None:
            memo_key = self._cover_memo.get((slot, gvmi_id, addr, size))
            if memo_key is not None:
                entry = tree.find(memo_key)
                hit_key = memo_key
            else:
                # Like production registration caches, a cached mkey whose
                # range *covers* the request is a hit (HPL's shrinking
                # panels keep hitting the first, largest registration).
                unique = True
                for (base, length), info in tree.items():
                    if base <= addr and addr + size <= base + length and info.gvmi_id == gvmi_id:
                        if entry is None:
                            entry = info
                            hit_key = (base, length)
                        else:
                            unique = False
                            break
                if entry is not None and unique:
                    self._cover_memo[(slot, gvmi_id, addr, size)] = hit_key
        bus = self.ctx.cluster.bus
        if entry is not None:
            self.hits += 1
            metrics.add("gvmi_cache.host.hit")
            self._touch(slot, *hit_key)
            if bus is not None:
                bus.emit("cache", "hit", self.ctx.trace_name,
                         cache="gvmi.host", size=size)
            return entry
        self.misses += 1
        metrics.add("gvmi_cache.host.miss")
        if bus is not None:
            bus.emit("cache", "miss", self.ctx.trace_name,
                     cache="gvmi.host", size=size)
        info = yield from host_gvmi_register(self.ctx, addr, size, gvmi_id)
        tree.insert((addr, size), info)
        self._cover_memo.clear()
        self._touch(slot, addr, size)
        self._evict_over_capacity()
        return info

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        from repro.verbs.rdma import verbs_state

        keys = verbs_state(self.ctx.cluster).keys
        metrics = self.ctx.cluster.metrics
        bus = self.ctx.cluster.bus
        while len(self._lru) > self.capacity:
            slot, base, length = next(iter(self._lru))
            del self._lru[(slot, base, length)]
            self._cover_memo.clear()
            tree = self._store.tree(slot)
            info = tree.find((base, length))
            tree.remove((base, length))
            if info is not None and keys.is_live(info.key):
                keys.revoke(info.key)
            self.evictions += 1
            metrics.add("gvmi_cache.host.evict")
            if bus is not None:
                bus.emit("cache", "evict", self.ctx.trace_name,
                         cache="gvmi.host", size=length)

    def peek(self, proxy_rank: int, addr: int, size: int):
        return self._store.peek(proxy_rank, addr, size)

    def invalidate(self, proxy_rank: int, addr: int, size: int) -> bool:
        t = self._store._slots[proxy_rank]
        self._lru.pop((proxy_rank, addr, size), None)
        self._cover_memo.clear()
        return bool(t and t.remove((addr, size)))

    def invalidate_range(self, addr: int, size: int) -> int:
        """Drop every entry overlapping [addr, addr+size), all slots.

        Runs from the free protocol -- keys are already revoked there,
        so entries are simply dropped.
        """
        dropped = 0
        for slot, tree in enumerate(self._store._slots):
            if tree is None:
                continue
            doomed = [
                (base, length)
                for (base, length), _info in tree.items()
                if base < addr + size and addr < base + length
            ]
            for key in doomed:
                tree.remove(key)
                self._lru.pop((slot, *key), None)
                dropped += 1
        if dropped:
            self._cover_memo.clear()
        return dropped

    def _on_free(self, addr: int, size: int) -> None:
        self.invalidate_range(addr, size)

    @property
    def entries(self) -> int:
        return self._store.total_entries()

    def check_invariants(self) -> None:
        for t in self._store.trees():
            t.check_invariants()


class DpuGvmiCache:
    """DPU-side mkey2 cache for one proxy: [host rank] -> BST[(addr, size)].

    With a ``capacity`` (default ``params.gvmi_cache_capacity``) the
    least-recently-used mkey2 is evicted and revoked on overflow --
    this is the scarce-DPU-memory regime the array-of-BST design exists
    to manage.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        enabled: bool = True,
        capacity: Optional[int] = None,
    ):
        if ctx.kind != "dpu":
            raise ValueError("DpuGvmiCache lives on DPU proxy processes")
        self.ctx = ctx
        #: Ablation switch: disabled -> every get cross-registers afresh.
        self.enabled = enabled
        if capacity is None:
            capacity = ctx.cluster.params.gvmi_cache_capacity
        self.capacity = capacity
        self._store = _ArrayOfBsts(ctx.cluster.world_size)
        #: LRU order over (host rank, addr, size).
        self._lru: dict[tuple[int, int, int], None] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Times a cached entry's mkey disagreed with the presented one
        #: (zero in steady state; fires legitimately when the host side
        #: re-registers after eviction or free -- see module docstring).
        self.stale_detected = 0

    def _touch(self, host_rank: int, addr: int, size: int) -> None:
        key = (host_rank, addr, size)
        self._lru.pop(key, None)
        self._lru[key] = None

    def get(self, host_rank: int, gvmi_id: int, mkey: int, addr: int, size: int):
        """mkey2 KeyInfo, cross-registering on miss (a generator)."""
        metrics = self.ctx.cluster.metrics
        if not self.enabled:
            self.misses += 1
            metrics.add("gvmi_cache.dpu.miss")
            return (yield from cross_register(self.ctx, addr, size, gvmi_id, mkey))
        yield self.ctx.consume(self.ctx.cluster.params.dpu_cache_lookup)
        tree = self._store.tree(host_rank)
        entry: Optional[KeyInfo] = tree.find((addr, size))
        bus = self.ctx.cluster.bus
        if entry is not None:
            if entry.parent_mkey == mkey:
                self.hits += 1
                metrics.add("gvmi_cache.dpu.hit")
                self._touch(host_rank, addr, size)
                if bus is not None:
                    bus.emit("cache", "hit", self.ctx.trace_name,
                             cache="gvmi.dpu", size=size)
                return entry
            # The paper argues this cannot happen; verify, don't assume.
            self.stale_detected += 1
            metrics.add("gvmi_cache.dpu.stale")
            if bus is not None:
                bus.emit("cache", "stale", self.ctx.trace_name,
                         cache="gvmi.dpu", size=size)
            tree.remove((addr, size))
            self._lru.pop((host_rank, addr, size), None)
        self.misses += 1
        metrics.add("gvmi_cache.dpu.miss")
        if bus is not None:
            bus.emit("cache", "miss", self.ctx.trace_name,
                     cache="gvmi.dpu", size=size)
        info = yield from cross_register(self.ctx, addr, size, gvmi_id, mkey)
        tree.insert((addr, size), info)
        self._touch(host_rank, addr, size)
        self._evict_over_capacity()
        return info

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        from repro.verbs.rdma import verbs_state

        keys = verbs_state(self.ctx.cluster).keys
        metrics = self.ctx.cluster.metrics
        bus = self.ctx.cluster.bus
        while len(self._lru) > self.capacity:
            host_rank, base, length = next(iter(self._lru))
            del self._lru[(host_rank, base, length)]
            tree = self._store.tree(host_rank)
            info = tree.find((base, length))
            tree.remove((base, length))
            if info is not None and keys.is_live(info.key):
                keys.revoke(info.key)
            self.evictions += 1
            metrics.add("gvmi_cache.dpu.evict")
            if bus is not None:
                bus.emit("cache", "evict", self.ctx.trace_name,
                         cache="gvmi.dpu", size=length)

    def peek(self, host_rank: int, addr: int, size: int):
        return self._store.peek(host_rank, addr, size)

    def invalidate(self, host_rank: int, addr: int, size: int) -> bool:
        """Drop one entry (stale-key recovery); no revoke (already dead)."""
        t = self._store._slots[host_rank]
        self._lru.pop((host_rank, addr, size), None)
        return bool(t and t.remove((addr, size)))

    @property
    def entries(self) -> int:
        return self._store.total_entries()

    def check_invariants(self) -> None:
        for t in self._store.trees():
            t.check_invariants()
