"""Request caches for Group primitives (paper Section VII-D).

Host side: keyed by the recorded pattern's signature.  An entry holds
the fully-built plan (entries with resolved mkeys/rkeys and gathered
remote buffer descriptors) plus the flag the paper describes --
"whether request details were sent to the proxy rank".  On a hit the
host sends the proxy *only the request/plan ID*, collapsing the
per-call metadata exchange to one tiny message.

DPU side: keyed by plan ID.  An entry holds the Group_op queue with the
GVMI cache entries already attached, "saving the DPU process from
searching the GVMI cache for each Group_op entry".

A production concern the paper glosses over is handled explicitly: if a
*receiver* re-records its side with different buffers, senders holding a
cached plan would write to stale addresses.  Incoming descriptor
updates therefore *patch* matching cached plans and mark them dirty, so
the next call re-ships the corrected plan to the proxy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["HostPlan", "HostGroupCache", "DpuPlanCache"]

_plan_ids = itertools.count(1)


@dataclass
class HostPlan:
    """A prepared group pattern, ready to ship to the proxy."""

    plan_id: int
    signature: tuple
    #: Prepared entries (dicts; see api._build_entries for the schema).
    entries: list[dict]
    #: True once the proxy holds a current copy of the entries.
    sent_to_proxy: bool = False
    #: True if a descriptor update invalidated the proxy's copy.
    dirty: bool = False


class HostGroupCache:
    """Per-endpoint cache of prepared group plans.

    With a ``capacity`` the least-recently-called plan is dropped on
    overflow (plans hold no registrations of their own -- the keys live
    in the GVMI/IB caches -- so dropping is free); a later call on its
    pattern simply rebuilds.  Plans whose entries reference a freed
    local buffer are dropped via the owning context's free listeners.
    """

    def __init__(self, ctx=None, capacity: Optional[int] = None) -> None:
        self.ctx = ctx
        if capacity is None and ctx is not None:
            capacity = ctx.cluster.params.group_cache_capacity
        self.capacity = capacity
        #: Insertion order is LRU order (refreshed on lookup hits).
        self._by_sig: dict[tuple, HostPlan] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if ctx is not None:
            ctx.free_listeners.append(self._on_free)

    def lookup(self, signature: tuple) -> Optional[HostPlan]:
        plan = self._by_sig.get(signature)
        if plan is not None:
            self.hits += 1
            del self._by_sig[signature]
            self._by_sig[signature] = plan
        else:
            self.misses += 1
        return plan

    def insert(self, signature: tuple, entries: list[dict]) -> HostPlan:
        plan = HostPlan(plan_id=next(_plan_ids), signature=signature, entries=entries)
        self._by_sig[signature] = plan
        self._evict_over_capacity()
        return plan

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        while len(self._by_sig) > self.capacity:
            sig = next(iter(self._by_sig))
            victim = self._by_sig.pop(sig)
            self.evictions += 1
            if self.ctx is not None:
                cluster = self.ctx.cluster
                cluster.metrics.add("offload.group_cache_evictions")
                if cluster.bus is not None:
                    cluster.bus.emit(
                        "cache", "evict", self.ctx.trace_name,
                        cache="group.host", plan=victim.plan_id,
                    )

    def drop_plan(self, plan_id: int) -> bool:
        """Remove a plan entirely (stale-plan recovery); True if found."""
        for sig, plan in list(self._by_sig.items()):
            if plan.plan_id == plan_id:
                del self._by_sig[sig]
                return True
        return False

    def drop_range(self, addr: int, size: int) -> int:
        """Drop plans whose entries touch local range [addr, addr+size)."""
        doomed = [
            sig
            for sig, plan in self._by_sig.items()
            if any(
                e.get("addr") is not None
                and e["addr"] < addr + size
                and addr < e["addr"] + e["size"]
                for e in plan.entries
                if e["kind"] in ("send", "recv")
            )
        ]
        for sig in doomed:
            del self._by_sig[sig]
        return len(doomed)

    def _on_free(self, addr: int, size: int) -> None:
        self.drop_range(addr, size)

    def patch_descriptor(self, src_rank: int, tag: int, dst_rank: int, desc: dict) -> int:
        """Apply an updated remote receive descriptor to cached plans.

        Returns the number of plans patched (and marked dirty).
        """
        patched = 0
        for plan in self._by_sig.values():
            changed = False
            for entry in plan.entries:
                if (
                    entry["kind"] == "send"
                    and entry["dst"] == dst_rank
                    and entry["tag"] == tag
                    and (entry["dst_addr"] != desc["addr"] or entry["rkey"] != desc["rkey"])
                ):
                    entry["dst_addr"] = desc["addr"]
                    entry["rkey"] = desc["rkey"]
                    changed = True
            if changed:
                plan.dirty = True
                plan.sent_to_proxy = False
                patched += 1
        return patched

    def invalidate(self, plan_id: int) -> bool:
        """Mark a plan as no longer held by the proxy (NACK handling).

        The next call on its pattern re-ships the full entries instead
        of the plan-ID-only fast path.  True if the plan was found.
        """
        for plan in self._by_sig.values():
            if plan.plan_id == plan_id:
                plan.sent_to_proxy = False
                plan.dirty = True
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_sig)


class DpuPlanCache:
    """Per-proxy cache: plan_id -> prepared Group_op queue.

    With a ``capacity`` the least-recently-fetched plan is dropped on
    overflow.  A host calling an evicted plan by ID gets a plan_nack
    and re-ships the full entries -- which is why a bounded plan cache
    requires resilient mode (docs/RESOURCES.md).
    """

    def __init__(self, ctx=None, capacity: Optional[int] = None) -> None:
        self.ctx = ctx
        if capacity is None and ctx is not None:
            capacity = ctx.cluster.params.plan_cache_capacity
        self.capacity = capacity
        #: Insertion order is LRU order (refreshed on fetch/store).
        self._plans: dict[int, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def store(self, plan_id: int, plan: dict[str, Any]) -> None:
        self._plans.pop(plan_id, None)
        self._plans[plan_id] = plan
        self._evict_over_capacity()

    def fetch(self, plan_id: int) -> Optional[dict[str, Any]]:
        plan = self._plans.get(plan_id)
        if plan is not None:
            self.hits += 1
            del self._plans[plan_id]
            self._plans[plan_id] = plan
        else:
            self.misses += 1
        return plan

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        while len(self._plans) > self.capacity:
            victim_id = next(iter(self._plans))
            del self._plans[victim_id]
            self.evictions += 1
            if self.ctx is not None:
                cluster = self.ctx.cluster
                cluster.metrics.add("proxy.plan_evictions")
                if cluster.bus is not None:
                    cluster.bus.emit(
                        "cache", "evict", self.ctx.trace_name,
                        cache="plan.dpu", plan=victim_id,
                    )

    def drop(self, plan_id: int) -> bool:
        """Remove one plan (stale-plan recovery); True if it existed."""
        return self._plans.pop(plan_id, None) is not None

    def __len__(self) -> int:
        return len(self._plans)
