"""Request caches for Group primitives (paper Section VII-D).

Host side: keyed by the recorded pattern's signature.  An entry holds
the fully-built plan (entries with resolved mkeys/rkeys and gathered
remote buffer descriptors) plus the flag the paper describes --
"whether request details were sent to the proxy rank".  On a hit the
host sends the proxy *only the request/plan ID*, collapsing the
per-call metadata exchange to one tiny message.

DPU side: keyed by plan ID.  An entry holds the Group_op queue with the
GVMI cache entries already attached, "saving the DPU process from
searching the GVMI cache for each Group_op entry".

A production concern the paper glosses over is handled explicitly: if a
*receiver* re-records its side with different buffers, senders holding a
cached plan would write to stale addresses.  Incoming descriptor
updates therefore *patch* matching cached plans and mark them dirty, so
the next call re-ships the corrected plan to the proxy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["HostPlan", "HostGroupCache", "DpuPlanCache"]

_plan_ids = itertools.count(1)


@dataclass
class HostPlan:
    """A prepared group pattern, ready to ship to the proxy."""

    plan_id: int
    signature: tuple
    #: Prepared entries (dicts; see api._build_entries for the schema).
    entries: list[dict]
    #: True once the proxy holds a current copy of the entries.
    sent_to_proxy: bool = False
    #: True if a descriptor update invalidated the proxy's copy.
    dirty: bool = False


class HostGroupCache:
    """Per-endpoint cache of prepared group plans."""

    def __init__(self) -> None:
        self._by_sig: dict[tuple, HostPlan] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, signature: tuple) -> Optional[HostPlan]:
        plan = self._by_sig.get(signature)
        if plan is not None:
            self.hits += 1
        else:
            self.misses += 1
        return plan

    def insert(self, signature: tuple, entries: list[dict]) -> HostPlan:
        plan = HostPlan(plan_id=next(_plan_ids), signature=signature, entries=entries)
        self._by_sig[signature] = plan
        return plan

    def patch_descriptor(self, src_rank: int, tag: int, dst_rank: int, desc: dict) -> int:
        """Apply an updated remote receive descriptor to cached plans.

        Returns the number of plans patched (and marked dirty).
        """
        patched = 0
        for plan in self._by_sig.values():
            changed = False
            for entry in plan.entries:
                if (
                    entry["kind"] == "send"
                    and entry["dst"] == dst_rank
                    and entry["tag"] == tag
                    and (entry["dst_addr"] != desc["addr"] or entry["rkey"] != desc["rkey"])
                ):
                    entry["dst_addr"] = desc["addr"]
                    entry["rkey"] = desc["rkey"]
                    changed = True
            if changed:
                plan.dirty = True
                plan.sent_to_proxy = False
                patched += 1
        return patched

    def invalidate(self, plan_id: int) -> bool:
        """Mark a plan as no longer held by the proxy (NACK handling).

        The next call on its pattern re-ships the full entries instead
        of the plan-ID-only fast path.  True if the plan was found.
        """
        for plan in self._by_sig.values():
            if plan.plan_id == plan_id:
                plan.sent_to_proxy = False
                plan.dirty = True
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_sig)


class DpuPlanCache:
    """Per-proxy cache: plan_id -> prepared Group_op queue."""

    def __init__(self) -> None:
        self._plans: dict[int, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    def store(self, plan_id: int, plan: dict[str, Any]) -> None:
        self._plans[plan_id] = plan

    def fetch(self, plan_id: int) -> Optional[dict[str, Any]]:
        plan = self._plans.get(plan_id)
        if plan is not None:
            self.hits += 1
        else:
            self.misses += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)
