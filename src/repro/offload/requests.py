"""Request objects and recorded operations for the offload APIs."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["OffloadError", "OffloadRequest", "GroupOp", "OffloadGroupRequest"]

_ids = itertools.count()


class OffloadError(RuntimeError):
    """Semantic misuse of the offload API."""


@dataclass
class OffloadRequest:
    """Handle for one Basic-primitive operation (Listing 2's ``req``)."""

    kind: str  # "send" | "recv"
    rank: int
    peer: int
    tag: int
    addr: int
    size: int
    req_id: int = field(default_factory=lambda: next(_ids))
    complete: bool = False
    complete_time: Optional[float] = None
    #: When the request's control message was handed to the fabric
    #: (stamped by the endpoint; feeds the post->completion histogram).
    post_time: Optional[float] = None
    #: Triggered (by the proxy's completion write) when complete.
    event: Any = None
    #: Retransmit payload saved by the endpoint when resilience is on:
    #: ``(proxy_ctx, ("rts"|"rtr", info))``.
    resend: Any = None
    #: True once this request left the offload path (liveness deadline
    #: missed) and is being completed host-to-host instead.
    fallback: bool = False

    def __hash__(self) -> int:
        return self.req_id


@dataclass(frozen=True)
class GroupOp:
    """One recorded entry of a group pattern (the paper's ``Group_op``)."""

    #: "send" | "recv" | "barrier" | "reduce"
    kind: str
    addr: int = 0
    size: int = 0
    #: Destination rank (send) / source rank (recv); -1 for barriers.
    peer: int = -1
    tag: int = 0
    #: Second address operand: the accumulator of a "reduce" op
    #: (``addr`` is then the source the DPU folds in); 0 otherwise.
    addr2: int = 0

    def signature(self) -> tuple:
        return (self.kind, self.addr, self.size, self.peer, self.tag, self.addr2)


@dataclass
class OffloadGroupRequest:
    """Handle for a recorded group pattern (Listing 4's request object).

    Lifecycle (enforced):
    ``recording`` --Group_Offload_end--> ``ready``
    --Group_Offload_call--> ``inflight`` --completion--> ``done``
    (and back to ``ready``: a recorded pattern may be re-called, which
    is what makes the Section VII-D caches pay off).
    """

    rank: int
    req_id: int = field(default_factory=lambda: next(_ids))
    state: str = "recording"
    ops: list[GroupOp] = field(default_factory=list)
    complete: bool = False
    complete_time: Optional[float] = None
    #: When the latest Group_Offload_call was shipped to the proxy.
    post_time: Optional[float] = None
    event: Any = None
    #: Times Group_Offload_call has been issued on this request.
    calls: int = 0
    #: The HostPlan behind the in-flight call (saved when resilience is
    #: on, so Group_Wait can retransmit the call or re-ship the plan).
    resend_plan: Any = None
    #: Set by a ``stale``-flagged plan_nack: the proxy faulted on a
    #: revoked key, so the next retransmit must rebuild the plan from
    #: scratch (fresh registrations + descriptor exchange) rather than
    #: re-ship the saved entries.
    needs_rebuild: bool = False

    def record(self, op: GroupOp) -> None:
        if self.state != "recording":
            raise OffloadError(
                f"cannot record into a group request in state {self.state!r} "
                "(Group_Offload_end already called?)"
            )
        self.ops.append(op)

    def signature(self) -> tuple:
        """Identity of the recorded pattern for the request caches."""
        return (self.rank, tuple(op.signature() for op in self.ops))

    @property
    def n_sends(self) -> int:
        return sum(1 for op in self.ops if op.kind == "send")

    @property
    def n_recvs(self) -> int:
        return sum(1 for op in self.ops if op.kind == "recv")

    @property
    def n_barriers(self) -> int:
        return sum(1 for op in self.ops if op.kind == "barrier")

    def __hash__(self) -> int:
        return self.req_id
