"""Offloaded collectives: Ibcast / Iallgather / Iallreduce as Group DAGs.

Each builder records a complete collective round structure into one
:class:`~repro.offload.requests.OffloadGroupRequest` per rank.  Once the
pattern is shipped (``Group_Offload_call``) the whole collective --
message posting, barrier counters, and for Iallreduce the arithmetic
itself (DPU-side :meth:`group_reduce` entries) -- runs on the proxies
with **zero host CPU inside the window**: the host is free between the
call and ``Group_Wait``, which the trace invariant
(:func:`repro.obs.invariants.check_invariants`) enforces.

Round structure and barrier discipline
--------------------------------------

The group executor flushes barrier counters per *segment* (the ops
between consecutive barriers), so two constraints shape every builder:

* every rank of the communicator records the **same number of
  barriers** (the executor's matching assumption) -- ranks idle in a
  round still record that round's barrier;
* a send that forwards received data sits in a **later segment** than
  its receive, so the barrier's counter await orders the remote write
  before the forward.

Algorithms (classic MPICH shapes, adapted to the Group entry queue):

* **Ibcast** -- binomial tree, ``ceil(log2 p)`` rounds.
* **Iallgather** -- ring, ``p - 1`` rounds; block ``(me - r) % p``
  moves right each round, landing directly in the receive buffer.
* **Iallreduce** -- recursive doubling (power-of-two ``p``,
  ``log2 p`` rounds) or ring reduce-scatter + allgather (any ``p``,
  ``2(p-1)`` rounds); ``auto`` picks by communicator size.  Inbound
  partials land in **per-round scratch slots**: a partner one round
  ahead may RDMA-write its next contribution while this rank's ARM is
  still folding the previous one, and distinct slots make that overlap
  safe without extra barriers.

Payloads are float64 words (``group_reduce``'s element type); sizes
must be multiples of 8 bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.offload.requests import OffloadError, OffloadGroupRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.offload.api import OffloadEndpoint

__all__ = [
    "build_ibcast",
    "build_iallgather",
    "build_iallreduce",
    "allreduce_algorithm",
    "TAG_BCAST",
    "TAG_ALLGATHER",
    "TAG_ALLREDUCE",
]

#: Default tag bases, one page per collective so per-round tags
#: (``base + round``) never collide across concurrently-built patterns
#: of different collectives.  Callers overlapping two instances of the
#: *same* collective pass distinct bases.
TAG_BCAST = 0x7A00
TAG_ALLGATHER = 0x7B00
TAG_ALLREDUCE = 0x7C00


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def allreduce_algorithm(comm_size: int, algorithm: str = "auto") -> str:
    """Resolve the Iallreduce algorithm name for a communicator size.

    ``auto`` prefers recursive doubling (log rounds) when the size is a
    power of two and falls back to the ring otherwise; the ring's
    ``2(p-1)`` rounds only win on very large payloads at small ``p``,
    which callers can force with ``algorithm="ring"``.
    """
    if algorithm == "auto":
        return "rd" if _is_pow2(comm_size) else "ring"
    if algorithm not in ("rd", "ring"):
        raise OffloadError(f"unknown Iallreduce algorithm {algorithm!r}")
    if algorithm == "rd" and not _is_pow2(comm_size):
        raise OffloadError(
            f"recursive doubling needs a power-of-two communicator, got {comm_size}"
        )
    return algorithm


# ----------------------------------------------------------------------
# Ibcast: binomial tree
# ----------------------------------------------------------------------
def build_ibcast(ep: "OffloadEndpoint", addr: int, size: int, *,
                 root: int = 0, comm_size: int,
                 base_tag: int = TAG_BCAST) -> OffloadGroupRequest:
    """Record a binomial-tree broadcast of ``[addr, addr+size)``.

    Round ``k``: virtual ranks ``v < 2**k`` forward to ``v + 2**k``
    (when that rank exists); ``v`` in ``[2**k, 2**(k+1))`` receive.
    A rank's receive always precedes its forwards by at least one
    barrier, so the tree pipelines without host involvement.  Returns
    the sealed request (``Group_Offload_end`` already applied).
    """
    p = comm_size
    me = ep.rank
    v = (me - root) % p
    rounds = (p - 1).bit_length()
    greq = ep.group_start()
    for k in range(rounds):
        bit = 1 << k
        if v < bit:
            peer = v + bit
            if peer < p:
                ep.group_send(greq, addr, size, dst=(peer + root) % p,
                              tag=base_tag + k)
        elif v < (bit << 1):
            ep.group_recv(greq, addr, size, src=(v - bit + root) % p,
                          tag=base_tag + k)
        if k != rounds - 1:
            ep.group_barrier(greq)
    ep.group_end(greq)
    return greq


# ----------------------------------------------------------------------
# Iallgather: ring
# ----------------------------------------------------------------------
def build_iallgather(ep: "OffloadEndpoint", recv_addr: int, block_size: int, *,
                     comm_size: int,
                     base_tag: int = TAG_ALLGATHER) -> OffloadGroupRequest:
    """Record a ring allgather into ``comm_size`` contiguous blocks.

    The caller places this rank's own contribution at
    ``recv_addr + rank * block_size`` **before** ``Group_Offload_call``;
    round ``r`` then forwards block ``(me - r) % p`` to the right
    neighbour while block ``(me - r - 1) % p`` arrives from the left,
    directly into its final slot (no scratch copies).
    """
    p = comm_size
    me = ep.rank
    right, left = (me + 1) % p, (me - 1) % p
    greq = ep.group_start()
    for r in range(p - 1):
        s_blk = (me - r) % p
        r_blk = (me - r - 1) % p
        ep.group_send(greq, recv_addr + s_blk * block_size, block_size,
                      dst=right, tag=base_tag + r)
        ep.group_recv(greq, recv_addr + r_blk * block_size, block_size,
                      src=left, tag=base_tag + r)
        if r != p - 2:
            ep.group_barrier(greq)
    ep.group_end(greq)
    return greq


# ----------------------------------------------------------------------
# Iallreduce: recursive doubling / ring
# ----------------------------------------------------------------------
def build_iallreduce(ep: "OffloadEndpoint", addr: int, size: int, *,
                     comm_size: int, algorithm: str = "auto",
                     base_tag: int = TAG_ALLREDUCE,
                     ) -> tuple[OffloadGroupRequest, Optional[int]]:
    """Record an in-place sum-Iallreduce over ``size`` bytes of float64.

    Returns ``(request, scratch_addr)``; the scratch region (``None``
    when the pattern needs none, e.g. single-rank) holds the per-round
    inbound partials and must stay allocated for the request's lifetime
    -- re-calling the cached pattern reuses it.
    """
    if size % 8:
        raise OffloadError("Iallreduce operates on float64 words "
                           f"(size must be a multiple of 8, got {size})")
    algo = allreduce_algorithm(comm_size, algorithm)
    if algo == "rd":
        return _build_allreduce_rd(ep, addr, size, comm_size, base_tag)
    return _build_allreduce_ring(ep, addr, size, comm_size, base_tag)


def _build_allreduce_rd(ep, addr, size, p, base_tag):
    """Recursive doubling: ``log2 p`` rounds of pairwise exchange+fold."""
    me = ep.rank
    rounds = p.bit_length() - 1
    greq = ep.group_start()
    scratch = ep.ctx.space.alloc(size * rounds) if rounds else None
    for k in range(rounds):
        partner = me ^ (1 << k)
        slot = scratch + k * size
        ep.group_send(greq, addr, size, dst=partner, tag=base_tag + k)
        ep.group_recv(greq, slot, size, src=partner, tag=base_tag + k)
        # The barrier orders the partner's write before the fold; the
        # fold (same segment) then precedes the next round's send, so
        # each exchange ships an up-to-date partial.
        ep.group_barrier(greq)
        ep.group_reduce(greq, slot, addr, size)
    ep.group_end(greq)
    return greq, scratch


def _build_allreduce_ring(ep, addr, size, p, base_tag):
    """Ring reduce-scatter + ring allgather (any communicator size).

    Chunks are word-granular: chunk ``i`` holds ``count // p`` words
    plus one of the ``count % p`` remainder words.  A chunk emptied by
    ``count < p`` is skipped on **both** its sender and its receiver
    (the chunk index decides, identically on each side), so barrier
    counts and counter epochs stay aligned across ranks.
    """
    me = ep.rank
    count = size // 8
    base, rem = divmod(count, p)

    def cw(i: int) -> int:  # words in chunk i
        return base + (1 if i < rem else 0)

    def off(i: int) -> int:  # byte offset of chunk i
        return (i * base + min(i, rem)) * 8

    right, left = (me + 1) % p, (me - 1) % p
    greq = ep.group_start()
    rs_rounds = p - 1
    slot_sizes = [cw((me - r - 1) % p) * 8 for r in range(rs_rounds)]
    total_scratch = sum(slot_sizes)
    scratch = ep.ctx.space.alloc(total_scratch) if total_scratch else None
    slots, o = [], scratch or 0
    for nb in slot_sizes:
        slots.append(o)
        o += nb

    # Reduce-scatter: after round r, chunk (me - r - 1) % p is folded
    # here; after all rounds this rank owns complete chunk (me + 1) % p.
    for r in range(rs_rounds):
        s_idx = (me - r) % p
        r_idx = (me - r - 1) % p
        snb, rnb = cw(s_idx) * 8, cw(r_idx) * 8
        if snb:
            ep.group_send(greq, addr + off(s_idx), snb, dst=right,
                          tag=base_tag + r)
        if rnb:
            ep.group_recv(greq, slots[r], rnb, src=left, tag=base_tag + r)
        ep.group_barrier(greq)
        if rnb:
            ep.group_reduce(greq, slots[r], addr + off(r_idx), rnb)

    # Allgather: complete chunks circulate; inbound ones land straight
    # in ``addr`` (their final place), no folding needed.
    ag_base = base_tag + rs_rounds
    for r in range(p - 1):
        s_idx = (me + 1 - r) % p
        r_idx = (me - r) % p
        snb, rnb = cw(s_idx) * 8, cw(r_idx) * 8
        if snb:
            ep.group_send(greq, addr + off(s_idx), snb, dst=right,
                          tag=ag_base + r)
        if rnb:
            ep.group_recv(greq, addr + off(r_idx), rnb, src=left,
                          tag=ag_base + r)
        if r != p - 2:
            ep.group_barrier(greq)
    ep.group_end(greq)
    return greq, scratch
