"""The paper's contribution: the DPU communication-offload framework.

Two API families (Section VI):

* **Basic primitives** -- ``Send_Offload`` / ``Recv_Offload`` / ``Wait``:
  non-blocking point-to-point operations executed by DPU proxy
  processes on the hosts' behalf via cross-GVMI RDMA.
* **Group primitives** -- ``Group_Offload_start`` / ``Send_Goffload`` /
  ``Recv_Goffload`` / ``Local_barrier_Goffload`` / ``Group_Offload_end``
  / ``Group_Offload_call`` / ``Group_Wait``: record an entire dependent
  communication pattern and offload it wholesale, so ordered patterns
  (ring broadcast, HPL look-ahead) progress with **zero host CPU
  intervention**.

Mechanisms (Section VII): proxy processes with RTS/RTR matching queues
(Fig. 8), array-of-BST GVMI registration caches on both host and DPU
(Section VII-B), group packet execution with RDMA-written barrier
counters (Fig. 10, Algorithm 1), and request caches that collapse
repeat group calls to a single request-ID control message
(Section VII-D).

Entry point: :class:`~repro.offload.api.OffloadFramework`
(= ``Init_Offload``) and per-rank
:class:`~repro.offload.api.OffloadEndpoint` objects.
"""

from repro.offload.api import OffloadEndpoint, OffloadFramework
from repro.offload.bst import AvlTree
from repro.offload.collectives import (
    allreduce_algorithm,
    build_iallgather,
    build_iallreduce,
    build_ibcast,
)
from repro.offload.gvmi_cache import DpuGvmiCache, HostGvmiCache
from repro.offload.requests import (
    GroupOp,
    OffloadError,
    OffloadGroupRequest,
    OffloadRequest,
)
from repro.offload.staging import StagingChannel

__all__ = [
    "AvlTree",
    "DpuGvmiCache",
    "allreduce_algorithm",
    "build_iallgather",
    "build_iallreduce",
    "build_ibcast",
    "GroupOp",
    "HostGvmiCache",
    "OffloadEndpoint",
    "OffloadError",
    "OffloadFramework",
    "OffloadGroupRequest",
    "OffloadRequest",
    "StagingChannel",
]

# The SHMEM front-end (repro.offload.shmem) is imported lazily by its
# users: importing it here would create a cycle through api/proxy.
