"""Staging-based transfers through DPU DRAM (paper Section V, Fig 6).

This is the mechanism state-of-the-art solutions (BluesMPI [8,9]) use:
the proxy RDMA-READs the source host's buffer into a staging buffer in
the BlueField's own DRAM, then RDMA-WRITEs it to the destination host.
Compared with a cross-GVMI transfer this costs an extra hop, and both
hops are capped by the DPU's DRAM bandwidth -- the degradation Figure 4
measures.

:class:`StagingChannel` manages a proxy's staging buffers: a pool of
size-class buckets whose buffers are registered (from the slow ARM
cores) on first use and reused afterwards.  That first-use registration
is exactly the warm-up sensitivity the paper observed in BluesMPI at
the application level (Section VIII-D): benchmarks hide it behind
warm-up iterations; P3DFFT's two back-to-back alltoalls on fresh
buffers do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import OutOfMemoryError
from repro.hw.node import ProcessContext
from repro.offload.requests import OffloadError
from repro.verbs.mr import MemoryRegionHandle, dereg_mr, reg_mr

__all__ = ["StagingBuffer", "StagingChannel"]


@dataclass
class StagingBuffer:
    """One registered DPU-DRAM buffer."""

    addr: int
    size_class: int
    handle: MemoryRegionHandle

    @property
    def lkey(self) -> int:
        return self.handle.lkey


def size_class_of(size: int) -> int:
    """Round a request up to its power-of-two pool bucket (min 4 KiB)."""
    if size <= 0:
        raise OffloadError("staging buffer size must be positive")
    c = 4096
    while c < size:
        c <<= 1
    return c


class StagingChannel:
    """Per-proxy staging-buffer pool."""

    def __init__(self, ctx: ProcessContext):
        if ctx.kind != "dpu":
            raise OffloadError("staging buffers live in DPU DRAM")
        self.ctx = ctx
        self._free: dict[int, list[StagingBuffer]] = {}
        #: Buffers created so far (diagnostics; also the warm-up signal).
        self.created = 0
        self.reused = 0
        #: Pooled buffers torn down to make room under a DPU byte budget.
        self.evictions = 0
        self._outstanding = 0

    def acquire(self, size: int):
        """Get a registered staging buffer covering ``size`` bytes.

        A generator: on a pool miss it allocates and registers a new
        buffer (ARM-speed registration -- the warm-up cost); on a hit it
        is effectively free.
        """
        sc = size_class_of(size)
        self._outstanding += 1
        bucket = self._free.get(sc)
        if bucket:
            self.reused += 1
            self.ctx.cluster.metrics.add("staging.reuse")
            return bucket.pop()
        self.created += 1
        self.ctx.cluster.metrics.add("staging.create")
        try:
            addr = self.ctx.space.alloc(sc)
        except OutOfMemoryError:
            self._reclaim(sc)
            try:
                addr = self.ctx.space.alloc(sc)
            except OutOfMemoryError:
                self._outstanding -= 1
                cluster = self.ctx.cluster
                cluster.metrics.add("staging.oom")
                if cluster.bus is not None:
                    cluster.bus.emit("mem", "oom", self.ctx.trace_name,
                                     size=sc, pooled=self.pooled)
                raise
        handle = yield from reg_mr(self.ctx, addr, sc)
        return StagingBuffer(addr=addr, size_class=sc, handle=handle)

    def _reclaim(self, needed: int) -> None:
        """Tear down pooled (idle) buffers until ``needed`` bytes fit.

        Deterministic order: smallest size class first, newest pooled
        buffer first within a class.  Each teardown deregisters the
        buffer and returns its DPU DRAM to the budget.
        """
        cluster = self.ctx.cluster
        freed = 0
        for sc in sorted(self._free):
            bucket = self._free[sc]
            while bucket and freed < needed:
                buf = bucket.pop()
                dereg_mr(self.ctx, buf.handle)
                self.ctx.space.free(buf.addr)
                freed += buf.size_class
                self.evictions += 1
                cluster.metrics.add("staging.evictions")
                if cluster.bus is not None:
                    cluster.bus.emit("cache", "evict", self.ctx.trace_name,
                                     cache="staging", size=buf.size_class)
            if freed >= needed:
                break

    def release(self, buf: StagingBuffer) -> None:
        self._outstanding -= 1
        self._free.setdefault(buf.size_class, []).append(buf)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def pooled(self) -> int:
        return sum(len(v) for v in self._free.values())

    @property
    def pooled_bytes(self) -> int:
        return sum(b.size_class for bucket in self._free.values() for b in bucket)
