"""Proxy-side execution of a Group_Offload_packet (Fig 10, Algorithm 1).

The executor walks the Group_op queue:

* **send** -- resolve mkey2 (from the entry's cached key if the plan is
  cached, else through the DPU GVMI cache), post the RDMA write on the
  host's behalf, remember the destination rank in ``sendRankSet``;
* **recv** -- remember the source rank in ``recvRankSet``;
* **barrier** (``Local_barrier_Goffload``) -- bump ``numBarriers``;
  wait for every send posted since the previous barrier to complete;
  RDMA-write the barrier count to the proxies of every rank in
  ``sendRankSet``; then wait until the local counters from every rank
  in ``recvRankSet`` reach ``numBarriers``.

Waits are expressed as ``(PARK, event)`` yields: the proxy's progress
engine suspends this executor and serves other hosts -- Algorithm 1's
"break from the function to the progress engine", which is what avoids
deadlock when one proxy carries both sides of a dependence.

After the last entry an implicit final epoch (``numBarriers + 1``)
flushes trailing sends' counters and waits for trailing receives; then
one RDMA write sets the completion counter in host memory
(``Group_Wait`` returns without any host-CPU protocol work).

Like the paper's algorithm, barrier matching assumes the communicating
ranks record the same number of barriers (true for every pattern in the
evaluation: rings, alltoalls, stencils).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.offload.proxy import PARK
from repro.offload.requests import OffloadError
from repro.verbs.rdma import rdma_write

if TYPE_CHECKING:  # pragma: no cover
    from repro.offload.proxy import ProxyEngine

__all__ = ["GroupExecutor"]


class GroupExecutor:
    """One in-flight Group_Offload_packet on one proxy."""

    def __init__(self, engine: "ProxyEngine", plan: dict, req_id: int, seqs: dict, cached: bool):
        self.engine = engine
        self.plan = plan
        self.req_id = req_id
        #: per host-pair sequence numbers assigned at launch.
        self.seqs = seqs
        self.cached = cached
        self.gen = self._run()

    # ------------------------------------------------------------------
    def _run(self):
        engine = self.engine
        ctx = engine.ctx
        params = engine.params
        host_rank = self.plan["host_rank"]
        send_set: set[int] = set()
        recv_set: set[int] = set()
        pending: list = []  # completion events of sends since last barrier
        num_barriers = 0

        for entry in self.plan["entries"]:
            kind = entry["kind"]
            if kind == "send":
                done = yield from self._post_send(entry)
                pending.append((entry, done))
                send_set.add(entry["dst"])
            elif kind == "recv":
                recv_set.add(entry["src"])
            elif kind == "barrier":
                num_barriers += 1
                yield ctx.consume(params.dpu_handler_cost * 0.5)
                yield from self._flush_segment(pending, send_set, host_rank, num_barriers)
                pending = []
                send_set.clear()
                yield from self._await_recvs(recv_set, host_rank, num_barriers)
                recv_set.clear()
            else:  # pragma: no cover - defensive
                raise OffloadError(f"unknown Group_op kind {kind!r}")

        # Implicit final epoch: flush trailing sends, await trailing recvs.
        final_epoch = num_barriers + 1
        yield from self._flush_segment(pending, send_set, host_rank, final_epoch)
        yield from self._await_recvs(recv_set, host_rank, final_epoch)

        # Clear this call's counters (the paper clears barrier counters).
        for (src, dst), seq in self.seqs.items():
            if dst == host_rank:
                engine.counters.clear((src, dst, seq))

        # Completion-counter RDMA write into host memory: Group_Wait
        # observes it with zero host-side protocol work.  Routed through
        # the engine so the "done" fact is recorded durably first (a
        # replayed invocation then only resends this write).
        yield from engine.finish_group(host_rank, self.req_id)

    # ------------------------------------------------------------------
    def _post_send(self, entry):
        """Post one send entry; returns its completion event (a generator)."""
        engine = self.engine
        if engine.mode == "staged":
            done = yield from engine.staged_send_start(
                src_rkey=entry["src_rkey"], src_addr=entry["addr"],
                size=entry["size"],
                dst_rkey=entry["rkey"], dst_addr=entry["dst_addr"],
            )
            return done
        mkey2_key = entry.get("mkey2")
        if mkey2_key is None:
            info = yield from engine.gvmi_cache.get(
                self.plan["host_rank"], entry["gvmi_id"], entry["mkey"],
                entry.get("reg_addr", entry["addr"]),
                entry.get("reg_size", entry["size"]),
            )
            mkey2_key = info.key
            # Attach for future cached invocations (Section VII-D: "the
            # group entry queue also contains the GVMI registration
            # cache entry").
            entry["mkey2"] = mkey2_key
        transfer = yield from rdma_write(
            self.engine.ctx,
            lkey=mkey2_key,
            src_addr=entry["addr"],
            rkey=entry["rkey"],
            dst_addr=entry["dst_addr"],
            size=entry["size"],
        )
        return transfer.completed

    def _flush_segment(self, pending, send_set, host_rank, epoch):
        """Wait for the segment's sends, then write counters to their peers.

        Under fault injection a send can complete with an error CQE (no
        bytes moved); those entries are re-posted with backoff until they
        land or the re-post limit trips.
        """
        engine = self.engine
        attempt = 1
        while pending:
            incomplete = [ev for _entry, ev in pending if not ev.processed]
            if incomplete:
                yield (PARK, engine.sim.all_of(incomplete))
            if not engine.resilient:
                break
            failed = [
                entry for entry, ev in pending
                if getattr(ev.value, "status", "ok") == "error"
            ]
            if not failed:
                break
            if attempt > engine.retry.rdma_retry_limit:
                raise OffloadError(
                    f"group send segment of host {host_rank} exceeded "
                    f"{engine.retry.rdma_retry_limit} RDMA re-posts"
                )
            engine.ctx.cluster.metrics.add("proxy.rdma_retries")
            yield (PARK, engine.sim.timeout(engine.retry.rdma_backoff * attempt))
            attempt += 1
            pending = []
            for entry in failed:
                done = yield from self._post_send(entry)
                pending.append((entry, done))
        for dst in sorted(send_set):
            seq = self.seqs[(host_rank, dst)]
            yield from engine.write_counter_to(dst, (host_rank, dst, seq), epoch)

    def _await_recvs(self, recv_set, host_rank, epoch):
        """Park until every expected peer's counter reaches ``epoch``."""
        engine = self.engine
        for src in sorted(recv_set):
            seq = self.seqs[(src, host_rank)]
            key = (src, host_rank, seq)
            ev = engine.counters.wait(key, epoch)
            if not ev.processed:
                # Chase a possibly-dropped counter write (no-op when the
                # run is clean).
                engine.arm_counter_probe(key, ev, writer_rank=src,
                                         my_rank=host_rank)
                yield (PARK, ev)
            yield engine.ctx.consume(engine.params.dpu_handler_cost * 0.25)
