"""Proxy-side execution of a Group_Offload_packet (Fig 10, Algorithm 1).

The executor walks the Group_op queue:

* **send** -- resolve mkey2 (from the entry's cached key if the plan is
  cached, else through the DPU GVMI cache), post the RDMA write on the
  host's behalf, remember the destination rank in ``sendRankSet``;
* **recv** -- remember the source rank in ``recvRankSet``;
* **barrier** (``Local_barrier_Goffload``) -- bump ``numBarriers``;
  wait for every send posted since the previous barrier to complete;
  RDMA-write the barrier count to the proxies of every rank in
  ``sendRankSet``; then wait until the local counters from every rank
  in ``recvRankSet`` reach ``numBarriers``.

Waits are expressed as ``(PARK, event)`` yields: the proxy's progress
engine suspends this executor and serves other hosts -- Algorithm 1's
"break from the function to the progress engine", which is what avoids
deadlock when one proxy carries both sides of a dependence.

After the last entry an implicit final epoch (``numBarriers + 1``)
flushes trailing sends' counters and waits for trailing receives; then
one RDMA write sets the completion counter in host memory
(``Group_Wait`` returns without any host-CPU protocol work).

Like the paper's algorithm, barrier matching assumes the communicating
ranks record the same number of barriers (true for every pattern in the
evaluation: rings, alltoalls, stencils).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.offload.proxy import PARK
from repro.offload.requests import OffloadError
from repro.verbs.mr import ProtectionError
from repro.verbs.rdma import rdma_write

if TYPE_CHECKING:  # pragma: no cover
    from repro.offload.proxy import ProxyEngine

__all__ = ["GroupExecutor", "StalePlanError"]


class StalePlanError(Exception):
    """A plan entry faulted on a revoked key: the plan must be rebuilt."""

    def __init__(self, plan_id: int, cause: ProtectionError):
        self.plan_id = plan_id
        self.cause = cause
        super().__init__(f"plan {plan_id} references a revoked key: {cause}")


class GroupExecutor:
    """One in-flight Group_Offload_packet on one proxy."""

    def __init__(self, engine: "ProxyEngine", plan: dict, req_id: int, seqs: dict, cached: bool,
                 call_no: int = 1):
        self.engine = engine
        self.plan = plan
        self.req_id = req_id
        #: per host-pair sequence numbers assigned at launch.
        self.seqs = seqs
        self.cached = cached
        #: Which Group_Offload_call of the (re-usable) request this is --
        #: disambiguates a replay of call N from a fresh call N+1.
        self.call_no = call_no
        self.gen = self._run()

    # ------------------------------------------------------------------
    def _run(self):
        try:
            yield from self._run_inner()
        except StalePlanError as exc:
            yield from self._abort_stale(exc)

    def _abort_stale(self, exc: StalePlanError):
        """Abandon this invocation: the plan touches revoked memory.

        Drops the DPU copy of the plan, marks the launch record
        replayable, and sends a ``stale``-flagged plan_nack so the host
        rebuilds the plan from scratch (fresh registrations and
        descriptors) instead of re-shipping the same stale entries.
        Counter writes already issued stay valid: the relaunch replays
        with the original sequence numbers and counter writes are
        monotone.
        """
        engine = self.engine
        host_rank = self.plan["host_rank"]
        if not engine.resilient:
            raise OffloadError(
                f"group plan {self.plan['plan_id']} of host {host_rank} "
                f"references a revoked registration: {exc.cause}"
            ) from exc.cause
        ctx = engine.ctx
        ctx.cluster.metrics.add("proxy.stale_plans")
        bus = ctx.cluster.bus
        if bus is not None:
            bus.emit("reg", "stale_use", ctx.trace_name,
                     plan=self.plan["plan_id"], call=self.req_id)
        rec = engine._group_launches.get(self.req_id)
        if rec is not None:
            # Not done, and no incarnation owns it: the retransmitted
            # call relaunches with the ORIGINAL sequence numbers.
            rec["incarnation"] = None
        engine.plan_cache.drop(self.plan["plan_id"])
        ep = engine.framework.endpoint(host_rank)
        yield ctx.consume(ctx.hca.post_overhead("dpu"))
        ctx.cluster.metrics.add("proxy.plan_nacks")
        ctx.cluster.fabric.control(
            src_node=ctx.node_id,
            dst_node=ep.ctx.node_id,
            initiator="dpu",
            inbox=ep.inbox,
            msg=("plan_nack", {"plan_id": self.plan["plan_id"],
                               "req_id": self.req_id,
                               "call_no": self.call_no,
                               "stale": True}),
            src_mem="dpu",
            dst_mem="host",
            kind="plan_nack",
        )

    def _run_inner(self):
        engine = self.engine
        ctx = engine.ctx
        params = engine.params
        host_rank = self.plan["host_rank"]
        send_set: set[int] = set()
        recv_set: set[int] = set()
        pending: list = []  # completion events of sends since last barrier
        num_barriers = 0

        for entry in self.plan["entries"]:
            kind = entry["kind"]
            if kind == "send":
                done = yield from self._post_send(entry)
                pending.append((entry, done))
                send_set.add(entry["dst"])
            elif kind == "recv":
                recv_set.add(entry["src"])
            elif kind == "reduce":
                yield from self._exec_reduce(entry)
            elif kind == "barrier":
                num_barriers += 1
                yield ctx.consume(params.dpu_handler_cost * 0.5)
                yield from self._flush_segment(pending, send_set, host_rank, num_barriers)
                pending = []
                send_set.clear()
                yield from self._await_recvs(recv_set, host_rank, num_barriers)
                recv_set.clear()
            else:  # pragma: no cover - defensive
                raise OffloadError(f"unknown Group_op kind {kind!r}")

        # Implicit final epoch: flush trailing sends, await trailing recvs.
        final_epoch = num_barriers + 1
        yield from self._flush_segment(pending, send_set, host_rank, final_epoch)
        yield from self._await_recvs(recv_set, host_rank, final_epoch)

        # Clear this call's counters (the paper clears barrier counters).
        for (src, dst), seq in self.seqs.items():
            if dst == host_rank:
                engine.counters.clear((src, dst, seq))

        # Completion-counter RDMA write into host memory: Group_Wait
        # observes it with zero host-side protocol work.  Routed through
        # the engine so the "done" fact is recorded durably first (a
        # replayed invocation then only resends this write).
        yield from engine.finish_group(host_rank, self.req_id, self.call_no)

    # ------------------------------------------------------------------
    def _post_send(self, entry):
        """Post one send entry; returns its completion event (a generator)."""
        engine = self.engine
        if engine.mode == "staged":
            try:
                done = yield from engine.staged_send_start(
                    src_rkey=entry["src_rkey"], src_addr=entry["addr"],
                    size=entry["size"],
                    dst_rkey=entry["rkey"], dst_addr=entry["dst_addr"],
                )
            except ProtectionError as exc:
                raise StalePlanError(self.plan["plan_id"], exc) from exc
            return done
        mkey2_key = entry.get("mkey2")
        if mkey2_key is None:
            try:
                info = yield from engine.gvmi_cache.get(
                    self.plan["host_rank"], entry["gvmi_id"], entry["mkey"],
                    entry.get("reg_addr", entry["addr"]),
                    entry.get("reg_size", entry["size"]),
                )
            except ProtectionError as exc:
                raise StalePlanError(self.plan["plan_id"], exc) from exc
            mkey2_key = info.key
            # Attach for future cached invocations (Section VII-D: "the
            # group entry queue also contains the GVMI registration
            # cache entry").
            entry["mkey2"] = mkey2_key
        try:
            transfer = yield from rdma_write(
                self.engine.ctx,
                lkey=mkey2_key,
                src_addr=entry["addr"],
                rkey=entry["rkey"],
                dst_addr=entry["dst_addr"],
                size=entry["size"],
            )
        except ProtectionError as exc:
            # The attached mkey2 (or the remote rkey) died since the
            # plan was built: invalidate the attachment before aborting.
            entry.pop("mkey2", None)
            raise StalePlanError(self.plan["plan_id"], exc) from exc
        return transfer.completed

    def _exec_reduce(self, entry):
        """One DPU-side accumulate: ``dst += src`` over float64 words.

        Cost model: the ARM core streams both operands in and the
        result out through the DPU's memory path (3 x size bytes) and
        runs the adds at roughly a third of a host core's flop rate
        (the BlueField-2 A72 ratio the module defaults encode).
        """
        engine = self.engine
        params = engine.params
        size = entry["size"]
        count = size // 8
        cost = (3 * size / params.dpu_memory_bandwidth
                + 3 * count / params.host_flops_per_core)
        yield engine.ctx.consume(cost)
        cluster = engine.ctx.cluster
        cluster.metrics.add("proxy.reduces")
        cluster.metrics.add("proxy.reduced_bytes", size)
        if cluster.payloads and count:
            import numpy as np

            space = cluster.rank_ctx(self.plan["host_rank"]).space
            acc = space.read_as(entry["dst_addr"], np.float64, count)
            inc = space.read_as(entry["addr"], np.float64, count)
            space.write(entry["dst_addr"], acc + inc)

    def _flush_segment(self, pending, send_set, host_rank, epoch):
        """Wait for the segment's sends, then write counters to their peers.

        Under fault injection a send can complete with an error CQE (no
        bytes moved); those entries are re-posted with backoff until they
        land or the re-post limit trips.
        """
        engine = self.engine
        attempt = 1
        while pending:
            incomplete = [ev for _entry, ev in pending if not ev.processed]
            if incomplete:
                yield (PARK, engine.sim.all_of(incomplete))
            if not engine.resilient:
                break
            failed = [
                entry for entry, ev in pending
                if getattr(ev.value, "status", "ok") == "error"
            ]
            if not failed:
                break
            if attempt > engine.retry.rdma_retry_limit:
                raise OffloadError(
                    f"group send segment of host {host_rank} exceeded "
                    f"{engine.retry.rdma_retry_limit} RDMA re-posts"
                )
            engine.ctx.cluster.metrics.add("proxy.rdma_retries")
            yield (PARK, engine.sim.timeout(engine.retry.rdma_backoff * attempt))
            attempt += 1
            pending = []
            for entry in failed:
                done = yield from self._post_send(entry)
                pending.append((entry, done))
        if engine.params.counter_doorbell_batch and len(send_set) > 1:
            writes = [
                (dst, (host_rank, dst, self.seqs[(host_rank, dst)]), epoch)
                for dst in sorted(send_set)
            ]
            yield from engine.write_counters_batch(writes)
        else:
            for dst in sorted(send_set):
                seq = self.seqs[(host_rank, dst)]
                yield from engine.write_counter_to(dst, (host_rank, dst, seq), epoch)

    def _await_recvs(self, recv_set, host_rank, epoch):
        """Park until every expected peer's counter reaches ``epoch``."""
        engine = self.engine
        for src in sorted(recv_set):
            seq = self.seqs[(src, host_rank)]
            key = (src, host_rank, seq)
            ev = engine.counters.wait(key, epoch)
            if not ev.processed:
                # Chase a possibly-dropped counter write (no-op when the
                # run is clean).
                engine.arm_counter_probe(key, ev, writer_rank=src,
                                         my_rank=host_rank)
                yield (PARK, ev)
            yield engine.ctx.consume(engine.params.dpu_handler_cost * 0.25)
