"""A self-balancing (AVL) binary search tree.

The paper's registration caches are "an array of Binary Search Trees
... the array is indexed by remote rank and the BST is indexed by
memory address" (Section VII-B).  This is that BST; it is deliberately
a real tree rather than a dict so that the cache's data-structure
invariants can be property-tested (and so descent depth is available
as a modelled cost if desired).

Keys are ``(addr, size)`` tuples ordered lexicographically -- the same
buffer address registered with two lengths is two distinct entries,
matching how registration caches in production MPI libraries behave.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["AvlTree"]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _h(node: Optional[_Node]) -> int:
    return node.height if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _balance_factor(node: _Node) -> int:
    return _h(node.left) - _h(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree:
    """Ordered map with O(log n) insert/find/remove."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key) -> bool:
        return self.find(key) is not None

    # -- find -------------------------------------------------------------
    def find(self, key) -> Optional[Any]:
        """The value stored at ``key`` or None (with descent count free)."""
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return None

    def depth_of(self, key) -> int:
        """Number of comparisons a lookup of ``key`` performs."""
        node, depth = self._root, 0
        while node is not None:
            depth += 1
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return depth
        return depth

    # -- insert -------------------------------------------------------------
    def insert(self, key, value) -> None:
        """Insert or overwrite."""
        def _ins(node: Optional[_Node]) -> _Node:
            if node is None:
                self._count += 1
                return _Node(key, value)
            if key < node.key:
                node.left = _ins(node.left)
            elif node.key < key:
                node.right = _ins(node.right)
            else:
                node.value = value
                return node
            return _rebalance(node)

        self._root = _ins(self._root)

    # -- remove -------------------------------------------------------------
    def remove(self, key) -> bool:
        """Delete ``key``; returns True if it was present."""
        removed = [False]

        def _min_node(node: _Node) -> _Node:
            while node.left is not None:
                node = node.left
            return node

        def _rm(node: Optional[_Node], key) -> Optional[_Node]:
            if node is None:
                return None
            if key < node.key:
                node.left = _rm(node.left, key)
            elif node.key < key:
                node.right = _rm(node.right, key)
            else:
                removed[0] = True
                if node.left is None:
                    return node.right
                if node.right is None:
                    return node.left
                successor = _min_node(node.right)
                node.key, node.value = successor.key, successor.value
                node.right = _rm(node.right, successor.key)
            return _rebalance(node)

        self._root = _rm(self._root, key)
        if removed[0]:
            self._count -= 1
        return removed[0]

    # -- iteration / introspection -------------------------------------------
    def items(self) -> Iterator[tuple[Any, Any]]:
        """In-order (sorted) iteration."""
        stack: list[_Node] = []
        node = self._root
        while stack or node:
            while node:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        return (k for k, _ in self.items())

    @property
    def height(self) -> int:
        return _h(self._root)

    def check_invariants(self) -> None:
        """Raise AssertionError if BST order or AVL balance is violated."""
        def _chk(node: Optional[_Node], lo, hi) -> int:
            if node is None:
                return 0
            if lo is not None:
                assert lo < node.key, f"BST order violated at {node.key}"
            if hi is not None:
                assert node.key < hi, f"BST order violated at {node.key}"
            lh = _chk(node.left, lo, node.key)
            rh = _chk(node.right, node.key, hi)
            assert abs(lh - rh) <= 1, f"AVL balance violated at {node.key}"
            assert node.height == 1 + max(lh, rh), f"stale height at {node.key}"
            return node.height

        _chk(self._root, None, None)
