"""An OpenSHMEM-flavoured one-sided front-end over the offload framework.

The paper claims its framework "is designed to be programming model
agnostic" (Section I-A): the primitives are not MPI-specific.  This
module substantiates that claim with a second front-end -- a partitioned
global address space API in the OpenSHMEM style:

* a **symmetric heap**: collective allocations that land at the same
  virtual address on every PE (our per-process bump allocators are
  deterministic, so symmetric allocation holds by construction and is
  asserted);
* one-sided ``put`` / ``get`` executed *by the DPU proxies* via
  cross-GVMI -- the initiating PE's CPU posts one control message and
  returns;
* ``quiet`` (complete my outstanding ops), ``wait_until`` (poll a local
  symmetric variable until a remote put lands), and a put-based
  dissemination ``barrier_all``.

Because puts are one-sided there is no RTS/RTR matching: the target's
heap rkeys are exchanged once at allocation time (the registry below),
exactly how OpenSHMEM implementations pre-register the symmetric heap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.hw.cluster import Cluster
from repro.mpi.regcache import RegistrationCache
from repro.offload.api import OffloadFramework
from repro.offload.gvmi_cache import HostGvmiCache
from repro.offload.requests import OffloadError
from repro.sim import Event
from repro.verbs.gvmi import gvmi_id_of
from repro.verbs.rdma import post_control, rdma_read, rdma_write

__all__ = ["ShmemWorld", "ShmemEndpoint"]

_op_ids = itertools.count()


@dataclass
class _ShmemOp:
    """One outstanding one-sided operation."""

    kind: str  # "put" | "get"
    op_id: int = field(default_factory=lambda: next(_op_ids))
    complete: bool = False
    event: Optional[Event] = None


class ShmemWorld:
    """The SHMEM job: symmetric heap registry + per-PE endpoints.

    Reuses an :class:`OffloadFramework` in GVMI mode (one proxy set, one
    GVMI exchange); a job may drive both MPI-style and SHMEM-style
    traffic over the same proxies.
    """

    def __init__(self, cluster: Cluster, framework: Optional[OffloadFramework] = None):
        self.cluster = cluster
        self.framework = framework or OffloadFramework(cluster)
        if self.framework.mode != "gvmi":
            raise OffloadError("the SHMEM front-end requires cross-GVMI mode")
        self.endpoints = [
            ShmemEndpoint(self, rank) for rank in range(cluster.world_size)
        ]
        # Install the SHMEM handlers on every proxy engine.
        self.framework._shmem_world = self
        for engine in self.framework._proxy_engines.values():
            engine.extra_handlers["shmem_put"] = handle_shmem_put
            engine.extra_handlers["shmem_get"] = handle_shmem_get
        #: rkeys of symmetric-heap blocks: (pe, addr) -> rkey.
        self._rkeys: dict[tuple[int, int], int] = {}
        #: Collective-allocation bookkeeping (call index -> per-PE addr).
        self._alloc_calls: dict[int, dict[int, int]] = {}

    @property
    def n_pes(self) -> int:
        return self.cluster.world_size

    def endpoint(self, pe: int) -> "ShmemEndpoint":
        return self.endpoints[pe]

    def rkey_of(self, pe: int, addr: int) -> int:
        # The heap is registered in blocks; find the covering block.
        key = (pe, addr)
        rkey = self._rkeys.get(key)
        if rkey is not None:
            return rkey
        for (p, base), rk in self._rkeys.items():
            if p != pe:
                continue
            space = self.cluster.rank_ctx(pe).space
            size = space.size_of(base) if space.contains(base) else 0
            if base <= addr < base + size:
                return rk
        raise OffloadError(
            f"address {addr:#x} on PE {pe} is not in the symmetric heap "
            "(did every PE call symmetric_alloc collectively?)"
        )


class ShmemEndpoint:
    """Per-PE handle: the OpenSHMEM-style API surface."""

    def __init__(self, world: ShmemWorld, pe: int):
        self.world = world
        self.pe = pe
        self.ctx = world.cluster.rank_ctx(pe)
        self.sim = self.ctx.sim
        self.params = world.cluster.params
        self.gvmi_cache = HostGvmiCache(self.ctx)
        self.ib_cache = RegistrationCache(self.ctx, name=f"shmem_{pe}")
        #: Outstanding one-sided ops awaiting proxy completion writes.
        self._pending: dict[int, _ShmemOp] = {}
        #: wait_until watchers: addr -> list[(predicate, event)].
        self._watchers: dict[int, list] = {}
        self._alloc_seq = 0
        self._barrier_flags: Optional[int] = None
        self._barrier_scratch: Optional[int] = None
        self._barrier_round_values: Optional[int] = None

    # ------------------------------------------------------------------
    # symmetric heap
    # ------------------------------------------------------------------
    def symmetric_alloc(self, size: int, fill: Optional[int] = None):
        """Collective: every PE allocates; addresses must agree.

        A generator; returns the symmetric address.  Registers the block
        (so remote PEs' proxies can address it) and publishes its rkey.
        """
        yield from self._ensure_ready()
        addr = self.ctx.space.alloc(size, fill=fill)
        handle = yield from self.ib_cache.get(addr, size)
        call = self._alloc_seq
        self._alloc_seq += 1
        record = self.world._alloc_calls.setdefault(call, {})
        record[self.pe] = addr
        others = [a for p, a in record.items() if p != self.pe]
        if any(a != addr for a in others):
            raise OffloadError(
                f"symmetric_alloc call {call}: PE {self.pe} got {addr:#x} but "
                f"peers got {sorted(set(others))} -- allocation orders diverged"
            )
        self.world._rkeys[(self.pe, addr)] = handle.rkey
        return addr

    # ------------------------------------------------------------------
    # one-sided ops
    # ------------------------------------------------------------------
    def put(self, dst_addr: int, src_addr: int, size: int, pe: int):
        """Non-blocking put: my [src_addr,+size) -> PE ``pe``'s dst_addr.

        The local DPU proxy moves the bytes via cross-GVMI; this call
        costs one GVMI-cache lookup and one control message.
        Returns an op handle; complete it with :meth:`quiet`.
        """
        yield from self._ensure_ready()
        yield from self._admit()
        proxy = self.world.cluster.proxy_for_rank(self.pe)
        gid = gvmi_id_of(proxy)
        mkey = yield from self.gvmi_cache.get(proxy, gid, src_addr, size)
        rkey = self.world.rkey_of(pe, dst_addr)
        op = _ShmemOp("put")
        op.event = Event(self.sim)
        self._pending[op.op_id] = op
        self.ctx.cluster.metrics.add("shmem.puts")
        yield from post_control(
            self.ctx, proxy,
            ("shmem_put", {
                "src_pe": self.pe, "dst_pe": pe,
                "src_addr": src_addr, "dst_addr": dst_addr, "size": size,
                "mkey": mkey.key, "gvmi_id": gid,
                "reg_addr": mkey.addr, "reg_size": mkey.size,
                "rkey": rkey, "op_id": op.op_id,
            }),
        )
        return op

    def get(self, dst_addr: int, src_addr: int, size: int, pe: int):
        """Non-blocking get: PE ``pe``'s [src_addr,+size) -> my dst_addr."""
        yield from self._ensure_ready()
        yield from self._admit()
        proxy = self.world.cluster.proxy_for_rank(self.pe)
        gid = gvmi_id_of(proxy)
        # The proxy writes into *my* buffer: it needs an mkey2 over it.
        mkey = yield from self.gvmi_cache.get(proxy, gid, dst_addr, size)
        rkey = self.world.rkey_of(pe, src_addr)
        op = _ShmemOp("get")
        op.event = Event(self.sim)
        self._pending[op.op_id] = op
        self.ctx.cluster.metrics.add("shmem.gets")
        yield from post_control(
            self.ctx, proxy,
            ("shmem_get", {
                "src_pe": pe, "dst_pe": self.pe,
                "src_addr": src_addr, "dst_addr": dst_addr, "size": size,
                "mkey": mkey.key, "gvmi_id": gid,
                "reg_addr": mkey.addr, "reg_size": mkey.size,
                "rkey": rkey, "op_id": op.op_id,
            }),
        )
        return op

    def quiet(self):
        """Block until every outstanding put/get of this PE completed."""
        while self._pending:
            op = next(iter(self._pending.values()))
            if not op.complete:
                yield op.event
            self._pending.pop(op.op_id, None)

    # fence == quiet here: proxy execution is FIFO per endpoint already.
    fence = quiet

    # ------------------------------------------------------------------
    # synchronisation
    # ------------------------------------------------------------------
    def wait_until(self, addr: int, predicate):
        """Suspend until ``predicate(first byte at addr)`` is true.

        Models OpenSHMEM's ``shmem_wait_until`` memory polling: remote
        puts into this PE trigger re-evaluation with no local CPU
        protocol work.
        """
        if predicate(int(self.ctx.space.view(addr, 1)[0])):
            return
        ev = Event(self.sim)
        self._watchers.setdefault(addr, []).append((predicate, ev))
        yield ev

    def barrier_all(self):
        """Put-based dissemination barrier over all PEs."""
        n = self.world.n_pes
        if n == 1:
            return
        if self._barrier_flags is None:
            raise OffloadError("call ShmemWorld-wide barrier_init first")
        rounds = max(1, (n - 1).bit_length())
        self._barrier_round_values += 1
        epoch = self._barrier_round_values
        for k in range(rounds):
            peer = (self.pe + (1 << k)) % n
            flag = self._barrier_flags + k
            src = self._barrier_scratch + k
            self.ctx.space.view(src, 1)[0] = epoch % 250 + 1
            yield from self.put(flag, src, 1, peer)
            yield from self.quiet()
            yield from self.wait_until(flag, lambda v, e=epoch: v == e % 250 + 1)

    def barrier_init(self):
        """Collective: allocate the barrier's symmetric flag arrays."""
        n = self.world.n_pes
        rounds = max(1, (n - 1).bit_length())
        self._barrier_flags = yield from self.symmetric_alloc(rounds, fill=0)
        self._barrier_scratch = yield from self.symmetric_alloc(rounds, fill=0)
        self._barrier_round_values = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _ensure_ready(self):
        if not self.world.framework.ready.processed:
            yield self.world.framework.ready

    def _admit(self):
        """Backpressure: bound the per-PE outstanding one-sided window.

        With ``params.shmem_queue_depth`` set, a put/get whose window is
        full blocks (in simulated time) until an outstanding op
        completes -- the PGAS analogue of a bounded NIC work queue.
        Entries linger in ``_pending`` until :meth:`quiet`, so the
        window counts *incomplete* ops, not table entries.
        """
        depth = self.params.shmem_queue_depth
        if depth is None:
            return
        while True:
            incomplete = [op for op in self._pending.values() if not op.complete]
            if len(incomplete) < depth:
                return
            self.ctx.cluster.metrics.add("shmem.backpressure_stalls")
            bus = self.ctx.cluster.bus
            if bus is not None:
                bus.emit("req", "stall", self.ctx.trace_name,
                         outstanding=len(incomplete), api="shmem")
            yield self.sim.any_of(
                [op.event for op in incomplete if op.event is not None]
            )

    def _complete_op(self, op_id: int) -> None:
        op = self._pending.get(op_id)
        if op is None:
            raise OffloadError(f"completion for unknown SHMEM op {op_id}")
        op.complete = True
        if op.event is not None and not op.event.triggered:
            op.event.succeed(op)

    def _notify_write(self, addr: int) -> None:
        """A remote put landed at ``addr``: wake matching waiters."""
        watchers = self._watchers.get(addr)
        if not watchers:
            return
        value = int(self.ctx.space.view(addr, 1)[0])
        still = []
        for predicate, ev in watchers:
            if predicate(value):
                ev.succeed(value)
            else:
                still.append((predicate, ev))
        if still:
            self._watchers[addr] = still
        else:
            del self._watchers[addr]


class _OpCompletionSink:
    """Adapter: a proxy completion write finishes a SHMEM op."""

    def __init__(self, endpoint: ShmemEndpoint):
        self.endpoint = endpoint

    def put(self, op_id: int) -> None:
        self.endpoint._complete_op(op_id)


class _WriteNotifySink:
    """Adapter: a proxy's landed-put notification wakes wait_until."""

    def __init__(self, endpoint: ShmemEndpoint, addr: int):
        self.endpoint = endpoint
        self.addr = addr

    def put(self, _msg) -> None:
        self.endpoint._notify_write(self.addr)


# ---------------------------------------------------------------------------
# proxy-side handlers (installed onto ProxyEngine via its dispatch table)
# ---------------------------------------------------------------------------

def handle_shmem_put(engine, info: dict):
    """Proxy: cross-register the source, RDMA-write to the remote PE,
    then completion-write the initiator and nudge the target's waiters."""
    world: ShmemWorld = engine.framework._shmem_world
    mkey2 = yield from engine.gvmi_cache.get(
        info["src_pe"], info["gvmi_id"], info["mkey"],
        info["reg_addr"], info["reg_size"],
    )
    transfer = yield from rdma_write(
        engine.ctx,
        lkey=mkey2.key, src_addr=info["src_addr"],
        rkey=info["rkey"], dst_addr=info["dst_addr"],
        size=info["size"],
    )
    engine.ctx.cluster.metrics.add("proxy.shmem_puts")

    def _after():
        yield transfer.completed
        src_ep = world.endpoint(info["src_pe"])
        dst_ep = world.endpoint(info["dst_pe"])
        cl = engine.ctx.cluster
        cl.fabric.control(
            src_node=engine.ctx.node_id, dst_node=src_ep.ctx.node_id,
            initiator="dpu", inbox=_OpCompletionSink(src_ep),
            msg=info["op_id"], size=8, src_mem="dpu", dst_mem="host",
        )
        # Memory-polling wakeup at the target (no CPU protocol work).
        dst_ep._notify_write(info["dst_addr"])

    engine.sim.process(_after())


def handle_shmem_get(engine, info: dict):
    """Proxy: cross-register the local PE's buffer, RDMA-read the remote."""
    world: ShmemWorld = engine.framework._shmem_world
    mkey2 = yield from engine.gvmi_cache.get(
        info["dst_pe"], info["gvmi_id"], info["mkey"],
        info["reg_addr"], info["reg_size"],
    )
    transfer = yield from rdma_read(
        engine.ctx,
        lkey=mkey2.key, local_addr=info["dst_addr"],
        rkey=info["rkey"], remote_addr=info["src_addr"],
        size=info["size"],
    )
    engine.ctx.cluster.metrics.add("proxy.shmem_gets")

    def _after():
        yield transfer.completed
        dst_ep = world.endpoint(info["dst_pe"])
        engine.ctx.cluster.fabric.control(
            src_node=engine.ctx.node_id, dst_node=dst_ep.ctx.node_id,
            initiator="dpu", inbox=_OpCompletionSink(dst_ep),
            msg=info["op_id"], size=8, src_mem="dpu", dst_mem="host",
        )

    engine.sim.process(_after())
